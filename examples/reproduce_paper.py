"""Regenerate every table and figure of the paper in one command.

    python examples/reproduce_paper.py                # everything
    python examples/reproduce_paper.py fig10 fig16-left
    python examples/reproduce_paper.py --list
"""

import sys

from repro.study import EXPERIMENTS, run_experiment


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    if "--list" in sys.argv:
        for exp_id, experiment in sorted(EXPERIMENTS.items()):
            print(f"{exp_id:12s} {experiment.paper_artefact:18s} "
                  f"{experiment.description}")
        return

    targets = args or sorted(EXPERIMENTS)
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {exp_id!r}; run with --list to see "
                "the available ids"
            )
        print(f"\n{'#' * 70}\n# {exp_id}: "
              f"{EXPERIMENTS[exp_id].description}\n{'#' * 70}")
        run_experiment(exp_id)


if __name__ == "__main__":
    main()
