"""Fast interconnect vs slow: DGX-1 against EC2, per primitive.

Reproduces the Section 5.2 narrative with the performance simulator:
on MPI both platforms gain a lot from quantization; on NCCL the
DGX-1's NVLink leaves little for low precision to recover.

    python examples/dgx_vs_ec2.py [network]
"""

import sys

from repro.models.specs import NETWORKS, get_network
from repro.simulator import simulate
from repro.study import print_table
from repro.viz import stacked_bars


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "VGG19"
    if network not in NETWORKS:
        raise SystemExit(
            f"unknown network {network!r}; choose from {sorted(NETWORKS)}"
        )
    spec = get_network(network)

    rows = []
    bars = {}
    for machine in ("p2.8xlarge", "dgx1"):
        for exchange in ("mpi", "nccl"):
            for scheme in ("32bit", "qsgd4"):
                result = simulate(network, machine, scheme, exchange, 8)
                hours = result.epoch_seconds(spec.samples_per_epoch) / 3600
                rows.append(
                    [machine, exchange, scheme,
                     result.samples_per_second, hours]
                )
                label = f"{machine}/{exchange}/{scheme}"
                comm = hours * result.comm_fraction
                bars[label] = (comm, hours - comm)

    print_table(
        ["Machine", "Primitive", "Precision", "Samples/s", "Epoch (h)"],
        rows,
        title=f"{network} at 8 GPUs: DGX-1 vs EC2 p2.8xlarge",
    )

    print(f"\n{network} epoch time breakdown (# = communication):")
    print(stacked_bars(bars))

    def speedup(machine, exchange):
        full = next(
            r for r in rows
            if r[0] == machine and r[1] == exchange and r[2] == "32bit"
        )
        quant = next(
            r for r in rows
            if r[0] == machine and r[1] == exchange and r[2] == "qsgd4"
        )
        return quant[3] / full[3]

    print("\n4-bit speedup over 32-bit:")
    for machine in ("p2.8xlarge", "dgx1"):
        for exchange in ("mpi", "nccl"):
            print(f"  {machine:11s} {exchange:5s} "
                  f"{speedup(machine, exchange):.2f}x")
    print(
        "\nAs in the paper: quantization pays off over MPI on either "
        "platform, but NCCL leaves little to gain."
    )


if __name__ == "__main__":
    main()
