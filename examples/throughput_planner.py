"""Throughput planner: the data-management angle of the paper.

Given a network, the planner sweeps every (machine, primitive,
precision, GPU count) cell of the study and recommends the fastest and
the most cost-effective configurations — the kind of automatic
optimizer the paper's introduction motivates.

    python examples/throughput_planner.py [network]
"""

import sys

from repro.models.specs import NETWORKS, get_network
from repro.simulator import MACHINES, simulate
from repro.study import print_table

SCHEMES = ("32bit", "qsgd8", "qsgd4", "1bit*")
EXCHANGES = ("mpi", "nccl")


def sweep(network: str):
    spec = get_network(network)
    rows = []
    for machine_name, machine in MACHINES.items():
        for world_size in spec.gpu_counts:
            for exchange in EXCHANGES:
                if not machine.supports(world_size, exchange):
                    continue
                for scheme in SCHEMES:
                    result = simulate(
                        network, machine_name, scheme, exchange, world_size
                    )
                    hours = (
                        result.epoch_seconds(spec.samples_per_epoch) / 3600
                    )
                    rows.append(
                        {
                            "machine": machine_name,
                            "gpus": world_size,
                            "exchange": exchange,
                            "scheme": scheme,
                            "samples_per_s": result.samples_per_second,
                            "epoch_hours": hours,
                            "dollars_per_epoch": (
                                hours * machine.price_per_hour
                            ),
                        }
                    )
    return rows


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "VGG19"
    if network not in NETWORKS:
        raise SystemExit(
            f"unknown network {network!r}; choose from {sorted(NETWORKS)}"
        )
    rows = sweep(network)

    fastest = sorted(rows, key=lambda r: -r["samples_per_s"])[:5]
    cheapest = sorted(rows, key=lambda r: r["dollars_per_epoch"])[:5]

    def table(rows):
        return [
            [
                r["machine"],
                r["gpus"],
                r["exchange"],
                r["scheme"],
                r["samples_per_s"],
                r["epoch_hours"],
                r["dollars_per_epoch"],
            ]
            for r in rows
        ]

    headers = [
        "Machine", "GPUs", "Primitive", "Precision", "Samples/s",
        "Epoch (h)", "$/epoch",
    ]
    print_table(headers, table(fastest),
                title=f"{network}: fastest configurations")
    print_table(headers, table(cheapest),
                title=f"{network}: most cost-effective configurations")

    best = fastest[0]
    print(
        f"\nRecommendation: to minimize wall-clock, run {network} on "
        f"{best['machine']} with {best['gpus']} GPUs over "
        f"{best['exchange'].upper()} at {best['scheme']} precision."
    )
    thrifty = cheapest[0]
    print(
        f"To minimize dollars, run on {thrifty['machine']} with "
        f"{thrifty['gpus']} GPU(s) at {thrifty['scheme']} precision "
        f"(${thrifty['dollars_per_epoch']:.2f}/epoch)."
    )


if __name__ == "__main__":
    main()
