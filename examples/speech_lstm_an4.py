"""Speech workload: the paper's AN4 LSTM experiment (Figure 5e).

Non-convolutional networks tolerate aggressive quantization: here the
stacked-LSTM classifier trains to the same loss under 2-bit QSGD and
1bitSGD as at full precision, while the conv nets of
examples/accuracy_vs_precision.py visibly lose accuracy at 2 bits.
The paper plots training loss against *time*; this script does the
same, charging each scheme its simulated 2-GPU AN4 epoch time.

    python examples/speech_lstm_an4.py
"""

from repro.core import ParallelTrainer, TrainingConfig
from repro.data import make_sequence_dataset
from repro.models import speech_lstm
from repro.viz import line_chart

SCHEMES = ["32bit", "qsgd8", "qsgd4", "qsgd2", "1bit"]
EPOCHS = 10


def main() -> None:
    dataset = make_sequence_dataset(
        num_classes=6, train_samples=384, test_samples=192, seed=5
    )

    losses = {}
    for scheme in SCHEMES:
        config = TrainingConfig(
            scheme=scheme,
            exchange="mpi",
            world_size=2,  # the paper runs the LSTM on up to 2 GPUs
            batch_size=16,
            lr=0.05,
            lr_decay=0.95,
            seed=0,
        )
        model = speech_lstm(num_classes=6, seed=1)
        trainer = ParallelTrainer(model, config)
        history = trainer.fit(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, epochs=EPOCHS,
        )
        losses[scheme] = history.series("train_loss")
        print(
            f"{scheme:6s} final loss {losses[scheme][-1]:.4f}  "
            f"test accuracy {history.final_test_accuracy:.3f}  "
            f"{history.total_comm_bytes / 1e6:6.1f} MB moved"
        )

    print("\ntraining loss per epoch (lower is better):")
    print(line_chart(losses, y_label="loss"))
    print(
        "\nAs in the paper's Figure 5e: the recurrent network keeps "
        "converging even at 1-2 bits."
    )


if __name__ == "__main__":
    main()
