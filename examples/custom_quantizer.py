"""Extending the library with a custom gradient codec.

Implements the top-k sparse compressor of Aji & Heafield (EMNLP 2017)
— discussed in the paper's related-work section — as a drop-in
:class:`~repro.quantization.base.Quantizer`, and trains with it through
the standard exchange pipeline.  Local accumulation of the dropped
coordinates comes for free from :class:`ErrorFeedback` (the trainer
engages it because ``requires_error_feedback`` is set).

    python examples/custom_quantizer.py
"""

import numpy as np

from repro import ParallelTrainer, TrainingConfig
from repro.core.algorithm import SynchronousStep
from repro.data import make_image_dataset
from repro.models import tiny_alexnet
from repro.quantization import Quantizer
from repro.quantization.base import EncodedTensor


class TopKSparsifier(Quantizer):
    """Keep only the ``density`` largest-magnitude gradient entries.

    The wire message carries int32 indices and float32 values for the
    surviving entries; everything else is implicitly zero.  Dropped
    mass must be fed back into later rounds (error feedback), exactly
    as Aji & Heafield accumulate the residual locally.
    """

    requires_error_feedback = True

    def __init__(self, density: float = 0.01):
        if not 0.0 < density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.density = density
        self.name = f"topk{density:g}"
        self.nominal_bits = 64.0 * density  # index + value per survivor

    def encode(self, grad, rng=None):
        flat = np.asarray(grad, dtype=np.float32).reshape(-1)
        keep = max(1, int(self.density * flat.size))
        indices = np.argpartition(np.abs(flat), -keep)[-keep:]
        indices = np.sort(indices).astype(np.int32)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={
                "indices": indices,
                "values": flat[indices],
            },
        )

    def decode(self, message):
        size = message.element_count
        flat = np.zeros(size, dtype=np.float32)
        flat[message.payload["indices"]] = message.payload["values"]
        return flat.reshape(message.shape)


def main() -> None:
    dataset = make_image_dataset(
        num_classes=6, train_samples=384, test_samples=192,
        image_size=16, noise=1.2, seed=3,
    )

    config = TrainingConfig(
        scheme="32bit",  # placeholder; swapped for the custom codec below
        exchange="alltoall",
        world_size=4,
        batch_size=32,
        lr=0.01,
        lr_decay=0.93,
        seed=0,
    )
    model = tiny_alexnet(num_classes=6, image_size=16, seed=1)
    trainer = ParallelTrainer(model, config)

    # swap the codec inside the synchronous step for the custom one
    sparsifier = TopKSparsifier(density=0.05)
    trainer.step_engine = SynchronousStep(config, trainer.parameters)
    trainer.step_engine.policy.quantizer = sparsifier
    trainer.step_engine.policy.threshold = 0  # sparsify everything

    print("training with top-5% sparse gradients + error feedback...")
    history = trainer.fit(
        dataset.train_x, dataset.train_y, dataset.test_x, dataset.test_y,
        epochs=10, verbose=True,
    )
    print(
        f"\nfinal test accuracy: {history.final_test_accuracy:.3f} "
        f"({history.total_comm_bytes / 1e6:.1f} MB on the wire)"
    )
    print(
        "Compare with examples/quickstart.py — dense 4-bit QSGD moves "
        "less data than 5% sparse top-k once indices are counted, which "
        "is the paper's related-work argument against sparse schemes on "
        "ImageNet-class models."
    )


if __name__ == "__main__":
    main()
