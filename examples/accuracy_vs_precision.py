"""Accuracy versus precision: the paper's Figure 5 at laptop scale.

Trains a ResNet-style model under every quantization scheme and draws
the accuracy curves as ASCII, reproducing the paper's accuracy
findings: 4/8-bit QSGD and error-fed 1bitSGD match full precision,
2-bit QSGD falls behind on convolutional nets.

    python examples/accuracy_vs_precision.py [--full]
"""

import sys

from repro.study import run_accuracy_experiment


def ascii_curve(values, width=50, lo=0.0, hi=1.0):
    cells = [" "] * width
    for value in values:
        position = int((value - lo) / (hi - lo) * (width - 1))
        position = max(0, min(width - 1, position))
        cells[position] = "o"
    return "".join(cells)


def main() -> None:
    scale = "full" if "--full" in sys.argv else "quick"
    print(f"Running the fig5d study at scale={scale!r}...")
    histories = run_accuracy_experiment("fig5d", scale=scale)

    print("\ntest accuracy per epoch (0 ... 1):")
    for label, history in histories.items():
        series = history.series("test_accuracy")
        print(f"  {label:18s} |{ascii_curve(series)}| "
              f"final={series[-1]:.3f}")

    final = {
        label: h.final_test_accuracy for label, h in histories.items()
    }
    baseline = final["32bit"]
    print("\ngap to full precision (negative = worse):")
    for label, accuracy in final.items():
        if label == "32bit":
            continue
        print(f"  {label:18s} {accuracy - baseline:+.3f}")


if __name__ == "__main__":
    main()
