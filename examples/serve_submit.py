"""Submit training jobs to a running `repro serve` daemon — stdlib only.

Start a daemon in one terminal:

    python -m repro serve --root /tmp/serve-demo --port 8080

then run this client in another:

    python examples/serve_submit.py [--base http://127.0.0.1:8080]

The client submits a full-precision and a QSGD 4-bit job, polls both
to completion while tailing the live NDJSON metrics stream of one of
them, prints the final digests, and demonstrates cancellation on a
third, long job.  Only urllib / json from the standard library are
used, so the snippet transplants into any environment that can reach
the daemon's port.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

BASE_SPEC = {
    "model": "alexnet",
    "exchange": "mpi",
    "world_size": 2,
    "batch_size": 32,
    "epochs": 3,
    "lr": 0.01,
    "classes": 4,
    "image_size": 8,
    "train_samples": 96,
    "test_samples": 48,
}

TERMINAL = {"succeeded", "failed", "cancelled", "evicted"}


def request(base, path, payload=None, method=None):
    data = None if payload is None else json.dumps(payload).encode()
    call = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(call, timeout=30) as response:
        return json.loads(response.read() or b"{}")


def submit(base, spec, priority=0):
    record = request(base, "/jobs", {"spec": spec, "priority": priority})
    print(f"submitted {record['job_id']} "
          f"(scheme={spec['scheme']}, priority={priority})")
    return record["job_id"]


def wait(base, job_id):
    while True:
        record = request(base, f"/jobs/{job_id}")
        if record["state"] in TERMINAL:
            return record
        time.sleep(0.2)


def tail_metrics(base, job_id):
    """Stream the job's NDJSON metrics until it reaches a terminal state."""
    url = base + f"/jobs/{job_id}/metrics?follow=1"
    with urllib.request.urlopen(url, timeout=300) as stream:
        for raw in stream:
            event = json.loads(raw)
            if event.get("type") == "epoch":
                print(f"  [{job_id}] epoch {event['epoch']}: "
                      f"test_acc={event['test_accuracy']:.3f} "
                      f"comm_bytes={event['comm_bytes']}")
            elif event.get("type") == "phase_totals":
                print(f"  [{job_id}] phase totals: {event}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base", default="http://127.0.0.1:8080")
    args = parser.parse_args()
    base = args.base.rstrip("/")

    try:
        health = request(base, "/healthz")
    except (urllib.error.URLError, OSError):
        print(f"no daemon at {base} — start one with:\n"
              f"    python -m repro serve --root /tmp/serve-demo "
              f"--port 8080")
        return 1
    print(f"daemon up: pool={health['max_ranks']} ranks, "
          f"queue={health['queue']}, scheduler={health['scheduler']}")

    full = submit(base, {**BASE_SPEC, "scheme": "32bit"}, priority=1)
    quant = submit(base, {**BASE_SPEC, "scheme": "qsgd4"}, priority=5)

    print(f"tailing metrics for {quant} (higher priority, runs first):")
    tail_metrics(base, quant)

    for job_id in (full, quant):
        record = wait(base, job_id)
        result = record["result"] or {}
        print(f"{job_id}: {record['state']} "
              f"digest={result.get('digest', '?')[:16]} "
              f"final_acc={result.get('final_test_accuracy')}")

    victim = submit(base, {**BASE_SPEC, "scheme": "qsgd2", "epochs": 50})
    time.sleep(0.5)
    request(base, f"/jobs/{victim}/cancel", method="POST")
    record = wait(base, victim)
    print(f"{victim}: {record['state']} (cancelled mid-training)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
