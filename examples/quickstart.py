"""Quickstart: train a model on 4 simulated GPUs with 4-bit gradients.

Runs the same model twice — once at full precision, once with QSGD
4-bit communication — and reports accuracy plus the bytes each run put
on the wire.

    python examples/quickstart.py
"""

from repro import ParallelTrainer, TrainingConfig
from repro.data import make_image_dataset
from repro.models import tiny_alexnet


def main() -> None:
    dataset = make_image_dataset(
        num_classes=6,
        train_samples=384,
        test_samples=192,
        image_size=16,
        noise=1.2,
        seed=3,
    )

    results = {}
    for scheme in ("32bit", "qsgd4"):
        config = TrainingConfig(
            scheme=scheme,
            exchange="mpi",
            world_size=4,
            batch_size=32,
            lr=0.01,
            lr_decay=0.93,
            seed=0,
        )
        model = tiny_alexnet(num_classes=6, image_size=16, seed=1)
        trainer = ParallelTrainer(model, config)
        print(f"\n--- training with {scheme} gradients ---")
        history = trainer.fit(
            dataset.train_x,
            dataset.train_y,
            dataset.test_x,
            dataset.test_y,
            epochs=10,
            verbose=True,
        )
        results[scheme] = history

    full = results["32bit"]
    quant = results["qsgd4"]
    savings = full.total_comm_bytes / quant.total_comm_bytes
    print("\n=== summary ===")
    print(f"32bit final test accuracy: {full.final_test_accuracy:.3f}")
    print(f"qsgd4 final test accuracy: {quant.final_test_accuracy:.3f}")
    print(
        f"communication: {full.total_comm_bytes / 1e6:.1f} MB vs "
        f"{quant.total_comm_bytes / 1e6:.1f} MB "
        f"({savings:.1f}x less data on the wire)"
    )


if __name__ == "__main__":
    main()
