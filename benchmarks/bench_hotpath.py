"""Hot-path throughput and allocation benchmark with a regression gate.

Measures the quantized aggregation step (encode -> exchange -> fused
decode-accumulate -> mean) on the paper's primary low-precision cell —
QSGD 4-bit over the NCCL ring with K=4 ranks — in both execution modes:

``workspace``
    the zero-allocation path: encode/decode scratch, packed words, and
    the running aggregate all live in a reused :class:`EncodeWorkspace`
    arena, and the exchanges fold each rank's decode straight into the
    accumulator (``decode_into(..., accumulate=True)`` /
    ``Quantizer.sum_decoder``).

``allocating``
    the reference path (``TrainingConfig(workspace=False)``): every
    encode/decode materializes fresh arrays.  Both modes produce
    bit-identical trajectories (tests/comm/test_fused_exchange.py), so
    the delta is pure allocator and memory-bandwidth cost.

Two metrics per mode, measured in separate passes so instrumentation
never pollutes the timing:

* ``steps_per_sec`` — wall-clock rate of full aggregation steps over a
  five-layer AlexNet-like parameter inventory.
* ``alloc_bytes_per_step`` — tracemalloc peak-delta per step (the
  bytes of fresh Python-heap allocation one step performs).

A third pass guards the telemetry instrumentation: the per-call cost
of the disabled (``NULL_TRACER``) span sites the hot path now crosses
is measured directly and projected onto one workspace step; the run
fails if that projection exceeds 2% of the measured step time.

The run happens under one *kernel backend* (``--backend`` forces
``numba``/``cext``/``numpy``; the default is the registry's
auto-selection, see :mod:`repro.quantization.kernels`).  Two extra
report sections compare backends directly: ``backends`` re-times the
workspace mode under every backend available in the environment, and
``kernel_micro`` times the four hot kernels (bucketize, quantize,
pack/unpack, fused decode-accumulate) in isolation on the dominant
fc1 layer.

The JSON report is written to ``BENCH_hotpath.json``.  With ``--gate
BASELINE.json`` the script exits non-zero when the workspace mode's
steps/sec regresses more than ``--gate-tolerance`` (default 20%) below
the checked-in baseline — CI runs this as a smoke gate on every push.

Run with: PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import tracemalloc

import numpy as np

from repro.core.algorithm import SynchronousStep
from repro.core.config import TrainingConfig
from repro.core.trainer import ParallelTrainer
from repro.data import make_image_dataset
from repro.models import tiny_alexnet
from repro.quantization import EncodeWorkspace, bitpack, kernels
from repro.quantization.bucketing import bucket_plan
from repro.quantization.qsgd import Qsgd
from repro.telemetry import NULL_TRACER

#: AlexNet-like layer inventory (rows, cols) — conv kernels flattened
#: the way the exchanges see them.  fc1 dominates, as in the paper's
#: AlexNet where the fully connected layers hold most of the traffic.
PARAM_SHAPES = {
    "conv1": (32, 75),
    "conv2": (64, 800),
    "conv3": (128, 1152),
    "fc1": (256, 2048),
    "fc2": (10, 256),
}

WORLD_SIZE = 4


class _Param:
    """Minimal stand-in for nn.Parameter: name/shape/size/kind."""

    def __init__(self, name: str, shape: tuple[int, int]):
        self.name = name
        self.shape = shape
        self.size = int(np.prod(shape))
        self.kind = "param"


def build_step(workspace: bool) -> SynchronousStep:
    config = TrainingConfig(
        scheme="qsgd4",
        exchange="nccl",
        world_size=WORLD_SIZE,
        batch_size=16,
        seed=0,
        workspace=workspace,
    )
    params = [_Param(n, s) for n, s in PARAM_SHAPES.items()]
    return SynchronousStep(config, params)


def make_grads() -> dict[str, list[np.ndarray]]:
    rngs = [np.random.default_rng(100 + r) for r in range(WORLD_SIZE)]
    return {
        name: [
            rngs[r].normal(size=shape).astype(np.float32)
            for r in range(WORLD_SIZE)
        ]
        for name, shape in PARAM_SHAPES.items()
    }


def run_steps(step: SynchronousStep, grads, n: int) -> None:
    for _ in range(n):
        for name in PARAM_SHAPES:
            step.aggregate(name, grads[name])


def measure_mode(workspace: bool, steps: int, warmup: int) -> dict:
    grads = make_grads()

    # timing pass (no instrumentation)
    step = build_step(workspace)
    run_steps(step, grads, warmup)
    t0 = time.perf_counter()
    run_steps(step, grads, steps)
    elapsed = time.perf_counter() - t0

    # allocation pass: tracemalloc slows execution, so it runs
    # separately and only the byte counts are kept
    step = build_step(workspace)
    run_steps(step, grads, warmup)  # arenas reach steady state first
    tracemalloc.start()
    alloc_steps = max(1, min(steps, 10))
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    run_steps(step, grads, alloc_steps)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "steps_per_sec": steps / elapsed,
        "step_ms": 1e3 * elapsed / steps,
        "alloc_bytes_per_step": int(
            max(0, peak - before) / alloc_steps
        ),
    }


def measure_backends(steps: int, warmup: int) -> dict:
    """Workspace-mode throughput under every available kernel backend."""
    rows = {}
    for name in kernels.available_backends():
        with kernels.use_backend(name):
            rows[name] = measure_mode(True, steps, warmup)
        print(
            f"backend {name:7s} {rows[name]['steps_per_sec']:8.2f} steps/s"
        )
    return rows


def measure_kernel_micro(repeats: int) -> dict:
    """Per-kernel timings on the dominant fc1 layer, per backend.

    Times the hot kernels in isolation — the fused quantize+pack and
    unpack+decode-accumulate the step actually runs, plus the unfused
    bucketize / quantize / pack / unpack / decode-accumulate stages —
    using the same workspace buffers the training step uses, so the
    numbers decompose the per-step cost directly.
    """
    codec = Qsgd(4)
    shape = PARAM_SHAPES["fc1"]
    grad = np.random.default_rng(0).normal(size=shape).astype(np.float32)
    bucket_size = codec.effective_bucket(grad.size)
    plan = bucket_plan(grad.size, bucket_size)
    lanes = (plan.n_buckets, bucket_size)

    def timed(fn) -> float:
        fn()  # warm (compile/allocate) outside the timed region
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        return 1e3 * (time.perf_counter() - t0) / repeats

    sections = {}
    for name in kernels.available_backends():
        with kernels.use_backend(name):
            backend = kernels.active()
            ws = EncodeWorkspace()
            buckets = ws.array("qsgd.buckets", lanes)
            scales = ws.array("qsgd.scales", plan.n_buckets)
            rand = np.random.default_rng(1).random(lanes)
            codes = ws.array("qsgd.codes", lanes, np.uint32)
            words = np.empty(
                bitpack.packed_words(plan.padded, codec.bits), np.uint32
            )
            acc = ws.zeros("sumdec.bucket_acc", lanes)
            out = np.empty(shape, dtype=np.float32)

            backend.bucketize(grad, buckets)
            backend.absmax_scales(buckets, scales, ws)
            backend.quantize_sign(
                buckets, scales, codec.bits, rand, codes, ws
            )
            flat_codes = codes.reshape(-1)

            sections[name] = {
                # the fused paths the training step actually runs
                "quantize_pack_ms": timed(
                    lambda: backend.quantize_sign_packed(
                        buckets, scales, codec.bits, rand, words, ws
                    )
                ),
                "unpack_decode_acc_ms": timed(
                    lambda: backend.dequantize_sign_packed(
                        words, scales, codec.bits, acc, True, ws
                    )
                ),
            }
            sections[name] |= {
                "bucketize_ms": timed(
                    lambda: backend.bucketize(grad, buckets)
                ),
                "quantize_ms": timed(
                    lambda: (
                        backend.absmax_scales(buckets, scales, ws),
                        backend.quantize_sign(
                            buckets, scales, codec.bits, rand, codes, ws
                        ),
                    )
                ),
                "pack_ms": timed(
                    lambda: bitpack.pack_into(
                        flat_codes, codec.bits, words,
                        workspace=ws, check=False,
                    )
                ),
                "unpack_ms": timed(
                    lambda: bitpack.unpack_into(
                        words, plan.padded, codec.bits, workspace=ws
                    )
                ),
                "decode_acc_ms": timed(
                    lambda: backend.dequantize_sign(
                        codes, scales, codec.bits, acc, True, ws
                    )
                ),
                "unbucketize_ms": timed(
                    lambda: backend.unbucketize(acc, shape, out, False)
                ),
            }
            line = "  ".join(
                f"{k.removesuffix('_ms')} {v:6.3f}ms"
                for k, v in sections[name].items()
            )
            print(f"kernels {name:7s} {line}")
    return sections


def measure_null_tracer_overhead(step_seconds: float) -> dict:
    """Projected share of one step spent in disabled tracing sites.

    Measures the real per-call cost of the shared null span, then
    multiplies by the instrumentation points one step crosses (the
    NCCL path opens an encode and a decode span per rank per
    parameter; doubled to also bound the counter None-checks).
    """
    span = NULL_TRACER.span
    iterations = 200_000
    t0 = time.perf_counter()
    for _ in range(iterations):
        with span("encode", 0):
            pass
    per_span = (time.perf_counter() - t0) / iterations
    spans_per_step = 2 * 2 * WORLD_SIZE * len(PARAM_SHAPES)
    overhead_seconds = per_span * spans_per_step
    return {
        "null_span_ns": per_span * 1e9,
        "spans_per_step": spans_per_step,
        "overhead_fraction_of_step": overhead_seconds / step_seconds,
    }


#: the comm-bound headline cell for the adaptive-policy comparison:
#: NCCL ring, K=4, link paced slow enough that wire time dominates
POLICY_CELL = dict(exchange="nccl", world_size=4, link_gbps=0.02)

#: static schemes the adaptive policy is raced against
POLICY_STATIC_SCHEMES = ("32bit", "qsgd8", "qsgd4", "terngrad")

#: a static run within this much final accuracy of the adaptive run
#: counts as "equal accuracy" for the epoch-time comparison
POLICY_ACCURACY_TOLERANCE = 0.02


def measure_adaptive_policy(quick: bool) -> dict:
    """Epoch time of the adaptive bit-width policy vs every static scheme.

    Trains the same comm-bound cell (:data:`POLICY_CELL`, real
    ``link_gbps`` pacing, so wall-clock epoch time is dominated by
    encoded payload bytes) once per static scheme and once with
    ``policy="adaptive"``, then reports the epoch-time win over the
    *best static at equal final accuracy* — the fastest static run
    whose accuracy is within :data:`POLICY_ACCURACY_TOLERANCE` of the
    adaptive run's (falling back to the most accurate static when none
    reaches that bar, i.e. when adaptive wins accuracy outright).
    """
    epochs = 2 if quick else 3
    dataset = make_image_dataset(
        num_classes=4, train_samples=96, test_samples=48,
        image_size=8, noise=0.8, seed=0,
    )

    def train(scheme: str, policy: str) -> dict:
        config = TrainingConfig(
            scheme=scheme, policy=policy, batch_size=16, seed=0,
            **POLICY_CELL,
        )
        model = tiny_alexnet(num_classes=4, image_size=8, seed=1)
        with ParallelTrainer(model, config) as trainer:
            history = trainer.fit(
                dataset.train_x, dataset.train_y,
                dataset.test_x, dataset.test_y, epochs=epochs,
            )
        walls = [epoch.wall_seconds for epoch in history.epochs]
        row = {
            "scheme": scheme,
            "policy": policy,
            "final_accuracy": history.final_test_accuracy,
            "epoch_seconds": sum(walls) / len(walls),
            "comm_megabytes": history.total_comm_bytes / 1e6,
        }
        print(
            f"policy {policy:8s} {scheme:9s} "
            f"acc={row['final_accuracy']:.3f} "
            f"epoch={row['epoch_seconds']:.3f}s"
        )
        return row

    statics = [train(s, "static") for s in POLICY_STATIC_SCHEMES]
    adaptive = train("qsgd8", "adaptive")

    bar = adaptive["final_accuracy"] - POLICY_ACCURACY_TOLERANCE
    candidates = [s for s in statics if s["final_accuracy"] >= bar]
    if not candidates:
        # no static matches the adaptive accuracy; race the closest one
        top = max(s["final_accuracy"] for s in statics)
        candidates = [s for s in statics if s["final_accuracy"] == top]
    best_static = min(candidates, key=lambda s: s["epoch_seconds"])
    win = best_static["epoch_seconds"] / adaptive["epoch_seconds"]
    print(
        f"adaptive epoch-time win {win:.2f}x vs best static at equal "
        f"accuracy ({best_static['scheme']}, "
        f"acc {best_static['final_accuracy']:.3f})"
    )
    return {
        "cell": dict(POLICY_CELL),
        "epochs": epochs,
        "accuracy_tolerance": POLICY_ACCURACY_TOLERANCE,
        "static": statics,
        "adaptive": adaptive,
        "best_static_at_equal_accuracy": best_static["scheme"],
        "epoch_time_win": win,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--steps", type=int, default=50, help="timed steps per mode"
    )
    parser.add_argument(
        "--warmup", type=int, default=5, help="untimed warmup steps"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer steps (15 timed, 3 warmup)",
    )
    parser.add_argument(
        "--backend",
        choices=kernels.BACKEND_ORDER,
        default=None,
        help="force a kernel backend for the whole run "
        "(default: registry auto-selection)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_hotpath.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--gate",
        default=None,
        metavar="BASELINE",
        help="baseline JSON; exit 1 if workspace steps/sec regresses",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=0.2,
        help="allowed fractional slowdown vs the baseline (default 0.2)",
    )
    parser.add_argument(
        "--policy",
        choices=["adaptive", "none"],
        default="adaptive",
        help="measure the adaptive bit-width policy axis (comm-bound "
        "link-paced training runs) or skip it with 'none'",
    )
    parser.add_argument(
        "--policy-gate",
        type=float,
        default=None,
        metavar="WIN",
        help="exit 1 unless the adaptive policy's epoch-time win over "
        "the best equal-accuracy static scheme reaches WIN (e.g. 1.15)",
    )
    args = parser.parse_args(argv)
    steps = 15 if args.quick else args.steps
    warmup = 3 if args.quick else args.warmup

    if args.backend is not None:
        kernels.set_backend(args.backend)
    print(f"kernel backend: {kernels.backend_name()}")

    results = {}
    for label, use_ws in (("workspace", True), ("allocating", False)):
        results[label] = measure_mode(use_ws, steps, warmup)
        print(
            f"{label:11s} {results[label]['steps_per_sec']:8.2f} steps/s  "
            f"{results[label]['alloc_bytes_per_step']:>12,d} B/step"
        )

    ws, alloc = results["workspace"], results["allocating"]
    speedup = ws["steps_per_sec"] / alloc["steps_per_sec"]
    alloc_drop = alloc["alloc_bytes_per_step"] / max(
        1, ws["alloc_bytes_per_step"]
    )
    print(f"speedup     {speedup:8.2f}x   alloc drop {alloc_drop:,.1f}x")

    backend_rows = measure_backends(steps, warmup)
    micro = measure_kernel_micro(repeats=20 if args.quick else 100)

    policy_section = None
    if args.policy == "adaptive":
        policy_section = measure_adaptive_policy(args.quick)

    tracer_overhead = measure_null_tracer_overhead(
        ws["step_ms"] / 1e3
    )
    fraction = tracer_overhead["overhead_fraction_of_step"]
    print(
        f"null tracer {tracer_overhead['null_span_ns']:8.0f} ns/span  "
        f"{fraction:.3%} of a workspace step"
    )

    report = {
        "bench": "hotpath",
        "cell": {
            "scheme": "qsgd4",
            "exchange": "nccl",
            "world_size": WORLD_SIZE,
            "params": {k: list(v) for k, v in PARAM_SHAPES.items()},
        },
        "steps": steps,
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernel_backend": kernels.backend_name(),
        "results": results,
        "speedup_vs_allocating": speedup,
        "alloc_drop_vs_allocating": alloc_drop,
        "backends": backend_rows,
        "kernel_micro": micro,
        "null_tracer": tracer_overhead,
    }
    if policy_section is not None:
        report["adaptive_policy"] = policy_section
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")

    if fraction > 0.02:
        print(
            f"TRACER FAIL: disabled tracing costs {fraction:.2%} of a "
            f"step (limit 2%)"
        )
        return 1

    if args.gate is not None:
        with open(args.gate) as fh:
            baseline = json.load(fh)
        base = baseline["results"]["workspace"]["steps_per_sec"]
        floor = base * (1.0 - args.gate_tolerance)
        got = ws["steps_per_sec"]
        if got < floor:
            print(
                f"GATE FAIL: workspace {got:.2f} steps/s is below "
                f"{floor:.2f} ({base:.2f} baseline - "
                f"{args.gate_tolerance:.0%} tolerance)"
            )
            return 1
        print(
            f"gate ok: {got:.2f} steps/s >= {floor:.2f} "
            f"(baseline {base:.2f})"
        )

    if args.policy_gate is not None:
        if policy_section is None:
            print("POLICY GATE FAIL: --policy-gate requires --policy "
                  "adaptive")
            return 1
        win = policy_section["epoch_time_win"]
        if win < args.policy_gate:
            print(
                f"POLICY GATE FAIL: adaptive epoch-time win {win:.2f}x "
                f"is below the required {args.policy_gate:.2f}x"
            )
            return 1
        print(
            f"policy gate ok: {win:.2f}x >= {args.policy_gate:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
