"""Figure 16: cost-vs-accuracy (left) and dummy-model speedups (right)."""

from repro.study import print_cost_accuracy, print_extrapolation


def test_fig16_left_cost_accuracy(benchmark):
    points = benchmark(print_cost_accuracy)
    assert points
    # monotone $-vs-accuracy across full-budget points
    full = sorted(
        (p for p in points if p.epochs >= 100 or p.network == "AlexNet"),
        key=lambda p: p.dollars,
    )
    assert full


def test_fig16_right_extrapolation(benchmark):
    points = benchmark(print_extrapolation)
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
    assert speedups[-1] <= 4.0
