"""Figures 12-15: scalability curves for every machine/primitive pair."""

import math

import pytest

from repro.study import print_scalability
from repro.study.scalability import SCALABILITY_SETUPS


@pytest.mark.parametrize("figure", sorted(SCALABILITY_SETUPS))
def test_scalability_figure(benchmark, figure):
    series = benchmark(lambda: print_scalability(figure))
    assert series
    for s in series:
        for value in s.scalability:
            assert math.isnan(value) or value > 0
