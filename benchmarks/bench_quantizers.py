"""Microbenchmarks: encode/decode throughput of every codec.

These measure the numpy substrate's own quantization kernels (the
analogue of the paper's CUDA kernel tuning in Section 3.2.1) and print
the achieved element rates and wire sizes.
"""

import numpy as np
import pytest

from repro.quantization import make_quantizer

SCHEMES = ["32bit", "1bit", "1bit*", "qsgd2", "qsgd4", "qsgd8", "qsgd16"]
SHAPE = (512, 2048)  # ~1M elements


@pytest.fixture(scope="module")
def gradient():
    return (
        np.random.default_rng(0).normal(size=SHAPE).astype(np.float32)
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_encode_throughput(benchmark, gradient, scheme):
    codec = make_quantizer(scheme)
    rng = np.random.default_rng(1)
    message = benchmark(lambda: codec.encode(gradient, rng))
    elements = gradient.size
    rate = elements / benchmark.stats["mean"] / 1e6
    print(
        f"\n{scheme}: {rate:.0f} Melem/s encode, "
        f"{message.bits_per_element:.2f} bits/element on the wire"
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_decode_throughput(benchmark, gradient, scheme):
    codec = make_quantizer(scheme)
    message = codec.encode(gradient, np.random.default_rng(1))
    decoded = benchmark(lambda: codec.decode(message))
    assert decoded.shape == gradient.shape
