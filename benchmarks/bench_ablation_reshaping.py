"""Ablation: column-wise vs bucket-reshaped 1bitSGD (DESIGN.md #1/#5).

Quantifies the Section 3.2.2 artefact on a conv-shaped gradient (rows
= kernel width): the stock scheme's wire size and group count explode,
and the reshaped variant fixes both.  Also sweeps the bucket size to
expose the accuracy/overhead trade-off (paper Section 5.1).
"""

import numpy as np
import pytest

from repro.quantization import OneBitSgd, OneBitSgdReshaped

#: a ResNet-style conv gradient in CNTK layout: 3 rows, many columns
CONV_SHAPE = (3, 200_000)


@pytest.fixture(scope="module")
def conv_gradient():
    return (
        np.random.default_rng(0).normal(size=CONV_SHAPE).astype(np.float32)
    )


def test_column_wise_on_conv_layers(benchmark, conv_gradient):
    codec = OneBitSgd()
    message = benchmark(lambda: codec.encode(conv_gradient))
    print(
        f"\nstock 1bitSGD on {CONV_SHAPE}: "
        f"{message.bits_per_element:.1f} bits/element "
        "(no compression at all — the paper's artefact)"
    )
    assert message.bits_per_element >= 32.0


def test_reshaped_on_conv_layers(benchmark, conv_gradient):
    codec = OneBitSgdReshaped(bucket_size=64)
    message = benchmark(lambda: codec.encode(conv_gradient))
    print(
        f"\n1bitSGD* (d=64) on {CONV_SHAPE}: "
        f"{message.bits_per_element:.2f} bits/element"
    )
    assert message.bits_per_element < 3.0


@pytest.mark.parametrize("bucket", [16, 64, 512, 8192])
def test_bucket_size_sweep(benchmark, conv_gradient, bucket):
    codec = OneBitSgdReshaped(bucket_size=bucket)
    message = benchmark(lambda: codec.encode(conv_gradient))
    decoded = codec.decode(message)
    error = float(np.abs(decoded - conv_gradient).mean())
    print(
        f"\nbucket={bucket}: {message.bits_per_element:.2f} bits/elem, "
        f"reconstruction MAE={error:.3f}"
    )
