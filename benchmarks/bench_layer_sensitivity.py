"""Layer-type sensitivity (paper Section 5.1) as a bench target."""

from repro.study import print_layer_sensitivity

from conftest import run_once


def test_layer_sensitivity(benchmark):
    results = run_once(
        benchmark, lambda: print_layer_sensitivity(scheme="qsgd2",
                                                   epochs=6)
    )
    by_variant = {r.variant: r for r in results}
    # quantizing only the FC layers must move far less data than
    # full precision (AlexNet-class models are FC-dominated)
    assert (
        by_variant["quantize fc only"].comm_megabytes
        < by_variant["quantize none (32bit)"].comm_megabytes / 3
    )
