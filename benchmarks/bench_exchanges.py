"""Microbenchmarks: the collective exchange implementations.

Measures the in-process MPI reduce-and-broadcast, NCCL ring, and
literal Algorithm-1 exchanges, and prints the wire traffic each moves
for the same aggregation job.
"""

import numpy as np
import pytest

from repro.comm import make_exchange
from repro.quantization import make_quantizer

WORLD = 4
SHAPE = (256, 512)


@pytest.fixture(scope="module")
def tensors():
    return [
        np.random.default_rng(rank).normal(size=SHAPE).astype(np.float32)
        for rank in range(WORLD)
    ]


@pytest.mark.parametrize("exchange_name", ["mpi", "nccl", "alltoall"])
@pytest.mark.parametrize("scheme", ["32bit", "qsgd4"])
def test_exchange_throughput(benchmark, tensors, exchange_name, scheme):
    codec = make_quantizer(scheme)
    exchange = make_exchange(exchange_name, WORLD)
    rng = np.random.default_rng(0)

    result = benchmark(
        lambda: exchange.exchange("w", tensors, codec, rng)
    )
    assert result.aggregate.shape == SHAPE
    per_call = exchange.traffic.total_bytes / max(
        len(exchange.traffic.records), 1
    )
    print(
        f"\n{exchange_name}/{scheme}: "
        f"{exchange.traffic.total_bytes / 1e6:.1f} MB total traffic "
        f"({per_call / 1e3:.1f} KB per message) across all calls"
    )
