"""Figures 10 and 11: samples/second tables, with paper comparison.

Prints the simulated tables in the paper's layout and the per-network
mean relative error against the published numbers.
"""

import numpy as np
import pytest

from repro.study import print_throughput_tables


@pytest.mark.parametrize("exchange", ["mpi", "nccl"])
def test_throughput_tables(benchmark, exchange):
    cells = benchmark(lambda: print_throughput_tables(exchange))
    compared = [c for c in cells if c.paper is not None]
    errors = [abs(c.relative_error) for c in compared]
    figure = "Figure 10" if exchange == "mpi" else "Figure 11"
    print(
        f"\n{figure} vs paper: {len(compared)} cells, "
        f"mean |relative error| = {np.mean(errors):.1%}, "
        f"median = {np.median(errors):.1%}"
    )
    assert np.mean(errors) < 0.20
