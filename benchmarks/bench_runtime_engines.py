"""Sequential vs. threaded vs. process execution engines: throughput.

The concurrent engines' advantage is *overlap*: each rank ships its
encoded gradients on its own paced link (``link_gbps``), concurrently
with the other ranks' backward — the DAG-model effect the paper's
epoch-time figures measure.  The sequential engine runs the same ranks
on one thread, so every rank's wire time lands on the critical path.
The link is calibrated so the epoch's total wire time is a fixed
fraction of its compute time — the communication-bound regime where
ResNet110-class models sit in the paper's MPI tables (446 small
matrices).

The two concurrent tiers differ in what else they can hide.  The
threaded engine overlaps wire time and whatever compute numpy/BLAS
runs outside the GIL, but the ResNet110-class model is *GIL-bound*:
hundreds of small-matrix ops whose per-op Python dispatch dominates,
so thread-level compute parallelism saturates.  The process engine
runs each rank in its own interpreter — no shared GIL — so it is the
only tier whose compute keeps scaling with cores on that workload.
``measure_gil_bound`` pins the headline cell: K=4 ranks on the
GIL-bound model in the communication-bound regime, where the process
engine must beat the sequential engine by >2x steps/sec
(``python benchmarks/bench_runtime_engines.py`` writes the checked-in
``BENCH_engines.json`` entry).

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_runtime_engines.py -q -s
or standalone: PYTHONPATH=src python benchmarks/bench_runtime_engines.py [--quick]
"""

import math
import time

from repro.core import ParallelTrainer, TrainingConfig
from repro.data import make_image_dataset
from repro.models import tiny_resnet

#: CIFAR ResNet110 analogue: the zoo's resnet (same widths/stages as
#: ResNet110, depth scaled for the numpy substrate) on CIFAR-shaped
#: synthetic data
NUM_CLASSES = 4
IMAGE_SIZE = 8
BATCH = 32
TRAIN_SAMPLES = 128
STEPS_PER_EPOCH = math.ceil(TRAIN_SAMPLES / BATCH)

ENGINES = ("sequential", "threaded", "process")


def _make_dataset():
    return make_image_dataset(
        num_classes=NUM_CLASSES,
        train_samples=TRAIN_SAMPLES,
        test_samples=8,
        image_size=IMAGE_SIZE,
        noise=0.8,
        seed=0,
    )


def build_trainer(engine, world_size, link_gbps=None,
                  aggregation_frequency=1):
    config = TrainingConfig(
        scheme="32bit",
        exchange="mpi",
        world_size=world_size,
        batch_size=BATCH,
        lr=0.01,
        seed=0,
        engine=engine,
        link_gbps=link_gbps,
        aggregation_frequency=aggregation_frequency,
    )
    model = tiny_resnet(num_classes=NUM_CLASSES, seed=1)
    return ParallelTrainer(model, config)


def epoch_seconds(trainer, dataset):
    start = time.perf_counter()
    trainer.train_epoch(dataset.train_x, dataset.train_y)
    return time.perf_counter() - start


def balanced_link_gbps(dataset, world_size, comm_fraction=0.75):
    """Link rate putting the epoch's wire time at ``comm_fraction``
    of its compute time (summed across ranks, as the sequential
    engine pays it)."""
    with build_trainer("sequential", world_size) as trainer:
        epoch_seconds(trainer, dataset)  # warm-up (allocations, caches)
        compute_s = epoch_seconds(trainer, dataset)
        payload = trainer.engine.per_rank_payload_nbytes
    wire_bytes = world_size * payload * STEPS_PER_EPOCH
    return 8.0 * wire_bytes / (comm_fraction * compute_s) / 1e9


def measure(dataset, world_size, comm_fraction=0.75, repeats=3):
    link = balanced_link_gbps(dataset, world_size, comm_fraction)
    seconds = {}
    for engine in ENGINES:
        with build_trainer(engine, world_size, link_gbps=link) as trainer:
            epoch_seconds(trainer, dataset)  # warm-up (+ process spawn)
            seconds[engine] = min(
                epoch_seconds(trainer, dataset) for _ in range(repeats)
            )
    result = {"link_gbps": link}
    for engine in ENGINES:
        result[f"{engine}_sps"] = TRAIN_SAMPLES / seconds[engine]
        result[f"{engine}_steps_per_sec"] = (
            STEPS_PER_EPOCH / seconds[engine]
        )
        result[f"{engine}_speedup"] = (
            seconds["sequential"] / seconds[engine]
        )
    return result


def measure_gil_bound(dataset, world_size=4, repeats=3):
    """The headline cell: GIL-bound compute, communication-bound wire.

    ``comm_fraction=4`` puts the sequential engine's epoch at
    compute + 4x wire; a concurrent engine pays the wire once (its
    ranks' paced links run in parallel), so the DAG-model ideal is
    ``4(1+f)/(4+f) = 2.5x`` at K=4 before any compute parallelism.
    On multi-core hosts the process engine adds the compute scaling
    the GIL denies the threaded tier.
    """
    return measure(
        dataset, world_size, comm_fraction=4.0, repeats=repeats
    )


def measure_aggregation(dataset, world_size=4, frequencies=(1, 8),
                        comm_fraction=4.0, repeats=3):
    """Periodic synchronization on the comm-bound cell.

    Runs the sequential engine (every rank's wire time on the critical
    path — the regime aggregation is for) at each ``aggregation_
    frequency`` over the same calibrated link, reporting steps/sec and
    measured wire bytes per epoch.  With frequency N the exchange runs
    once per N steps, so wire bytes drop by ~N (exactly N when the
    epoch's step count divides N).
    """
    link = balanced_link_gbps(dataset, world_size, comm_fraction)
    out = {"link_gbps": link}
    for n in frequencies:
        with build_trainer(
            "sequential", world_size, link_gbps=link,
            aggregation_frequency=n,
        ) as trainer:
            epoch_seconds(trainer, dataset)  # warm-up
            traffic = trainer.step_engine.exchange.traffic
            traffic.reset()
            seconds = min(
                epoch_seconds(trainer, dataset) for _ in range(repeats)
            )
            wire = traffic.total_bytes // repeats
        out[f"n{n}_steps_per_sec"] = STEPS_PER_EPOCH / seconds
        out[f"n{n}_wire_bytes"] = wire
    base = frequencies[0]
    for n in frequencies[1:]:
        out[f"n{n}_wire_reduction"] = (
            out[f"n{base}_wire_bytes"] / max(out[f"n{n}_wire_bytes"], 1)
        )
        out[f"n{n}_speedup"] = (
            out[f"n{n}_steps_per_sec"] / out[f"n{base}_steps_per_sec"]
        )
    return out


# -- pytest entry points ----------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def dataset():
        return _make_dataset()

    @pytest.mark.parametrize("world_size", [2, 4, 8])
    def test_engine_throughput(benchmark, dataset, world_size):
        from conftest import run_once

        result = run_once(benchmark, lambda: measure(dataset, world_size))
        print(
            f"\nResNet110-class, K={world_size}, paced link "
            f"{result['link_gbps'] * 1e3:.1f} Mbps: "
            + ", ".join(
                f"{engine} {result[f'{engine}_sps']:.1f} samples/s "
                f"({result[f'{engine}_speedup']:.2f}x)"
                for engine in ENGINES
            )
        )
        # concurrent per-rank links must hide most of the wire time;
        # with wire = 0.75 x compute the ideal is 1.75x (plus compute
        # parallelism on multi-core hosts)
        if world_size == 4:
            assert result["threaded_speedup"] > 1.3
            assert result["process_speedup"] > 1.3

    def test_process_engine_gil_bound_headline(benchmark, dataset):
        """K=4, GIL-bound model, comm-bound link: process > 2x sequential."""
        from conftest import run_once

        result = run_once(
            benchmark, lambda: measure_gil_bound(dataset, world_size=4)
        )
        print(
            f"\nGIL-bound headline, K=4: "
            + ", ".join(
                f"{engine} {result[f'{engine}_steps_per_sec']:.2f} steps/s "
                f"({result[f'{engine}_speedup']:.2f}x)"
                for engine in ENGINES
            )
        )
        assert result["process_speedup"] > 2.0

    def test_aggregation_cuts_wire_traffic(benchmark, dataset):
        """N=8 on the comm-bound cell: ~8x fewer wire bytes, faster."""
        from conftest import run_once

        result = run_once(
            benchmark,
            lambda: measure_aggregation(dataset, world_size=4),
        )
        print(
            f"\naggregation, K=4 comm-bound: "
            f"N=1 {result['n1_steps_per_sec']:.2f} steps/s, "
            f"N=8 {result['n8_steps_per_sec']:.2f} steps/s "
            f"({result['n8_speedup']:.2f}x, "
            f"{result['n8_wire_reduction']:.1f}x fewer wire bytes)"
        )
        assert result["n8_wire_reduction"] >= 5.0
        assert result["n8_speedup"] > 1.0

    def test_threaded_overhead_unpaced(benchmark, dataset):
        """Without a paced link the thread engine must not collapse."""
        from conftest import run_once

        def run():
            seconds = {}
            for engine in ("sequential", "threaded"):
                with build_trainer(engine, 4) as trainer:
                    epoch_seconds(trainer, dataset)  # warm-up
                    seconds[engine] = min(
                        epoch_seconds(trainer, dataset) for _ in range(3)
                    )
            return seconds["sequential"] / seconds["threaded"]

        ratio = run_once(benchmark, run)
        print(f"\nunpaced wall-clock ratio sequential/threaded: {ratio:.2f}x")
        assert ratio > 0.5


# -- standalone entry point (writes the checked-in BENCH entry) -------------


def main(argv=None):
    import argparse
    import json
    import platform
    import sys

    import numpy

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="single timing repeat per engine (CI smoke depth)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_engines.json",
        help="report path (default: BENCH_engines.json)",
    )
    parser.add_argument(
        "--aggregation",
        type=int,
        nargs="+",
        default=[1, 8],
        metavar="N",
        help="aggregation frequencies to measure on the comm-bound "
        "cell (first value is the baseline; default: 1 8)",
    )
    args = parser.parse_args(argv)
    dataset = _make_dataset()
    repeats = 1 if args.quick else 3
    headline = measure_gil_bound(dataset, world_size=4, repeats=repeats)
    aggregation = measure_aggregation(
        dataset, world_size=4, frequencies=tuple(args.aggregation),
        repeats=repeats,
    )
    report = {
        "bench": "runtime_engines",
        "cell": {
            "model": "tiny_resnet (ResNet110-class, GIL-bound)",
            "scheme": "32bit",
            "exchange": "mpi",
            "world_size": 4,
            "batch_size": BATCH,
            "train_samples": TRAIN_SAMPLES,
            "comm_fraction": 4.0,
            "link_gbps": headline["link_gbps"],
        },
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": __import__("os").cpu_count(),
        "results": {
            engine: {
                "steps_per_sec": headline[f"{engine}_steps_per_sec"],
                "samples_per_sec": headline[f"{engine}_sps"],
                "speedup_vs_sequential": headline[f"{engine}_speedup"],
            }
            for engine in ENGINES
        },
        "aggregation": {
            "engine": "sequential",
            "comm_fraction": 4.0,
            "link_gbps": aggregation["link_gbps"],
            "frequencies": {
                str(n): {
                    "steps_per_sec": aggregation[f"n{n}_steps_per_sec"],
                    "wire_bytes_per_epoch": aggregation[f"n{n}_wire_bytes"],
                }
                for n in args.aggregation
            },
        },
    }
    base = args.aggregation[0]
    for n in args.aggregation[1:]:
        report["aggregation"]["frequencies"][str(n)].update(
            wire_reduction=aggregation[f"n{n}_wire_reduction"],
            speedup_vs_base=aggregation[f"n{n}_speedup"],
        )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for engine in ENGINES:
        row = report["results"][engine]
        print(
            f"{engine:>10}: {row['steps_per_sec']:.2f} steps/s "
            f"({row['speedup_vs_sequential']:.2f}x vs sequential)"
        )
    for n in args.aggregation:
        row = report["aggregation"]["frequencies"][str(n)]
        extra = (
            f" ({row['speedup_vs_base']:.2f}x, "
            f"{row['wire_reduction']:.1f}x fewer wire bytes)"
            if "wire_reduction" in row
            else ""
        )
        print(
            f"aggregation N={n}: {row['steps_per_sec']:.2f} steps/s, "
            f"{row['wire_bytes_per_epoch']} wire bytes/epoch{extra}"
        )
    if headline["process_speedup"] <= 2.0:
        print(
            "FAIL: process engine did not clear 2x over sequential",
            file=sys.stderr,
        )
        return 1
    high = max(args.aggregation)
    if high > 1 and aggregation[f"n{high}_wire_reduction"] < 5.0:
        print(
            f"FAIL: N={high} did not cut wire bytes by at least 5x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
