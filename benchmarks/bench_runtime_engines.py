"""Sequential vs. threaded execution engines: samples/second.

The threaded engine's advantage is *overlap*: each rank ships its
encoded gradients bucket by bucket on its own paced link
(``link_gbps``), concurrently with the other ranks' backward — the
DAG-model effect the paper's epoch-time figures measure.  The
sequential engine runs the same ranks on one thread, so every rank's
wire time lands on the critical path.  The link is calibrated so the
epoch's total wire time is a fixed fraction of its compute time — the
communication-bound regime where ResNet110-class models sit in the
paper's MPI tables (446 small matrices).  On multi-core hosts the
threaded engine additionally parallelizes the per-rank
forward/backward, since numpy/BLAS releases the GIL.

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_runtime_engines.py -q -s
"""

import math
import time

import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.data import make_image_dataset
from repro.models import tiny_resnet

from conftest import run_once

#: CIFAR ResNet110 analogue: the zoo's resnet (same widths/stages as
#: ResNet110, depth scaled for the numpy substrate) on CIFAR-shaped
#: synthetic data
NUM_CLASSES = 4
IMAGE_SIZE = 8
BATCH = 32
TRAIN_SAMPLES = 128


@pytest.fixture(scope="module")
def dataset():
    return make_image_dataset(
        num_classes=NUM_CLASSES,
        train_samples=TRAIN_SAMPLES,
        test_samples=8,
        image_size=IMAGE_SIZE,
        noise=0.8,
        seed=0,
    )


def build_trainer(engine, world_size, link_gbps=None):
    config = TrainingConfig(
        scheme="32bit",
        exchange="mpi",
        world_size=world_size,
        batch_size=BATCH,
        lr=0.01,
        seed=0,
        engine=engine,
        link_gbps=link_gbps,
    )
    model = tiny_resnet(num_classes=NUM_CLASSES, seed=1)
    return ParallelTrainer(model, config)


def epoch_seconds(trainer, dataset):
    start = time.perf_counter()
    trainer.train_epoch(dataset.train_x, dataset.train_y)
    return time.perf_counter() - start


def balanced_link_gbps(dataset, world_size, comm_fraction=0.75):
    """Link rate putting the epoch's wire time at ``comm_fraction``
    of its compute time (summed across ranks, as the sequential
    engine pays it)."""
    with build_trainer("sequential", world_size) as trainer:
        epoch_seconds(trainer, dataset)  # warm-up (allocations, caches)
        compute_s = epoch_seconds(trainer, dataset)
        payload = trainer.engine.per_rank_payload_nbytes
    steps = math.ceil(TRAIN_SAMPLES / BATCH)
    wire_bytes = world_size * payload * steps
    return 8.0 * wire_bytes / (comm_fraction * compute_s) / 1e9


def measure(dataset, world_size):
    link = balanced_link_gbps(dataset, world_size)
    seconds = {}
    for engine in ("sequential", "threaded"):
        with build_trainer(engine, world_size, link_gbps=link) as trainer:
            epoch_seconds(trainer, dataset)  # warm-up
            seconds[engine] = min(
                epoch_seconds(trainer, dataset) for _ in range(3)
            )
    return {
        "link_gbps": link,
        "sequential_sps": TRAIN_SAMPLES / seconds["sequential"],
        "threaded_sps": TRAIN_SAMPLES / seconds["threaded"],
        "speedup": seconds["sequential"] / seconds["threaded"],
    }


@pytest.mark.parametrize("world_size", [2, 4, 8])
def test_engine_throughput(benchmark, dataset, world_size):
    result = run_once(benchmark, lambda: measure(dataset, world_size))
    print(
        f"\nResNet110-class, K={world_size}, paced link "
        f"{result['link_gbps'] * 1e3:.1f} Mbps: "
        f"sequential {result['sequential_sps']:.1f} samples/s, "
        f"threaded {result['threaded_sps']:.1f} samples/s, "
        f"speedup {result['speedup']:.2f}x"
    )
    # concurrent per-rank links must hide most of the wire time; with
    # wire = 0.75 x compute the ideal is 1.75x (plus compute
    # parallelism on multi-core hosts)
    if world_size == 4:
        assert result["speedup"] > 1.3


def test_threaded_overhead_unpaced(benchmark, dataset):
    """Without a paced link the thread engine must not collapse."""

    def run():
        seconds = {}
        for engine in ("sequential", "threaded"):
            with build_trainer(engine, 4) as trainer:
                epoch_seconds(trainer, dataset)  # warm-up
                seconds[engine] = min(
                    epoch_seconds(trainer, dataset) for _ in range(3)
                )
        return seconds["sequential"] / seconds["threaded"]

    ratio = run_once(benchmark, run)
    print(f"\nunpaced wall-clock ratio sequential/threaded: {ratio:.2f}x")
    assert ratio > 0.5
