"""Figure 5: accuracy-versus-epoch under quantized training.

Each benchmark runs the real (scaled-down) training study behind one
sub-figure and prints the accuracy curves it produces.
"""

import pytest

from repro.study import FIG5_EXPERIMENTS, run_accuracy_experiment
from repro.study.report import format_series

from conftest import run_once


def _run_and_print(figure: str):
    histories = run_accuracy_experiment(figure, scale="quick")
    title = FIG5_EXPERIMENTS[figure].title
    print(f"\n{figure}: {title}")
    for label, history in histories.items():
        epochs = list(range(len(history.epochs)))
        metric = (
            "train_loss" if figure == "fig5e" else "test_accuracy"
        )
        print("  " + format_series(label, epochs, history.series(metric)))
    return histories


@pytest.mark.parametrize("figure", sorted(FIG5_EXPERIMENTS))
def test_fig5_accuracy(benchmark, figure):
    histories = run_once(benchmark, lambda: _run_and_print(figure))
    assert histories
    for history in histories.values():
        assert history.epochs
