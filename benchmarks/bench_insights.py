"""The paper's five summary insights, re-derived as one bench target."""

from repro.study import print_insights


def test_insight_scoreboard(benchmark):
    insights = benchmark(print_insights)
    assert all(i.holds for i in insights)
