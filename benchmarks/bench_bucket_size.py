"""Bucket-size sensitivity (paper Section 5.1) as a bench target."""

from repro.study import print_bucket_study

from conftest import run_once


def test_bucket_size_study(benchmark):
    points = run_once(benchmark, lambda: print_bucket_study(epochs=10))
    by_label = {p.label: p for p in points}
    # tuned buckets stay near full precision; oversized buckets at
    # 2 bits inject enough variance to visibly break training
    baseline = by_label["32bit"].final_accuracy
    assert by_label["qsgd4 (d=512)"].final_accuracy > baseline - 0.08
    assert (
        by_label["qsgd2 (d=8192)"].final_accuracy < baseline - 0.15
    )
