"""Shared fixtures for the benchmark suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def run_once(benchmark, fn):
    """Benchmark a heavyweight harness exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
