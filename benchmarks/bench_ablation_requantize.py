"""Ablation: aggregator-side requantization on the MPI broadcast path.

CNTK re-quantizes aggregated ranges before broadcasting (DESIGN.md
decision #2/#3 context): this halves broadcast traffic but adds a
second lossy stage.  The ablation measures both sides — wire bytes and
end accuracy — with requantization on and off.
"""

import numpy as np
import pytest

from repro.comm import MpiReduceBroadcast
from repro.core import ParallelTrainer, TrainingConfig
from repro.data import make_image_dataset
from repro.models import tiny_alexnet
from repro.quantization import make_quantizer

from conftest import run_once

WORLD = 4


@pytest.mark.parametrize("requantize", [True, False])
def test_requantize_traffic(benchmark, requantize):
    tensors = [
        np.random.default_rng(rank).normal(size=(128, 256)).astype(
            np.float32
        )
        for rank in range(WORLD)
    ]
    codec = make_quantizer("1bit*")
    exchange = MpiReduceBroadcast(WORLD, requantize_broadcast=requantize)
    rng = np.random.default_rng(0)
    benchmark(lambda: exchange.exchange("w", tensors, codec, rng))
    rounds = len(
        set(
            record.tag
            for record in exchange.traffic.records
        )
    ) or 1
    print(
        f"\nrequantize={requantize}: "
        f"{exchange.traffic.total_bytes / rounds / 1e3:.0f} KB per call "
        "total traffic"
    )


@pytest.mark.parametrize("requantize", [True, False])
def test_requantize_accuracy(benchmark, requantize):
    dataset = make_image_dataset(
        num_classes=6, train_samples=256, test_samples=128,
        image_size=16, noise=1.2, seed=3,
    )
    config = TrainingConfig(
        scheme="1bit*", exchange="mpi", world_size=WORLD, batch_size=32,
        lr=0.01, lr_decay=0.93, seed=0, requantize_broadcast=requantize,
    )

    def train():
        model = tiny_alexnet(num_classes=6, image_size=16, seed=1)
        trainer = ParallelTrainer(model, config)
        return trainer.fit(
            dataset.train_x, dataset.train_y,
            dataset.test_x, dataset.test_y, epochs=6,
        )

    history = run_once(benchmark, train)
    print(
        f"\nrequantize={requantize}: final accuracy "
        f"{history.final_test_accuracy:.3f}, "
        f"{history.total_comm_bytes / 1e6:.1f} MB moved"
    )
