"""Ablation: QSGD design choices (DESIGN.md decision #5 context).

Sweeps the two level layouts (sign vs grid), the two scaling norms
(infinity vs 2-norm — the paper picked infinity for accuracy), and
compares uniform levels against the Lloyd-Max adaptive variant the
paper implemented "but does not observe significant improvement".
Reported metric: reconstruction MSE on heavy-tailed gradients.
"""

import numpy as np
import pytest

from repro.quantization import AdaptiveQsgd, Qsgd


@pytest.fixture(scope="module")
def gradient():
    # heavy-tailed values, like real late-training gradients
    rng = np.random.default_rng(0)
    return rng.standard_t(df=3, size=262_144).astype(np.float32)


def mse(codec, gradient, seed=1):
    decoded = codec.roundtrip(gradient, np.random.default_rng(seed))
    return float(np.square(decoded - gradient).mean())


@pytest.mark.parametrize("norm", ["inf", "l2"])
def test_norm_choice(benchmark, gradient, norm):
    codec = Qsgd(4, bucket_size=512, norm=norm)
    rng = np.random.default_rng(1)
    benchmark(lambda: codec.encode(gradient, rng))
    print(f"\nnorm={norm}: reconstruction MSE "
          f"{mse(codec, gradient):.5f}")


@pytest.mark.parametrize("variant", ["sign", "grid"])
def test_level_layout(benchmark, gradient, variant):
    codec = Qsgd(4, bucket_size=512, variant=variant)
    rng = np.random.default_rng(1)
    benchmark(lambda: codec.encode(gradient, rng))
    print(f"\nvariant={variant}: reconstruction MSE "
          f"{mse(codec, gradient):.5f}")


@pytest.mark.parametrize("adaptive", [False, True])
def test_adaptive_levels(benchmark, gradient, adaptive):
    codec = (
        AdaptiveQsgd(4, bucket_size=512)
        if adaptive
        else Qsgd(4, bucket_size=512)
    )
    rng = np.random.default_rng(1)
    benchmark(lambda: codec.encode(gradient, rng))
    print(
        f"\nadaptive={adaptive}: reconstruction MSE "
        f"{mse(codec, gradient):.5f} "
        "(the paper saw no significant end-accuracy gain)"
    )


@pytest.mark.parametrize("bucket", [64, 128, 512, 8192])
def test_bucket_sweep(benchmark, gradient, bucket):
    codec = Qsgd(4, bucket_size=bucket)
    rng = np.random.default_rng(1)
    message = benchmark(lambda: codec.encode(gradient, rng))
    print(
        f"\nbucket={bucket}: MSE {mse(codec, gradient):.5f}, "
        f"{message.bits_per_element:.3f} bits/element"
    )
