"""Figures 6-9: time-per-epoch bars (EC2/DGX-1 x MPI/NCCL).

Each benchmark regenerates the full bar set of one figure and prints
the rows (epoch hours with the comm/compute split the paper stacks).
"""

import pytest

from repro.study import print_epoch_bars
from repro.study.performance import FIGURE_SETUPS


@pytest.mark.parametrize("figure", sorted(FIGURE_SETUPS))
def test_epoch_time_figure(benchmark, figure):
    bars = benchmark(lambda: print_epoch_bars(figure))
    assert bars
    assert all(bar.epoch_hours > 0 for bar in bars)
