"""Wire-rate matrix for every (network, scheme) pair as a bench target."""

from repro.study import print_compression_report


def test_compression_report(benchmark):
    cells = benchmark(print_compression_report)
    by_key = {(c.network, c.scheme): c for c in cells}
    # the artefact behind Figure 10's 1bitSGD rows, in data form
    assert by_key[("ResNet152", "1bit")].bits_per_element > 32
    assert by_key[("AlexNet", "1bit")].bits_per_element < 3
