"""Large-K fabric sweep: collective makespans on a leaf-spine Clos.

The paper's measured machines stop at 16 GPUs; this benchmark runs the
simulation-only extension out to K=1024 — every collective pattern
(ring, tree, butterfly, hierarchical) crossed with full precision, a
mid QSGD point, and 1-bit, on a 3:1-oversubscribed leaf-spine fabric
with per-link FIFO queueing.  The K=4 end of the same simulator is
cross-validated against the measured process engine (``repro fabric
--crossval``), which is what licenses reading these numbers as more
than internally-consistent fiction.

Every cell is a deterministic discrete-event simulation, so the
interesting output is not wall-clock but the *simulated* makespans —
the pattern-crossover structure (ring's O(K) rounds losing to
butterfly/hierarchical as K grows) that the checked-in
``BENCH_fabric.json`` records.

Run with: PYTHONPATH=src python -m pytest benchmarks/bench_fabric.py -q -s
or standalone: PYTHONPATH=src python benchmarks/bench_fabric.py [--quick]
"""

from repro.fabric import PATTERN_NAMES
from repro.study.fabric import (
    SWEEP_ELEMENTS,
    SWEEP_SCHEMES,
    SWEEP_WORLD_SIZES,
    fabric_sweep,
)

OVERSUBSCRIPTION = 3.0
QUICK_WORLD_SIZES = (64, 128, 256)


def sweep(world_sizes=SWEEP_WORLD_SIZES):
    return fabric_sweep(
        world_sizes=world_sizes,
        total_elements=SWEEP_ELEMENTS,
        oversubscription=OVERSUBSCRIPTION,
    )


def crossover_world_size(points, a="ring", b="butterfly",
                         scheme="qsgd4"):
    """Smallest K where pattern ``b`` beats pattern ``a``, or None."""
    by_cell = {
        (p.pattern, p.scheme, p.world_size): p.makespan_seconds
        for p in points
    }
    for k in sorted({p.world_size for p in points}):
        if by_cell[(b, scheme, k)] < by_cell[(a, scheme, k)]:
            return k
    return None


# -- pytest entry points ----------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone mode
    pytest = None

if pytest is not None:

    def test_fabric_sweep_quick(benchmark):
        from conftest import run_once

        points = run_once(benchmark, lambda: sweep(QUICK_WORLD_SIZES))
        assert len(points) == (
            len(QUICK_WORLD_SIZES)
            * len(PATTERN_NAMES)
            * len(SWEEP_SCHEMES)
        )
        by_cell = {
            (p.pattern, p.scheme, p.world_size): p for p in points
        }
        # quantization must keep paying at scale
        full = by_cell[("ring", "32bit", 256)]
        q4 = by_cell[("ring", "qsgd4", 256)]
        print(
            f"\nK=256 ring: 32bit {full.makespan_seconds * 1e3:.1f} ms, "
            f"qsgd4 {q4.makespan_seconds * 1e3:.1f} ms"
        )
        assert q4.makespan_seconds < full.makespan_seconds / 2


# -- standalone entry point (writes the checked-in BENCH entry) -------------


def main(argv=None):
    import argparse
    import json
    import platform
    import time

    import numpy

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="stop the sweep at K=256 (CI smoke depth)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_fabric.json",
        help="report path (default: BENCH_fabric.json)",
    )
    args = parser.parse_args(argv)
    world_sizes = QUICK_WORLD_SIZES if args.quick else SWEEP_WORLD_SIZES
    start = time.perf_counter()
    points = sweep(world_sizes)
    elapsed = time.perf_counter() - start
    report = {
        "bench": "fabric",
        "cell": {
            "topology": "leaf-spine",
            "oversubscription": OVERSUBSCRIPTION,
            "total_elements": SWEEP_ELEMENTS,
            "world_sizes": list(world_sizes),
            "patterns": list(PATTERN_NAMES),
            "schemes": list(SWEEP_SCHEMES),
        },
        "quick": args.quick,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "simulation_wall_seconds": round(elapsed, 3),
        "crossover": {
            "ring_vs_butterfly_qsgd4": crossover_world_size(points),
        },
        "results": {
            f"K{p.world_size}/{p.pattern}/{p.scheme}": {
                "makespan_seconds": p.makespan_seconds,
                "total_wire_bytes": p.total_wire_bytes,
                "transfers": p.transfers,
                "max_link_utilization": round(
                    p.max_link_utilization, 6
                ),
            }
            for p in points
        },
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for k in world_sizes:
        row = {
            pattern: next(
                p.makespan_seconds
                for p in points
                if p.world_size == k
                and p.pattern == pattern
                and p.scheme == "qsgd4"
            )
            for pattern in PATTERN_NAMES
        }
        best = min(row, key=row.get)
        print(
            f"K={k:>4} qsgd4: "
            + ", ".join(
                f"{pattern} {seconds * 1e3:8.2f} ms"
                for pattern, seconds in row.items()
            )
            + f"  -> {best}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
