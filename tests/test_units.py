"""Regression tests pinning the shared Gbit/s <-> bytes/s conversion.

Before :mod:`repro.units`, the runtime's ``link_gbps`` pacing and the
simulator's machine models each converted bandwidth units inline and
disagreed by a factor of 8 about what "gbps" meant.  These tests pin
the one true factor and the calibrated machine bandwidths so neither
side can drift again.
"""

import pytest

from repro.simulator.machine import MACHINES
from repro.units import (
    BITS_PER_BYTE,
    bytes_per_second_to_gbps,
    gbps_to_bytes_per_second,
    transfer_seconds,
)


def test_factor_is_pinned():
    # 1 Gbit/s is exactly 125 MB/s — the factor both the runtime pacing
    # and the simulator's machine models must share
    assert BITS_PER_BYTE == 8
    assert gbps_to_bytes_per_second(1.0) == pytest.approx(125e6)
    assert gbps_to_bytes_per_second(8.0) == pytest.approx(1e9)
    assert gbps_to_bytes_per_second(0.0) == 0.0


def test_roundtrip():
    for gbps in (0.5, 1.0, 6.0, 48.0, 400.0):
        assert bytes_per_second_to_gbps(
            gbps_to_bytes_per_second(gbps)
        ) == pytest.approx(gbps)


def test_negative_rates_rejected():
    with pytest.raises(ValueError):
        gbps_to_bytes_per_second(-1.0)
    with pytest.raises(ValueError):
        bytes_per_second_to_gbps(-1.0)
    with pytest.raises(ValueError):
        transfer_seconds(-1, 1.0)
    with pytest.raises(ValueError):
        transfer_seconds(1, 0.0)


def test_transfer_seconds():
    # 125 MB over 1 Gbit/s = 1 s, plus latency
    assert transfer_seconds(125_000_000, 1.0) == pytest.approx(1.0)
    assert transfer_seconds(0, 1.0, latency_s=2e-6) == pytest.approx(2e-6)
    assert transfer_seconds(125_000_000, 1.0, latency_s=0.5) == (
        pytest.approx(1.5)
    )


def test_machine_bandwidths_unchanged_by_unit_unification():
    # the calibrated *effective* bandwidths, in bytes/s, must equal the
    # pre-refactor values (constants were rescaled x8 when the implicit
    # GB/s unit became an explicit Gbit/s)
    ec2 = MACHINES["p2.8xlarge"]
    assert ec2.mpi_bus_bandwidth(4) == pytest.approx(3.0e9)
    assert ec2.nccl_link_bandwidth() == pytest.approx(6.0e9)
    dgx = MACHINES["dgx1"]
    assert dgx.mpi_bus_bandwidth(4) == pytest.approx(2.5e9)
    assert dgx.nccl_link_bandwidth() == pytest.approx(4.0e9)


def test_runtime_pacing_uses_shared_helper():
    # the engine's per-rank link rate is derived through repro.units
    from repro.core import TrainingConfig
    from repro.nn import Dense, Sequential
    from repro.runtime import make_engine
    import numpy as np

    rng = np.random.default_rng(0)
    model = Sequential(Dense(4, 2, "fc", rng))
    config = TrainingConfig(world_size=2, batch_size=4, link_gbps=2.0)
    engine = make_engine(model, config, lambda *a: (0.0, None))
    try:
        assert engine._link_bytes_per_s == pytest.approx(
            gbps_to_bytes_per_second(2.0)
        )
    finally:
        if hasattr(engine, "shutdown"):
            engine.shutdown()
