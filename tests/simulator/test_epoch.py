"""Shape tests for the epoch simulator: the paper's headline findings.

These tests assert the *qualitative* results of Section 5 — who wins,
where the crossovers are — not the absolute numbers (the original
testbed is simulated; EXPERIMENTS.md reports the quantitative match).
"""

import pytest

from repro.models.specs import get_network
from repro.simulator import simulate
from repro.study.throughput import ec2_machine_for


def rate(network, scheme, exchange, world_size, machine=None):
    machine = machine or ec2_machine_for(world_size)
    return simulate(
        network, machine, scheme, exchange, world_size
    ).samples_per_second


class TestBasics:
    def test_single_gpu_matches_calibrated_rate(self):
        for name in ("AlexNet", "VGG19", "ResNet50"):
            spec = get_network(name)
            assert rate(name, "32bit", "mpi", 1) == pytest.approx(
                spec.k80_samples_per_second, rel=0.01
            )

    def test_single_gpu_identical_across_schemes(self):
        assert rate("AlexNet", "qsgd4", "mpi", 1) == rate(
            "AlexNet", "32bit", "mpi", 1
        )

    def test_nccl_at_16_gpus_rejected(self):
        with pytest.raises(ValueError):
            simulate("AlexNet", "p2.16xlarge", "32bit", "nccl", 16)

    def test_epoch_seconds_scale_with_dataset(self):
        result = simulate("AlexNet", "p2.8xlarge", "32bit", "mpi", 8)
        assert result.epoch_seconds(2_000_000) > result.epoch_seconds(
            1_000_000
        )

    def test_breakdown_sums_to_iteration(self):
        result = simulate("VGG19", "p2.8xlarge", "qsgd4", "mpi", 8)
        assert result.comm_seconds > 0
        assert result.quantize_seconds > 0
        assert result.iteration_seconds >= result.compute_seconds
        assert 0 < result.comm_fraction < 1


class TestPaperFindings:
    def test_low_precision_helps_mpi_on_comm_dominated_nets(self):
        # Section 5.2: 2-4x on AlexNet/VGG over MPI at 8-16 GPUs
        for network in ("AlexNet", "VGG19"):
            speedup = rate(network, "qsgd4", "mpi", 8) / rate(
                network, "32bit", "mpi", 8
            )
            assert speedup > 2.0

    def test_low_precision_marginal_on_compute_dominated_nets(self):
        # BN-Inception gains ~1.3x at most
        speedup = rate("BN-Inception", "qsgd4", "mpi", 8) / rate(
            "BN-Inception", "32bit", "mpi", 8
        )
        assert 1.0 < speedup < 1.6

    def test_nccl_fullprec_beats_mpi_lowprec(self):
        # the paper's most surprising performance result (insight #2);
        # its own tables only support this for the FC-heavy networks
        # (e.g. AlexNet: NCCL 32bit 1138 vs best MPI quantized 1076)
        for network in ("AlexNet", "VGG19"):
            assert rate(network, "32bit", "nccl", 8) > rate(
                network, "qsgd4", "mpi", 8
            )

    def test_nccl_gains_from_quantization_are_small(self):
        # insight #2: with NCCL the improvement is almost negligible,
        # except up to ~1.4-1.5x on VGG
        for network in ("AlexNet", "ResNet50", "ResNet152",
                        "BN-Inception"):
            speedup = rate(network, "qsgd4", "nccl", 8) / rate(
                network, "32bit", "nccl", 8
            )
            assert speedup < 1.35
        vgg_speedup = rate("VGG19", "qsgd4", "nccl", 8) / rate(
            "VGG19", "32bit", "nccl", 8
        )
        assert 1.0 < vgg_speedup < 1.6

    def test_diminishing_returns_below_4_bits(self):
        # insight #3: 1-2 bit rarely beats 4-bit meaningfully
        for network in ("AlexNet", "VGG19", "ResNet50"):
            q4 = rate(network, "qsgd4", "mpi", 8)
            q2 = rate(network, "qsgd2", "mpi", 8)
            assert q2 < q4 * 1.25

    def test_stock_1bit_slower_than_fullprec_on_resnets(self):
        # the Section 3.2.2 artefact, visible in Figure 10
        for network in ("ResNet50", "ResNet152"):
            assert rate(network, "1bit", "mpi", 8) < rate(
                network, "32bit", "mpi", 8
            )

    def test_reshaped_1bit_fixes_the_artefact(self):
        for network in ("ResNet50", "ResNet152"):
            assert rate(network, "1bit*", "mpi", 8) > 1.5 * rate(
                network, "1bit", "mpi", 8
            )

    def test_alexnet_mpi_fullprec_degrades_past_4_gpus(self):
        # Figure 10, AlexNet 32bit row: 328 -> 273 -> 192
        r4 = rate("AlexNet", "32bit", "mpi", 4)
        r8 = rate("AlexNet", "32bit", "mpi", 8)
        r16 = rate("AlexNet", "32bit", "mpi", 16)
        assert r4 > r8 > r16

    def test_vgg_superlinear_scaling_at_8_gpus(self):
        # Section 5.2 "Super-Linear Scaling": NCCL VGG19 at 8 GPUs
        # exceeds 8x the single-GPU rate
        assert rate("VGG19", "32bit", "nccl", 8) > 8 * rate(
            "VGG19", "32bit", "mpi", 1
        )

    def test_16_gpus_rarely_worth_it(self):
        # insight #5: doubling 8 -> 16 GPUs rarely doubles throughput
        for network in ("AlexNet", "ResNet50", "BN-Inception",
                        "ResNet110"):
            r8 = rate(network, "32bit", "mpi", 8)
            r16 = rate(network, "32bit", "mpi", 16)
            assert r16 < 1.8 * r8

    def test_resnet110_throughput_drops_at_16_gpus(self):
        # Figure 10 ResNet110: 1229 samples/s at 8 GPUs, 832 at 16
        assert rate("ResNet110", "32bit", "mpi", 16) < rate(
            "ResNet110", "32bit", "mpi", 8
        )

    def test_dgx_mpi_still_benefits_from_quantization(self):
        # Section 5.2 "Fast Interconnect with Slow/Fast Primitives"
        speedup = rate("VGG19", "qsgd4", "mpi", 8, machine="dgx1") / rate(
            "VGG19", "32bit", "mpi", 8, machine="dgx1"
        )
        assert speedup > 2.5

    def test_dgx_nccl_caps_vgg_gains(self):
        speedup = rate("VGG19", "qsgd4", "nccl", 8, machine="dgx1") / rate(
            "VGG19", "32bit", "nccl", 8, machine="dgx1"
        )
        assert 1.0 < speedup < 1.9

    def test_dgx_faster_than_ec2_at_same_world_size(self):
        # Pascal + faster interconnect
        assert rate(
            "ResNet50", "32bit", "nccl", 8, machine="dgx1"
        ) > rate("ResNet50", "32bit", "nccl", 8, machine="p2.8xlarge")


class TestQuantitativeAgreement:
    """Coarse quantitative agreement with the published tables."""

    def test_mpi_table_mean_error_under_20_percent(self):
        from repro.study.throughput import throughput_table

        cells = [
            c for c in throughput_table("mpi") if c.paper is not None
        ]
        errors = [abs(c.relative_error) for c in cells]
        assert sum(errors) / len(errors) < 0.20

    def test_nccl_table_mean_error_under_20_percent(self):
        from repro.study.throughput import throughput_table

        cells = [
            c for c in throughput_table("nccl") if c.paper is not None
        ]
        errors = [abs(c.relative_error) for c in cells]
        assert sum(errors) / len(errors) < 0.20

    def test_scheme_ordering_matches_paper_at_8_gpus_mpi(self):
        # within each network, the simulated best scheme at 8 GPUs must
        # be within the top tier of the paper's table
        from repro.simulator import PAPER_MPI_TABLE

        for network, schemes in PAPER_MPI_TABLE.items():
            paper_at_8 = {
                s: cells[8] for s, cells in schemes.items() if 8 in cells
            }
            sim_at_8 = {
                s: rate(network, s, "mpi", 8) for s in paper_at_8
            }
            paper_best = max(paper_at_8, key=paper_at_8.get)
            sim_rank = sorted(
                sim_at_8, key=sim_at_8.get, reverse=True
            )
            assert paper_best in sim_rank[:3], network
