"""Integrity tests for the transcribed Figure 10/11 tables.

These guard the *data entry*: spot-check cells against the paper text,
and verify the structural properties the analysis sections rely on.
"""

from repro.simulator import PAPER_MPI_TABLE, PAPER_NCCL_TABLE


class TestTranscriptionSpotChecks:
    def test_figure10_headline_cells(self):
        # cells quoted in the running text of Section 5
        assert PAPER_MPI_TABLE["AlexNet"]["32bit"][1] == 240.80
        assert PAPER_MPI_TABLE["AlexNet"]["qsgd4"][8] == 964.90
        assert PAPER_MPI_TABLE["ResNet50"]["1bit"][8] == 160.15
        assert PAPER_MPI_TABLE["VGG19"]["32bit"][16] == 40.60
        assert PAPER_MPI_TABLE["ResNet110"]["32bit"][8] == 1229.10

    def test_figure11_headline_cells(self):
        assert PAPER_NCCL_TABLE["AlexNet"]["32bit"][8] == 1138.30
        assert PAPER_NCCL_TABLE["VGG19"]["qsgd4"][8] == 179.50

    def test_one_gpu_rates_identical_across_primitives(self):
        # the 1-GPU column is compute-only, so Figures 10 and 11 agree
        for network in PAPER_NCCL_TABLE:
            assert (
                PAPER_NCCL_TABLE[network]["32bit"][1]
                == PAPER_MPI_TABLE[network]["32bit"][1]
            )


class TestStructure:
    def test_mpi_grid_complete(self):
        for network, schemes in PAPER_MPI_TABLE.items():
            assert set(schemes) == {
                "32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2", "1bit",
                "1bit*",
            }, network
            for scheme, cells in schemes.items():
                expected = {1, 2, 4, 8, 16} if scheme == "32bit" else {
                    2, 4, 8, 16
                }
                assert set(cells) == expected, (network, scheme)

    def test_nccl_grid_complete(self):
        for network, schemes in PAPER_NCCL_TABLE.items():
            assert set(schemes) == {
                "32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2"
            }, network
            for scheme, cells in schemes.items():
                expected = {1, 2, 4, 8} if scheme == "32bit" else {2, 4, 8}
                assert set(cells) == expected, (network, scheme)

    def test_all_rates_positive(self):
        for table in (PAPER_MPI_TABLE, PAPER_NCCL_TABLE):
            for schemes in table.values():
                for cells in schemes.values():
                    assert all(rate > 0 for rate in cells.values())


class TestPaperInternalClaims:
    """Claims the paper's text makes about its own tables."""

    def test_alexnet_mpi_32bit_peaks_at_4_gpus(self):
        row = PAPER_MPI_TABLE["AlexNet"]["32bit"]
        assert row[4] == max(row.values())

    def test_stock_1bit_slower_than_32bit_on_resnets_at_8(self):
        for network in ("ResNet50", "ResNet152"):
            assert (
                PAPER_MPI_TABLE[network]["1bit"][8]
                < PAPER_MPI_TABLE[network]["32bit"][8]
            )

    def test_nccl_32bit_beats_mpi_best_quantized_on_alexnet(self):
        mpi_best = max(
            cells[8] for cells in PAPER_MPI_TABLE["AlexNet"].values()
            if 8 in cells
        )
        assert PAPER_NCCL_TABLE["AlexNet"]["32bit"][8] > mpi_best

    def test_vgg_nccl_superlinear_at_8(self):
        table = PAPER_NCCL_TABLE["VGG19"]
        assert table["32bit"][8] > 8 * table["32bit"][1]

    def test_resnet110_mpi_drops_from_8_to_16(self):
        for scheme, cells in PAPER_MPI_TABLE["ResNet110"].items():
            if 8 in cells and 16 in cells:
                assert cells[16] < cells[8], scheme
