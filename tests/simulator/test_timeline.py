"""Tests for the discrete-event exchange timeline."""

import pytest

from repro.models.specs import get_network
from repro.simulator import NetworkCostModel, get_machine, simulate
from repro.simulator.timeline import pipeline_timeline


def timeline_for(network, scheme, world_size=8, machine="p2.8xlarge"):
    cost = NetworkCostModel(get_network(network), scheme, world_size)
    return pipeline_timeline(cost, get_machine(machine), world_size)


class TestScheduleValidity:
    @pytest.mark.parametrize("scheme", ["32bit", "qsgd4", "1bit*"])
    def test_stage_ordering_per_matrix(self, scheme):
        timeline = timeline_for("AlexNet", scheme)
        for event in timeline.events:
            assert event.encode_start <= event.encode_end
            assert event.encode_end <= event.transfer_start
            assert event.transfer_start <= event.transfer_end
            assert event.transfer_end <= event.decode_start
            assert event.decode_start <= event.decode_end

    def test_bus_never_double_booked(self):
        timeline = timeline_for("ResNet50", "qsgd4")
        intervals = sorted(
            (e.transfer_start, e.transfer_end) for e in timeline.events
        )
        for (_, a_end), (b_start, _) in zip(intervals, intervals[1:]):
            assert b_start >= a_end - 1e-12

    def test_makespan_covers_all_events(self):
        timeline = timeline_for("VGG19", "qsgd8")
        assert timeline.makespan >= max(
            e.completion for e in timeline.events
        )

    def test_single_gpu_empty_timeline(self):
        cost = NetworkCostModel(get_network("AlexNet"), "qsgd4", 1)
        timeline = pipeline_timeline(cost, get_machine("p2.xlarge"), 1)
        assert timeline.makespan == 0.0
        assert not timeline.events


class TestOverlapModel:
    def test_utilizations_bounded(self):
        timeline = timeline_for("ResNet152", "qsgd4")
        assert 0.0 < timeline.bus_utilization <= 1.0
        assert 0.0 < timeline.gpu_utilization <= 1.0

    def test_comm_bound_schedule_saturates_bus(self):
        # 32bit AlexNet over MPI is strongly communication-bound: the
        # wire should be busy almost the whole makespan
        timeline = timeline_for("AlexNet", "32bit")
        assert timeline.bus_utilization > 0.9

    def test_closed_form_within_pipeline_bounds(self):
        # the analytic exchange estimate must land between the ideal
        # full-overlap bound and the no-overlap serial bound derived
        # from the event-driven schedule
        for network, scheme in [
            ("AlexNet", "qsgd4"),
            ("ResNet152", "1bit*"),
            ("VGG19", "qsgd8"),
        ]:
            timeline = timeline_for(network, scheme)
            result = simulate(network, "p2.8xlarge", scheme, "mpi", 8)
            exchange_estimate = (
                result.iteration_seconds - result.compute_seconds
            )
            lower = max(timeline.gpu_busy, timeline.bus_busy)
            upper = timeline.gpu_busy + timeline.bus_busy + 0.2
            assert lower * 0.5 <= exchange_estimate <= upper * 1.5, (
                network,
                scheme,
            )

    def test_quantized_timeline_shorter_than_fullprec(self):
        quantized = timeline_for("AlexNet", "qsgd4")
        full = timeline_for("AlexNet", "32bit")
        assert quantized.makespan < full.makespan

    def test_reshaped_timeline_shorter_than_stock_on_convnets(self):
        stock = timeline_for("ResNet152", "1bit")
        reshaped = timeline_for("ResNet152", "1bit*")
        assert reshaped.makespan < stock.makespan
