"""Tests for the compute-time model (batch efficiency, GPU scaling)."""

import pytest

from repro.models.specs import get_network
from repro.simulator import get_machine
from repro.simulator.epoch import compute_seconds_per_iteration


def per_sample(network, machine, world_size):
    seconds, batch = compute_seconds_per_iteration(
        get_network(network), get_machine(machine), world_size
    )
    return seconds / (batch // world_size)


class TestBatchEfficiency:
    def test_smaller_per_gpu_batches_cost_more_per_sample(self):
        # ResNet152's per-GPU batch stays 16 from 1..8 GPUs, then the
        # global batch doubles at 16; compare networks whose per-GPU
        # batch shrinks instead
        spec = get_network("ResNet50")  # 32 -> 32 -> 32 -> 32 -> 16
        machine = get_machine("p2.16xlarge")
        b8 = compute_seconds_per_iteration(spec, machine, 8)
        b16 = compute_seconds_per_iteration(spec, machine, 16)
        per8 = b8[0] / (b8[1] // 8)
        per16 = b16[0] / (b16[1] // 16)
        assert per16 > per8  # 16-sample batches amortize worse than 32

    def test_reference_batch_recovers_calibrated_rate(self):
        spec = get_network("BN-Inception")
        machine = get_machine("p2.xlarge")
        seconds, batch = compute_seconds_per_iteration(spec, machine, 1)
        assert batch / seconds == pytest.approx(
            spec.k80_samples_per_second, rel=1e-6
        )

    def test_p100_40_percent_faster(self):
        ec2 = per_sample("ResNet50", "p2.8xlarge", 8)
        dgx = per_sample("ResNet50", "dgx1", 8)
        assert ec2 / dgx == pytest.approx(1.4, rel=1e-6)


class TestSmallBatchAnomaly:
    def test_vgg_triggers_at_8_gpus(self):
        # per-GPU batch 16 <= the anomaly limit < reference batch 32
        with_anomaly = per_sample("VGG19", "p2.8xlarge", 8)
        without = per_sample("VGG19", "p2.8xlarge", 4)  # batch 32/GPU
        assert with_anomaly < without

    def test_other_networks_unaffected(self):
        # AlexNet has no anomaly factor: small batches only get slower
        at16 = per_sample("AlexNet", "p2.16xlarge", 16)  # 16/GPU
        at4 = per_sample("AlexNet", "p2.8xlarge", 4)  # 64/GPU
        assert at16 > at4

    def test_resnet152_reference_batch_excluded(self):
        # ResNet152's reference batch is already 16: the anomaly rule
        # must not fire for it even though per-GPU batch is 16
        spec = get_network("ResNet152")
        assert spec.smallbatch_speedup == 1.0


class TestBatchBookkeeping:
    def test_global_batch_follows_figure4(self):
        spec = get_network("ResNet152")
        machine = get_machine("p2.16xlarge")
        for world_size in (1, 2, 4, 8, 16):
            _, batch = compute_seconds_per_iteration(
                spec, machine, world_size
            )
            assert batch == spec.batch_sizes[world_size]

    def test_lstm_unsupported_gpu_count_raises(self):
        spec = get_network("LSTM")
        machine = get_machine("p2.8xlarge")
        with pytest.raises(ValueError):
            compute_seconds_per_iteration(spec, machine, 4)
