"""Tests for the per-matrix cost model."""

import pytest

from repro.models.specs import get_network
from repro.simulator import NetworkCostModel
from repro.simulator.costmodel import cached_cost_model


class TestPayloads:
    def test_fullprec_payload_is_four_bytes_per_param(self):
        spec = get_network("AlexNet")
        cost = NetworkCostModel(spec, "32bit", world_size=8)
        payload = cost.total_whole_bytes
        assert payload == pytest.approx(4 * spec.parameter_count, rel=0.01)

    def test_qsgd4_compresses_roughly_8x(self):
        spec = get_network("AlexNet")
        full = NetworkCostModel(spec, "32bit", world_size=8)
        quant = NetworkCostModel(spec, "qsgd4", world_size=8)
        ratio = full.total_whole_bytes / quant.total_whole_bytes
        assert 7 < ratio < 8.2

    def test_stock_1bit_expands_conv_networks(self):
        # Section 3.2.2: on conv-dominated nets stock 1bitSGD sends
        # MORE bytes than full precision
        spec = get_network("ResNet152")
        full = NetworkCostModel(spec, "32bit", world_size=8)
        onebit = NetworkCostModel(spec, "1bit", world_size=8)
        assert onebit.total_whole_bytes > full.total_whole_bytes

    def test_stock_1bit_compresses_fc_networks(self):
        spec = get_network("AlexNet")
        full = NetworkCostModel(spec, "32bit", world_size=8)
        onebit = NetworkCostModel(spec, "1bit", world_size=8)
        # AlexNet's conv layers barely compress under the column
        # scheme, but the FC mass dominates: ~10x overall
        assert onebit.total_whole_bytes < full.total_whole_bytes / 8

    def test_reshaping_fixes_conv_networks(self):
        # the 1bitSGD* fix: ~up to 4x less data than stock on ResNet
        spec = get_network("ResNet152")
        stock = NetworkCostModel(spec, "1bit", world_size=8)
        reshaped = NetworkCostModel(spec, "1bit*", world_size=8)
        assert stock.total_whole_bytes > 10 * reshaped.total_whole_bytes

    def test_range_bytes_close_to_whole_bytes(self):
        # per-range encoding adds headers/tail-bucket overhead only
        spec = get_network("VGG19")
        cost = NetworkCostModel(spec, "qsgd8", world_size=8)
        assert (
            cost.total_whole_bytes
            <= cost.total_range_bytes
            <= cost.total_whole_bytes * 1.2
        )

    def test_over_99_percent_quantized(self):
        for name in ("AlexNet", "ResNet50", "VGG19", "BN-Inception"):
            cost = NetworkCostModel(get_network(name), "qsgd4", 8)
            assert cost.quantized_fraction > 0.99


class TestWork:
    def test_stock_1bit_has_many_more_groups_on_convnets(self):
        spec = get_network("ResNet152")
        stock = NetworkCostModel(spec, "1bit", world_size=8)
        reshaped = NetworkCostModel(spec, "1bit*", world_size=8)
        assert stock.total_groups > 20 * reshaped.total_groups

    def test_fullprec_does_no_quant_work(self):
        cost = NetworkCostModel(get_network("AlexNet"), "32bit", 8)
        assert cost.quant_work_units(3.0) == 0.0

    def test_work_scales_with_passes(self):
        cost = NetworkCostModel(get_network("AlexNet"), "qsgd4", 8)
        assert cost.quant_work_units(2.0) == pytest.approx(
            2 * cost.quant_work_units(1.0)
        )


class TestCache:
    def test_cached_model_reused(self):
        a = cached_cost_model("AlexNet", "qsgd4", 8, None)
        b = cached_cost_model("AlexNet", "qsgd4", 8, None)
        assert a is b

    def test_different_keys_different_models(self):
        a = cached_cost_model("AlexNet", "qsgd4", 8, None)
        b = cached_cost_model("AlexNet", "qsgd4", 4, None)
        assert a is not b
