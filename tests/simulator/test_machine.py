"""Tests for machine specs (the paper's Figure 2)."""

import pytest

from repro.simulator import MACHINES, cheapest_machine_for, get_machine


class TestFigure2:
    @pytest.mark.parametrize(
        "name,gpus,price",
        [
            ("p2.xlarge", 1, 0.9),
            ("p2.8xlarge", 8, 7.2),
            ("p2.16xlarge", 16, 14.4),
            ("dgx1", 8, 50.0),
        ],
    )
    def test_machine_rows(self, name, gpus, price):
        machine = get_machine(name)
        assert machine.max_gpus == gpus
        assert machine.price_per_hour == price

    def test_ec2_uses_kepler(self):
        for name in ("p2.xlarge", "p2.8xlarge", "p2.16xlarge"):
            assert get_machine(name).gpu.architecture == "Kepler"

    def test_dgx_uses_pascal(self):
        machine = get_machine("dgx1")
        assert machine.gpu.architecture == "Pascal"
        # Section 5.2: the P100 is about 40% faster than the K80
        assert machine.gpu.compute_scale == pytest.approx(1.4)

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            get_machine("p5.48xlarge")


class TestSupportMatrix:
    def test_nccl_capped_at_8_gpus(self):
        # Section 5.2: "NCCL does not currently support more than 8 GPUs"
        machine = get_machine("p2.16xlarge")
        assert machine.supports(16, "mpi")
        assert not machine.supports(16, "nccl")
        assert machine.supports(8, "nccl")

    def test_world_size_bounded_by_machine(self):
        assert not get_machine("p2.8xlarge").supports(16, "mpi")
        assert not get_machine("p2.xlarge").supports(2, "mpi")

    def test_mpi_bus_grows_sublinearly(self):
        machine = get_machine("p2.8xlarge")
        bw4 = machine.mpi_bus_bandwidth(4)
        bw8 = machine.mpi_bus_bandwidth(8)
        assert bw4 < bw8 < 2 * bw4

    def test_cheapest_machine(self):
        assert cheapest_machine_for(1).name == "p2.xlarge"
        assert cheapest_machine_for(8).name == "p2.8xlarge"
        assert cheapest_machine_for(16).name == "p2.16xlarge"
        with pytest.raises(ValueError):
            cheapest_machine_for(32)

    def test_all_machines_have_positive_link_constants(self):
        for machine in MACHINES.values():
            assert machine.mpi_bus_gbps > 0
            assert machine.nccl_link_gbps > 0
            assert machine.gpu.quant_elements_per_second > 0
