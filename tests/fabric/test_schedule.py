"""Collective schedule compilation and byte-exact accounting."""

import pytest

from repro.fabric import (
    PATTERN_NAMES,
    compile_collective,
    encoded_chunk_bytes,
    leaf_spine,
    schedule_for,
    verify_allreduce,
)
from repro.fabric.schedule import Transfer
from repro.quantization import make_quantizer


class TestCompile:
    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    @pytest.mark.parametrize("world_size", [1, 2, 4, 8])
    def test_all_patterns_verify(self, pattern, world_size):
        schedule = compile_collective(pattern, world_size, 10_000,
                                      "qsgd4")
        verify_allreduce(schedule)

    def test_world_of_one_is_empty(self):
        schedule = compile_collective("ring", 1, 100)
        assert schedule.transfers == ()
        verify_allreduce(schedule)

    def test_unknown_pattern_raises_value_error_listing_choices(self):
        with pytest.raises(ValueError) as err:
            compile_collective("gossip", 4, 100)
        for name in PATTERN_NAMES:
            assert name in str(err.value)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            compile_collective("ring", 0, 100)
        with pytest.raises(ValueError):
            compile_collective("ring", 4, 0)

    def test_ring_transfer_and_round_counts(self):
        k = 8
        schedule = compile_collective("ring", k, 10_000)
        # K chunks x 2(K-1) hops each
        assert len(schedule.transfers) == k * 2 * (k - 1)
        assert schedule.rounds == 2 * (k - 1)

    def test_tree_is_logarithmic(self):
        schedule = compile_collective("tree", 8, 10_000)
        assert len(schedule.transfers) == 2 * 7
        assert schedule.rounds == 2 * 3  # 2 ceil(log2 8)

    def test_deps_point_backwards(self):
        for pattern in PATTERN_NAMES:
            schedule = compile_collective(pattern, 6, 5_000, "qsgd8")
            for t in schedule.transfers:
                assert all(d < t.index for d in t.deps)

    def test_ring_first_hops_have_no_deps(self):
        # the sender's own contribution needs no prior receive: chunks
        # must pipeline freely or the ring serializes
        schedule = compile_collective("ring", 4, 1_000)
        first_hops = [t for t in schedule.transfers if t.round == 0]
        assert len(first_hops) == 4
        assert all(t.deps == () for t in first_hops)


class TestByteAccounting:
    def test_chunk_bytes_use_encoded_wire_format(self):
        codec = make_quantizer("qsgd4")
        chunks = encoded_chunk_bytes(10_000, 4, codec)
        ranges = [(0, 2500), (2500, 5000), (5000, 7500), (7500, 10000)]
        assert chunks == tuple(
            codec.encoded_nbytes((hi - lo, 1)) for lo, hi in ranges
        )

    def test_transfer_bytes_sum_chunk_bytes(self):
        schedule = compile_collective("butterfly", 8, 9_999, "1bit")
        for t in schedule.transfers:
            assert t.nbytes == sum(schedule.chunk_bytes[t.lo:t.hi])

    def test_quantization_shrinks_the_wire(self):
        full = compile_collective("ring", 8, 100_000, "32bit")
        q4 = compile_collective("ring", 8, 100_000, "qsgd4")
        one = compile_collective("ring", 8, 100_000, "1bit")
        assert q4.total_wire_bytes < full.total_wire_bytes / 4
        assert one.total_wire_bytes < q4.total_wire_bytes

    def test_payload_bytes_matches_full_gradient(self):
        codec = make_quantizer("qsgd8")
        schedule = compile_collective("tree", 4, 8_000, "qsgd8")
        assert schedule.payload_bytes == sum(
            codec.encoded_nbytes((2000, 1)) for _ in range(4)
        )


class TestHierarchical:
    def test_schedule_for_groups_by_host(self):
        topology = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                              spines=2)
        schedule = schedule_for("hierarchical", topology, 20_000,
                                "qsgd4")
        verify_allreduce(schedule)
        # inter-node traffic is leader-to-leader only
        leaders = {0, 4, 8, 12}
        for t in schedule.transfers:
            if topology.host_of[t.src] != topology.host_of[t.dst]:
                assert t.src in leaders and t.dst in leaders

    def test_single_member_nodes(self):
        schedule = compile_collective(
            "hierarchical", 3, 1_000, nodes=((0,), (1,), (2,))
        )
        verify_allreduce(schedule)


class TestVerifierCatchesBadSchedules:
    def test_missing_contribution_detected(self):
        good = compile_collective("tree", 4, 1_000)
        bad = good.__class__(
            pattern=good.pattern,
            world_size=good.world_size,
            total_elements=good.total_elements,
            scheme=good.scheme,
            chunk_bytes=good.chunk_bytes,
            transfers=good.transfers[:-1],  # drop a broadcast leg
        )
        with pytest.raises(ValueError):
            verify_allreduce(bad)

    def test_double_reduce_detected(self):
        good = compile_collective("tree", 2, 1_000)
        dup = good.transfers[0]
        extra = Transfer(
            index=len(good.transfers),
            src=dup.src,
            dst=dup.dst,
            lo=dup.lo,
            hi=dup.hi,
            nbytes=dup.nbytes,
            op="reduce",
            deps=(),
            round=99,
        )
        bad = good.__class__(
            pattern=good.pattern,
            world_size=good.world_size,
            total_elements=good.total_elements,
            scheme=good.scheme,
            chunk_bytes=good.chunk_bytes,
            transfers=good.transfers + (extra,),
        )
        with pytest.raises(ValueError, match="more than once"):
            verify_allreduce(bad)

    def test_wrong_nbytes_detected(self):
        good = compile_collective("tree", 2, 1_000)
        t = good.transfers[0]
        lying = Transfer(
            index=t.index, src=t.src, dst=t.dst, lo=t.lo, hi=t.hi,
            nbytes=t.nbytes + 1, op=t.op, deps=t.deps, round=t.round,
        )
        bad = good.__class__(
            pattern=good.pattern,
            world_size=good.world_size,
            total_elements=good.total_elements,
            scheme=good.scheme,
            chunk_bytes=good.chunk_bytes,
            transfers=(lying,) + good.transfers[1:],
        )
        with pytest.raises(ValueError, match="bytes"):
            verify_allreduce(bad)
