"""Event-driven fabric simulation: queueing, faults, degradation."""

import pytest

from repro.fabric import (
    LinkFault,
    compile_collective,
    fabric_chrome_trace,
    leaf_spine,
    run_collective,
    select_collective,
    simulate_schedule,
    single_node,
)
from repro.runtime.resilience import TopologyChange


class TestBasicSimulation:
    def test_every_transfer_completes(self):
        topo = single_node(4)
        result = run_collective(topo, "ring", 50_000, "qsgd4")
        schedule = compile_collective(
            "ring", 4, 50_000, "qsgd4",
            nodes=(tuple(range(4)),),
        )
        assert result.completed_transfers == len(schedule.transfers)
        assert result.makespan_seconds > 0
        assert result.dropped_transfers == 0
        assert result.topology_changes == ()

    def test_deterministic(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        a = run_collective(topo, "butterfly", 40_000, "qsgd8")
        b = run_collective(topo, "butterfly", 40_000, "qsgd8")
        assert a.occupancies == b.occupancies
        assert a.makespan_seconds == b.makespan_seconds

    def test_store_and_forward_occupies_every_hop(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        result = run_collective(topo, "tree", 10_000)
        # cross-leaf transfers occupy gpu/host/leaf/spine links
        kinds = {occ.link_class for occ in result.occupancies}
        assert "nvlink" in kinds and "nic" in kinds
        assert any(k.startswith("trunk") for k in kinds)

    def test_fifo_contention_serializes_shared_links(self):
        topo = single_node(4)
        result = run_collective(topo, "ring", 1_000_000, "32bit")
        by_link = {}
        for occ in result.occupancies:
            by_link.setdefault(occ.link, []).append(occ)
        # the ring pushes many transfers through each star link...
        assert max(len(occs) for occs in by_link.values()) > 1
        # ...and a FIFO link never carries two at once
        for occs in by_link.values():
            occs.sort(key=lambda o: o.start_s)
            for first, second in zip(occs, occs[1:]):
                assert second.start_s >= first.end_s - 1e-12

    def test_quantization_speeds_up_the_collective(self):
        topo = leaf_spine(64, oversubscription=4.0)
        full = run_collective(topo, "ring", 5_000_000, "32bit")
        q4 = run_collective(topo, "ring", 5_000_000, "qsgd4")
        assert q4.makespan_seconds < full.makespan_seconds / 2

    def test_oversubscription_slows_cross_leaf_traffic(self):
        fast = leaf_spine(32, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2, oversubscription=1.0)
        slow = leaf_spine(32, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2, oversubscription=8.0)
        a = run_collective(fast, "tree", 2_000_000)
        b = run_collective(slow, "tree", 2_000_000)
        assert b.makespan_seconds > a.makespan_seconds

    def test_utilization_bounded_by_one(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        result = run_collective(topo, "ring", 100_000, "qsgd2")
        for utilization in result.link_utilization().values():
            assert 0.0 <= utilization <= 1.0 + 1e-9


class TestFaults:
    def topo(self):
        return leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)

    def test_flap_delays_completion(self):
        topo = self.topo()
        base = run_collective(topo, "tree", 1_000_000, "qsgd4")
        # leaf0<->leaf1 rides spine1 under the ECMP hash; flap it
        flap = LinkFault("leaf0", "spine1", fail_at_s=0.0,
                         recover_at_s=0.01)
        flapped = run_collective(topo, "tree", 1_000_000, "qsgd4",
                                 faults=(flap,))
        assert flapped.makespan_seconds >= 0.01
        assert flapped.makespan_seconds > base.makespan_seconds
        assert flapped.topology_changes == ()

    def test_permanent_spine_failure_reroutes(self):
        topo = self.topo()
        fault = LinkFault("leaf0", "spine1", fail_at_s=0.0)
        result = run_collective(topo, "tree", 1_000_000, "qsgd4",
                                faults=(fault,))
        # no partition: the other spine carries the traffic
        assert result.topology_changes == ()
        assert result.survivors == tuple(range(16))
        dead = {("leaf0", "spine1"), ("spine1", "leaf0")}
        assert all(
            occ.link not in dead for occ in result.occupancies
        )

    def test_partition_emits_topology_changes(self):
        topo = self.topo()
        fault = LinkFault("host2", "leaf1", fail_at_s=1e-4)
        result = run_collective(topo, "ring", 1_000_000, "qsgd4",
                                faults=(fault,), step=11)
        lost = {8, 9, 10, 11}
        assert {c.rank for c in result.topology_changes} == lost
        assert result.survivors == (0, 1, 2, 3, 4, 5, 6, 7, 12, 13,
                                    14, 15)
        for change in result.topology_changes:
            assert isinstance(change, TopologyChange)
            assert change.kind == "link"
            assert change.step == 11
            assert change.survivors == result.survivors
            # the record is the resilience loop's own type: it must
            # serialize through its History round-trip format
            assert TopologyChange.from_dict(change.to_dict()) == change
        assert result.dropped_transfers > 0
        # the collective still completes over the survivors
        survivor_schedule = compile_collective(
            "ring", 12, 1_000_000, "qsgd4"
        )
        assert result.completed_transfers == len(
            survivor_schedule.transfers
        )

    def test_partitioned_collective_consumed_by_history(self):
        from repro.core.metrics import History

        topo = self.topo()
        fault = LinkFault("host2", "leaf1", fail_at_s=1e-4)
        result = run_collective(topo, "ring", 1_000_000, "qsgd4",
                                faults=(fault,), step=3)
        history = History(label="fabric/qsgd4")
        history.topology_changes.extend(result.topology_changes)
        record = history.to_dict()
        restored = History.from_dict(record)
        assert restored.topology_changes == list(result.topology_changes)

    def test_fault_after_completion_changes_nothing(self):
        topo = self.topo()
        base = run_collective(topo, "tree", 10_000, "qsgd4")
        late = LinkFault("host0", "leaf0",
                         fail_at_s=base.makespan_seconds + 1.0)
        result = run_collective(topo, "tree", 10_000, "qsgd4",
                                faults=(late,))
        assert result.topology_changes == ()
        assert result.makespan_seconds == base.makespan_seconds


class TestSelector:
    def test_small_payload_prefers_low_latency_pattern(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        choice = select_collective(topo, 1_000, "qsgd4")
        assert choice.pattern in ("tree", "hierarchical")

    def test_large_payload_prefers_ring(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        choice = select_collective(topo, 1_000_000, "qsgd4")
        assert choice.pattern == "ring"
        assert choice.makespan_seconds == min(choice.candidates.values())
        assert choice.speedup_over("tree") >= 1.0

    def test_single_node_skips_hierarchical(self):
        choice = select_collective(single_node(4), 10_000)
        assert "hierarchical" not in choice.candidates


class TestTraceExport:
    def test_trace_document_shape(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        fault = LinkFault("host2", "leaf1", fail_at_s=1e-4)
        result = run_collective(topo, "tree", 500_000, "qsgd4",
                                faults=(fault,))
        doc = fabric_chrome_trace(result)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(result.occupancies)
        # one named track per distinct link
        links = {occ.link for occ in result.occupancies}
        assert len(meta) == len(links)
        names = {m["args"]["name"] for m in meta}
        assert any("[nic]" in n for n in names)
        for event in slices:
            assert event["dur"] >= 0
            assert event["args"]["nbytes"] > 0
        other = doc["otherData"]
        assert other["pattern"] == "tree"
        assert other["topology_changes"] == [
            c.to_dict() for c in result.topology_changes
        ]
        assert other["link_busy_seconds"]

    def test_write_fabric_trace_round_trips(self, tmp_path):
        import json

        from repro.fabric import write_fabric_trace

        topo = single_node(4)
        result = run_collective(topo, "ring", 10_000)
        path = tmp_path / "fabric.json"
        write_fabric_trace(result, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["pattern"] == "ring"
        assert len(loaded["traceEvents"]) > 0


class TestRescheduleMapping:
    def test_simulate_schedule_with_rank_map(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        schedule = compile_collective("tree", 4, 10_000)
        # run the 4-rank schedule on physical ranks 12..15
        result = simulate_schedule(
            topo, schedule, rank_map=(12, 13, 14, 15)
        )
        used = {occ.link[0] for occ in result.occupancies} | {
            occ.link[1] for occ in result.occupancies
        }
        gpus = {n for n in used if n.startswith("gpu")}
        assert gpus == {"gpu12", "gpu13", "gpu14", "gpu15"}
