"""Fabric topology construction, routing, and failure reachability."""

import pytest

from repro.fabric import (
    LINK_CLASSES,
    TOPOLOGY_NAMES,
    LinkClass,
    fat_tree,
    leaf_spine,
    make_topology,
    single_node,
)


class TestLinkClass:
    def test_defaults_are_ordered_sanely(self):
        # intra-node links must be faster than the NIC, as in real boxes
        assert LINK_CLASSES["nvlink"].gbps > LINK_CLASSES["nic"].gbps
        assert LINK_CLASSES["pcie"].gbps > LINK_CLASSES["nic"].gbps

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkClass("bad", 0.0, 1e-6)
        with pytest.raises(ValueError):
            LinkClass("bad", 10.0, -1.0)

    def test_link_seconds_includes_latency(self):
        topo = single_node(2)
        link = topo.links[("gpu0", "host0")]
        assert link.seconds(0) == pytest.approx(link.cls.latency_s)
        assert link.seconds(1000) > link.cls.latency_s


class TestSingleNode:
    def test_star_shape(self):
        topo = single_node(4)
        assert topo.world_size == 4
        assert not topo.multi_node
        assert topo.hosts == ("host0",)
        # 4 GPUs x 2 directions
        assert len(topo.links) == 8

    def test_route_goes_through_host(self):
        topo = single_node(4)
        route = topo.route(1, 3)
        assert [link.key for link in route] == [
            ("gpu1", "host0"),
            ("host0", "gpu3"),
        ]

    def test_self_route_is_empty(self):
        assert single_node(2).route(0, 0) == ()

    def test_rank_bounds_checked(self):
        with pytest.raises(ValueError):
            single_node(2).route(0, 5)


class TestLeafSpine:
    def test_placement(self):
        topo = leaf_spine(32, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        assert topo.multi_node
        assert len(topo.hosts) == 8
        assert topo.host_of[0] == "host0"
        assert topo.host_of[31] == "host7"
        assert topo.ranks_on("host1") == (4, 5, 6, 7)
        assert topo.same_host(0, 3) and not topo.same_host(0, 4)

    def test_cross_leaf_route_crosses_a_spine(self):
        topo = leaf_spine(32, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        route = topo.route(0, 31)
        nodes = [route[0].src] + [link.dst for link in route]
        assert nodes[0] == "gpu0" and nodes[-1] == "gpu31"
        assert any(n.startswith("spine") for n in nodes)

    def test_same_leaf_route_skips_spines(self):
        topo = leaf_spine(32, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        route = topo.route(0, 4)  # host0 -> host1, both under leaf0
        nodes = [link.dst for link in route]
        assert not any(n.startswith("spine") for n in nodes)

    def test_ecmp_spreads_flows_deterministically(self):
        topo = leaf_spine(64, gpus_per_host=8, hosts_per_leaf=2,
                          spines=4)
        spines_hit = {
            next(
                link.dst
                for link in topo.route(0, 63, flow=flow)
                if link.dst.startswith("spine")
            )
            for flow in range(8)
        }
        assert len(spines_hit) == 4
        # and the choice is stable run to run
        assert topo.route(0, 63, flow=3) == topo.route(0, 63, flow=3)

    def test_oversubscription_divides_trunk_bandwidth(self):
        full = leaf_spine(32, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2, oversubscription=1.0)
        thin = leaf_spine(32, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2, oversubscription=4.0)
        full_trunk = full.links[("leaf0", "spine0")].cls
        thin_trunk = thin.links[("leaf0", "spine0")].cls
        assert thin_trunk.gbps == pytest.approx(full_trunk.gbps / 4.0)

    def test_oversubscription_below_one_rejected(self):
        with pytest.raises(ValueError):
            leaf_spine(8, oversubscription=0.5)

    def test_fat_tree_is_full_bisection(self):
        topo = fat_tree(32, gpus_per_host=4, hosts_per_leaf=2, spines=2)
        assert topo.name == "fat-tree"
        assert topo.links[("leaf0", "spine0")].cls.gbps == (
            pytest.approx(LINK_CLASSES["trunk"].gbps)
        )


class TestFailureRouting:
    def test_route_avoids_dead_spine(self):
        topo = leaf_spine(64, gpus_per_host=8, hosts_per_leaf=2,
                          spines=2)
        baseline = topo.route(0, 63, flow=0)
        spine = next(
            link.dst for link in baseline if link.dst.startswith("spine")
        )
        avoid = frozenset({("leaf0", spine), (spine, "leaf0")})
        rerouted = topo.route(0, 63, flow=0, avoid=avoid)
        assert rerouted is not None
        new_spine = next(
            link.dst for link in rerouted if link.dst.startswith("spine")
        )
        assert new_spine != spine

    def test_route_none_when_host_uplink_cut(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        avoid = frozenset({("host0", "leaf0"), ("leaf0", "host0")})
        assert topo.route(0, 15, avoid=avoid) is None

    def test_reachable_ranks_anchor_at_rank_zero(self):
        topo = leaf_spine(16, gpus_per_host=4, hosts_per_leaf=2,
                          spines=2)
        assert topo.reachable_ranks() == tuple(range(16))
        avoid = frozenset({("host1", "leaf0")})
        assert topo.reachable_ranks(avoid) == (
            0, 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15
        )


class TestMakeTopology:
    def test_every_family_constructs(self):
        for name in TOPOLOGY_NAMES:
            topo = make_topology(name, 8)
            assert topo.world_size == 8

    def test_unknown_name_raises_value_error_listing_choices(self):
        with pytest.raises(ValueError) as err:
            make_topology("torus", 8)
        for name in TOPOLOGY_NAMES:
            assert name in str(err.value)
