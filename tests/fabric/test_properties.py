"""Property-based tests for collective schedules and their simulation.

Randomized patterns, world sizes (powers of two and not), payloads,
and codecs; the allreduce invariants must hold for all of them.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import (
    PATTERN_NAMES,
    compile_collective,
    leaf_spine,
    simulate_schedule,
    verify_allreduce,
)

SCHEMES = st.sampled_from(["32bit", "qsgd4", "qsgd8", "1bit"])
PATTERNS = st.sampled_from(PATTERN_NAMES)
WORLDS = st.integers(min_value=1, max_value=12)
NON_POWERS = st.sampled_from([3, 5, 6, 7, 9, 10, 11, 12])
ELEMENTS = st.integers(min_value=1, max_value=5_000)


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        pattern=PATTERNS,
        world_size=WORLDS,
        elements=ELEMENTS,
        scheme=SCHEMES,
    )
    def test_every_rank_reduced_exactly_once(
        self, pattern, world_size, elements, scheme
    ):
        schedule = compile_collective(
            pattern, world_size, elements, scheme
        )
        # the verifier replays the transfer multiset and raises unless
        # every rank ends holding each contribution exactly once
        verify_allreduce(schedule)

    @settings(max_examples=40, deadline=None)
    @given(pattern=PATTERNS, world_size=NON_POWERS, elements=ELEMENTS)
    def test_valid_for_non_power_of_two_worlds(
        self, pattern, world_size, elements
    ):
        schedule = compile_collective(pattern, world_size, elements)
        verify_allreduce(schedule)
        assert schedule.world_size == world_size

    @settings(max_examples=40, deadline=None)
    @given(
        pattern=PATTERNS,
        world_size=WORLDS,
        elements=ELEMENTS,
        scheme=SCHEMES,
    )
    def test_transfer_bytes_match_chunk_table(
        self, pattern, world_size, elements, scheme
    ):
        schedule = compile_collective(
            pattern, world_size, elements, scheme
        )
        for t in schedule.transfers:
            assert t.nbytes == sum(schedule.chunk_bytes[t.lo:t.hi])


class TestSimulationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        pattern=PATTERNS,
        world_size=st.integers(min_value=2, max_value=16),
        elements=st.integers(min_value=1, max_value=50_000),
        scheme=SCHEMES,
    )
    def test_bytes_conserved_at_every_switch(
        self, pattern, world_size, elements, scheme
    ):
        # store-and-forward must neither drop nor duplicate bytes: for
        # each transfer, every hop carries the full encoded size, and
        # at each intermediate switch the inbound hop is matched by
        # exactly one outbound hop
        topo = leaf_spine(
            16, gpus_per_host=4, hosts_per_leaf=2, spines=2
        )
        schedule = compile_collective(
            pattern, world_size, elements, scheme
        )
        result = simulate_schedule(
            topo, schedule, rank_map=tuple(range(world_size))
        )
        hops_by_transfer = {}
        for occ in result.occupancies:
            hops_by_transfer.setdefault(occ.transfer, []).append(occ)
        assert set(hops_by_transfer) == {
            t.index for t in schedule.transfers
        }
        for t in schedule.transfers:
            hops = hops_by_transfer[t.index]
            assert all(h.nbytes == t.nbytes for h in hops)
            inbound = Counter(h.link[1] for h in hops)
            outbound = Counter(h.link[0] for h in hops)
            endpoints = {f"gpu{rank}" for rank in range(16)}
            for node in set(inbound) | set(outbound):
                if node in endpoints:
                    continue
                assert inbound[node] == outbound[node]

    @settings(max_examples=25, deadline=None)
    @given(
        pattern=PATTERNS,
        world_size=st.integers(min_value=1, max_value=16),
        elements=st.integers(min_value=1, max_value=50_000),
    )
    def test_simulation_completes_the_whole_schedule(
        self, pattern, world_size, elements
    ):
        topo = leaf_spine(
            16, gpus_per_host=4, hosts_per_leaf=2, spines=2
        )
        schedule = compile_collective(pattern, world_size, elements)
        result = simulate_schedule(
            topo, schedule, rank_map=tuple(range(world_size))
        )
        assert result.completed_transfers == len(schedule.transfers)
        assert result.dropped_transfers == 0
        assert result.makespan_seconds >= 0.0
