"""Fabric-vs-measured cross-validation: the K=4 simulation anchor."""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.fabric import fabric_cross_validate, single_node
from repro.nn import Dense, Sequential
from repro.telemetry import PhaseBreakdown, Tracer
from repro.telemetry.crossval import DEFAULT_FRACTION_GAP_TOLERANCE

FEATURES = 32
CLASSES = 4
LINK_GBPS = 0.002  # the paced rate the live exchange sleeps on


def synthetic_breakdown(transfer=0.4):
    return PhaseBreakdown(
        label="synthetic",
        wall_seconds=3.0,
        phase_seconds={
            "compute": 1.0,
            "encode": 0.2,
            "decode": 0.1,
            "transfer": transfer,
            "barrier": 50.0,  # rendezvous jitter: must not be charged
        },
    )


class TestFabricCrossValidate:
    def test_rows_and_fractions(self):
        cv = fabric_cross_validate(
            synthetic_breakdown(),
            scheme="qsgd4",
            pattern="ring",
            world_size=4,
            total_elements=10_000,
            steps=3,
            link_gbps=LINK_GBPS,
        )
        assert [r.phase for r in cv.rows] == [
            "compute", "quantize", "communicate",
        ]
        assert sum(r.measured_fraction for r in cv.rows) == (
            pytest.approx(1.0)
        )
        assert sum(r.simulated_fraction for r in cv.rows) == (
            pytest.approx(1.0)
        )
        assert cv.predicted_comm_seconds == pytest.approx(
            cv.fabric.makespan_seconds * 3 * 4
        )

    def test_barrier_jitter_not_charged_to_the_fabric(self):
        # the 50 s barrier above is orchestration overhead; if it
        # leaked into the communicate group no wire model could pass
        cv = fabric_cross_validate(
            synthetic_breakdown(),
            scheme="qsgd4",
            pattern="ring",
            world_size=4,
            total_elements=10_000,
            steps=3,
            link_gbps=LINK_GBPS,
        )
        comm = next(r for r in cv.rows if r.phase == "communicate")
        assert comm.measured_seconds == pytest.approx(0.4)

    def test_compute_and_quantize_carried_from_measurement(self):
        cv = fabric_cross_validate(
            synthetic_breakdown(),
            scheme="qsgd4",
            pattern="ring",
            world_size=4,
            total_elements=10_000,
            steps=3,
            link_gbps=LINK_GBPS,
        )
        by_phase = {r.phase: r for r in cv.rows}
        assert by_phase["compute"].simulated_seconds == pytest.approx(1.0)
        assert by_phase["quantize"].simulated_seconds == pytest.approx(0.3)
        assert by_phase["communicate"].simulated_seconds == (
            pytest.approx(cv.predicted_comm_seconds)
        )

    def test_pass_fail_threshold(self):
        cv = fabric_cross_validate(
            synthetic_breakdown(),
            scheme="qsgd4",
            pattern="ring",
            world_size=4,
            total_elements=10_000,
            steps=3,
            link_gbps=LINK_GBPS,
        )
        assert cv.passes(tolerance=1.0)
        assert not cv.passes(tolerance=cv.max_fraction_gap / 2)

    def test_report_contents(self):
        cv = fabric_cross_validate(
            synthetic_breakdown(),
            scheme="qsgd4",
            pattern="ring",
            world_size=4,
            total_elements=10_000,
            steps=3,
            link_gbps=LINK_GBPS,
        )
        report = cv.report()
        assert "fabric cross-validation" in report
        assert "max phase-share gap" in report
        assert "communicate" in report

    def test_topology_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="world_size"):
            fabric_cross_validate(
                synthetic_breakdown(),
                scheme="qsgd4",
                pattern="ring",
                world_size=4,
                total_elements=10_000,
                steps=3,
                topology=single_node(8),
            )

    def test_bad_steps_rejected(self):
        with pytest.raises(ValueError, match="steps"):
            fabric_cross_validate(
                synthetic_breakdown(),
                scheme="qsgd4",
                pattern="ring",
                world_size=4,
                total_elements=10_000,
                steps=0,
            )


class TestLiveAnchor:
    def test_process_engine_k4_anchor_within_tolerance(self):
        # the acceptance anchor: a real K=4 process-engine run, traced,
        # must agree with the fabric's prediction of the same payload
        # over links paced at the same rate
        rng = np.random.default_rng(1)
        x = rng.normal(size=(48, FEATURES)).astype(np.float32)
        y = rng.integers(0, CLASSES, size=48).astype(np.int64)
        tracer = Tracer()
        config = TrainingConfig(
            scheme="qsgd4",
            exchange="nccl",
            world_size=4,
            batch_size=16,
            lr=0.01,
            seed=0,
            tracer=tracer,
            engine="process",
            link_gbps=LINK_GBPS,
        )
        model = Sequential(Dense(FEATURES, CLASSES, "fc", rng))
        with ParallelTrainer(model, config) as trainer:
            history = trainer.fit(x, y, x, y, epochs=1)
        assert not history.failed
        breakdown = PhaseBreakdown.from_history(history)
        elements = sum(
            int(np.prod(p.shape)) for p in model.parameters()
        )
        cv = fabric_cross_validate(
            breakdown,
            scheme="qsgd4",
            pattern="ring",
            world_size=4,
            total_elements=elements,
            steps=3,  # 48 samples / batch 16
            link_gbps=LINK_GBPS,
        )
        assert cv.passes(), cv.report()
        assert cv.max_fraction_gap <= DEFAULT_FRACTION_GAP_TOLERANCE
