"""Tests for SGD with momentum and the LR schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Sgd, exponential_decay, step_decay


class TestSgd:
    def test_plain_step(self):
        p = Parameter("w", np.array([1.0, 2.0], dtype=np.float32))
        opt = Sgd(lr=0.5, momentum=0.0)
        opt.apply(p, np.array([1.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(p.data, [0.5, 1.5])

    def test_momentum_accumulates(self):
        p = Parameter("w", np.zeros(1, dtype=np.float32))
        opt = Sgd(lr=1.0, momentum=0.5)
        grad = np.ones(1, dtype=np.float32)
        opt.apply(p, grad)  # v=1, w=-1
        opt.apply(p, grad)  # v=1.5, w=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay(self):
        p = Parameter("w", np.array([2.0], dtype=np.float32))
        opt = Sgd(lr=1.0, momentum=0.0, weight_decay=0.1)
        opt.apply(p, np.zeros(1, dtype=np.float32))
        np.testing.assert_allclose(p.data, [1.8])

    def test_momentum_state_per_parameter(self):
        a = Parameter("a", np.zeros(1, dtype=np.float32))
        b = Parameter("b", np.zeros(1, dtype=np.float32))
        opt = Sgd(lr=1.0, momentum=0.9)
        opt.apply(a, np.ones(1, dtype=np.float32))
        opt.apply(b, np.zeros(1, dtype=np.float32))
        np.testing.assert_allclose(b.data, [0.0])

    def test_shape_mismatch_rejected(self):
        p = Parameter("w", np.zeros(2, dtype=np.float32))
        opt = Sgd(lr=0.1)
        with pytest.raises(ValueError):
            opt.apply(p, np.zeros(3, dtype=np.float32))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Sgd(lr=0.0)
        with pytest.raises(ValueError):
            Sgd(lr=0.1, momentum=1.0)

    def test_reset_clears_velocity(self):
        p = Parameter("w", np.zeros(1, dtype=np.float32))
        opt = Sgd(lr=1.0, momentum=0.9)
        opt.apply(p, np.ones(1, dtype=np.float32))
        opt.reset()
        p.data[:] = 0.0
        opt.apply(p, np.zeros(1, dtype=np.float32))
        np.testing.assert_allclose(p.data, [0.0])


class TestSchedules:
    def test_exponential_decay(self):
        assert exponential_decay(1.0, 0.5, 0) == 1.0
        assert exponential_decay(1.0, 0.5, 2) == 0.25

    def test_constant_when_decay_one(self):
        assert exponential_decay(0.1, 1.0, 50) == 0.1

    def test_step_decay(self):
        assert step_decay(1.0, epoch=0, step=10) == 1.0
        assert step_decay(1.0, epoch=10, step=10) == pytest.approx(0.1)
        assert step_decay(1.0, epoch=25, step=10) == pytest.approx(0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            exponential_decay(0.0, 0.5, 1)
        with pytest.raises(ValueError):
            exponential_decay(1.0, 0.0, 1)
        with pytest.raises(ValueError):
            step_decay(1.0, epoch=1, step=0)
