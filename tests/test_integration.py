"""Cross-layer integration tests.

The strongest consistency check in the repository: the performance
simulator's *analytic* byte counts must agree with the bytes the real
communication layer actually puts on the wire when exchanging
gradients of the same shapes — the two are computed by entirely
different code paths.
"""

import numpy as np
import pytest

from repro.comm import MpiReduceBroadcast, NcclRingAllreduce
from repro.models.specs import GradientMatrixSpec, NetworkSpec
from repro.quantization import make_quantizer
from repro.simulator import NetworkCostModel


def tiny_network() -> NetworkSpec:
    """A small synthetic spec the comm layer can exchange for real."""
    layers = (
        GradientMatrixSpec("fc1", 64, 96, "fc"),
        GradientMatrixSpec("conv1", 3, 1200, "conv"),
        GradientMatrixSpec("fc2", 128, 32, "fc"),
        GradientMatrixSpec("bias", 17, 1, "bias"),
    )
    return NetworkSpec(
        name="Tiny",
        dataset="synthetic",
        samples_per_epoch=1000,
        epochs_to_converge=10,
        initial_lr=0.1,
        gflops_per_sample=0.1,
        k80_samples_per_second=100.0,
        published_accuracy=0.0,
        batch_sizes={1: 32, 2: 32, 4: 32},
        layers=layers,
    )


WORLD = 4


def exchange_all_layers(exchange, codec, spec):
    rng = np.random.default_rng(0)
    for layer in spec.layers:
        tensors = [
            np.random.default_rng(rank)
            .normal(size=layer.shape)
            .astype(np.float32)
            for rank in range(WORLD)
        ]
        exchange.exchange(layer.name, tensors, codec, rng)


class TestSimulatorMatchesCommLayer:
    @pytest.mark.parametrize(
        "scheme", ["32bit", "qsgd4", "qsgd8", "1bit", "1bit*"]
    )
    def test_mpi_reduce_traffic_matches_cost_model(self, scheme):
        spec = tiny_network()
        cost = NetworkCostModel(
            spec, scheme, world_size=WORLD, passthrough_coverage=0.99
        )

        # route each layer through the same codec the cost model chose
        exchange = MpiReduceBroadcast(WORLD, requantize_broadcast=True)
        rng = np.random.default_rng(0)
        for layer, matrix_cost in zip(spec.layers, cost.matrices):
            codec = (
                cost.codec
                if matrix_cost.quantized
                else make_quantizer("32bit")
            )
            tensors = [
                np.random.default_rng(rank)
                .normal(size=layer.shape)
                .astype(np.float32)
                for rank in range(WORLD)
            ]
            exchange.exchange(layer.name, tensors, codec, rng)

        # reduce phase sends (K-1) x range payload; the requantized
        # broadcast phase sends (K-1) x the same payload again
        expected = 2 * (WORLD - 1) * cost.total_range_bytes
        actual = exchange.traffic.total_bytes
        assert actual == pytest.approx(expected, rel=0.02)

    def test_nccl_ring_traffic_matches_cost_model(self):
        spec = tiny_network()
        cost = NetworkCostModel(spec, "qsgd8", world_size=WORLD)
        # disable slice padding so the analytic count is exact
        exchange = NcclRingAllreduce(WORLD, slice_bytes=1)
        rng = np.random.default_rng(0)
        for layer, matrix_cost in zip(spec.layers, cost.matrices):
            codec = (
                cost.codec
                if matrix_cost.quantized
                else make_quantizer("32bit")
            )
            tensors = [
                np.random.default_rng(rank)
                .normal(size=layer.shape)
                .astype(np.float32)
                for rank in range(WORLD)
            ]
            exchange.exchange(layer.name, tensors, codec, rng)
        expected = 2 * (WORLD - 1) * cost.total_whole_bytes
        actual = exchange.traffic.total_bytes
        # ceil-per-chunk rounding adds at most a few bytes per message
        assert actual == pytest.approx(expected, rel=0.02)

    def test_passthrough_threshold_agrees_across_layers(self):
        # the cost model and the trainer's policy must route the same
        # matrices to full precision
        from repro.core import SynchronousStep, TrainingConfig
        from repro.nn.module import Parameter

        spec = tiny_network()
        cost = NetworkCostModel(spec, "qsgd4", world_size=WORLD)
        params = [
            Parameter(l.name, np.zeros(l.shape, dtype=np.float32))
            for l in spec.layers
        ]
        step = SynchronousStep(
            TrainingConfig(scheme="qsgd4", world_size=WORLD, batch_size=8),
            params,
        )
        for layer, matrix_cost in zip(spec.layers, cost.matrices):
            codec = step.policy.codec_for(layer.size)
            assert (codec.name != "32bit") == matrix_cost.quantized
