"""Tests for TrainingConfig validation."""

import pytest

from repro.core import TrainingConfig


class TestValidation:
    def test_defaults_valid(self):
        config = TrainingConfig()
        assert config.scheme == "32bit"
        assert config.world_size == 1

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            TrainingConfig(scheme="qsgd3.5")

    def test_unknown_exchange_rejected(self):
        with pytest.raises(ValueError, match="unknown exchange"):
            TrainingConfig(exchange="carrier-pigeon")

    def test_unknown_exchange_error_lists_choices(self):
        from repro.comm import EXCHANGE_NAMES

        with pytest.raises(ValueError) as err:
            TrainingConfig(exchange="carrier-pigeon")
        for name in EXCHANGE_NAMES:
            assert name in str(err.value)

    def test_unknown_engine_error_lists_choices(self):
        from repro.runtime.engine import ENGINE_NAMES

        with pytest.raises(ValueError) as err:
            TrainingConfig(engine="quantum")
        for name in ENGINE_NAMES:
            assert name in str(err.value)

    def test_world_size_positive(self):
        with pytest.raises(ValueError):
            TrainingConfig(world_size=0)

    def test_batch_at_least_world(self):
        with pytest.raises(ValueError):
            TrainingConfig(world_size=8, batch_size=4)

    def test_label(self):
        config = TrainingConfig(
            scheme="qsgd4", exchange="nccl", world_size=8, batch_size=64
        )
        assert config.label == "qsgd4/nccl/8gpu"

    @pytest.mark.parametrize(
        "scheme", ["32bit", "1bit", "1bit*", "qsgd2", "qsgd4", "qsgd8",
                   "qsgd16"]
    )
    def test_all_paper_schemes_accepted(self, scheme):
        TrainingConfig(scheme=scheme)


class TestAggregationValidation:
    def test_frequency_must_be_positive(self):
        with pytest.raises(ValueError, match="aggregation_frequency"):
            TrainingConfig(aggregation_frequency=0)
        with pytest.raises(ValueError, match="aggregation_frequency"):
            TrainingConfig(aggregation_frequency=-3)

    def test_unknown_sync_mode_error_lists_choices(self):
        from repro.core.config import SYNC_MODE_NAMES

        with pytest.raises(ValueError) as err:
            TrainingConfig(sync_mode="gossip")
        for name in SYNC_MODE_NAMES:
            assert name in str(err.value)

    def test_local_sgd_rejects_momentum(self):
        with pytest.raises(ValueError, match="momentum"):
            TrainingConfig(sync_mode="local_sgd", aggregation_frequency=4)

    def test_local_sgd_with_zero_momentum_accepted(self):
        config = TrainingConfig(
            sync_mode="local_sgd", momentum=0.0, aggregation_frequency=4
        )
        assert config.sync_mode == "local_sgd"

    def test_defaults_are_classic_allreduce(self):
        config = TrainingConfig()
        assert config.aggregation_frequency == 1
        assert config.sync_mode == "allreduce"
