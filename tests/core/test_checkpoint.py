"""Deterministic checkpoint/resume: atomicity, round-trips, bit-identity.

The invariant under test: a run checkpointed at step N and resumed
produces *exactly* the history and weights of the uninterrupted run —
including the error-feedback schemes whose per-rank residuals are part
of the trajectory, and across an engine switch at the resume point.
"""

import json

import numpy as np
import pytest

from repro.core import (
    CheckpointPolicy,
    ParallelTrainer,
    TrainingConfig,
    latest_checkpoint,
    save_checkpoint,
)
from repro.core.checkpoint import TrainingCheckpoint, config_from_dict
from repro.data import make_image_dataset
from repro.models import tiny_alexnet


@pytest.fixture(scope="module")
def dataset():
    return make_image_dataset(
        num_classes=4,
        train_samples=48,
        test_samples=24,
        image_size=8,
        noise=0.8,
        seed=0,
    )


def make_config(**kw):
    defaults = dict(
        scheme="1bit",
        exchange="mpi",
        world_size=2,
        batch_size=16,
        lr=0.05,
        seed=3,
        engine="sequential",
    )
    defaults.update(kw)
    return TrainingConfig(**defaults)


def make_trainer(**kw):
    return ParallelTrainer(
        tiny_alexnet(num_classes=4, image_size=8, seed=1), make_config(**kw)
    )


def fit(trainer, dataset, epochs, **kw):
    return trainer.fit(
        dataset.train_x,
        dataset.train_y,
        dataset.test_x,
        dataset.test_y,
        epochs=epochs,
        **kw,
    )


def weights_of(trainer):
    return {
        p.name: p.data.copy()
        for p in trainer.engine.reference_worker.parameters
    }


def assert_same_run(history_a, weights_a, history_b, weights_b):
    assert history_a.digest() == history_b.digest()
    for name, data in weights_a.items():
        assert np.array_equal(data, weights_b[name]), (
            f"parameter {name} not bit-identical"
        )


class TestCheckpointFiles:
    def test_save_is_atomic_no_tmp_left_behind(self, dataset, tmp_path):
        with make_trainer() as trainer:
            fit(
                trainer,
                dataset,
                epochs=1,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-00000003.npz"]
        assert not any(n.endswith(".tmp") for n in names)

    def test_epoch_boundary_names_carry_step(self, dataset, tmp_path):
        # 48 samples / (batch 16) = 3 steps per epoch
        with make_trainer() as trainer:
            fit(
                trainer,
                dataset,
                epochs=2,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-00000003.npz", "ckpt-00000006.npz"]

    def test_pruning_keeps_most_recent(self, dataset, tmp_path):
        policy = CheckpointPolicy(directory=tmp_path, every_steps=1, keep=2)
        with make_trainer() as trainer:
            fit(trainer, dataset, epochs=2, checkpoint=policy)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-00000005.npz", "ckpt-00000006.npz"]

    def test_latest_checkpoint_picks_highest_step(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        for step in (3, 12, 7):
            (tmp_path / f"ckpt-{step:08d}.npz").write_bytes(b"x")
        (tmp_path / "notes.txt").write_bytes(b"x")
        found = latest_checkpoint(tmp_path)
        assert found is not None and found.name == "ckpt-00000012.npz"

    def test_latest_checkpoint_sorts_numerically(self, tmp_path):
        # regression: discovery must order by the parsed step, never
        # by filename — lexicographically "ckpt-100" < "ckpt-99", so a
        # byte-order pick would resume from step 99 and retrain (or
        # double-train) everything past it
        for name in ("ckpt-99.npz", "ckpt-100.npz", "ckpt-9.npz"):
            (tmp_path / name).write_bytes(b"x")
        assert max(tmp_path.iterdir()).name == "ckpt-99.npz"  # the trap
        found = latest_checkpoint(tmp_path)
        assert found is not None and found.name == "ckpt-100.npz"

    def test_checkpoint_steps_orders_mixed_padding(self, tmp_path):
        from repro.core import checkpoint_steps

        for name in ("ckpt-00000099.npz", "ckpt-100.npz", "ckpt-2.npz"):
            (tmp_path / name).write_bytes(b"x")
        steps = checkpoint_steps(tmp_path)
        assert [step for step, _ in steps] == [2, 99, 100]
        assert steps[-1][1].name == "ckpt-100.npz"
        assert checkpoint_steps(tmp_path / "missing") == []

    def test_load_rejects_future_format(self, dataset, tmp_path):
        with make_trainer() as trainer:
            fit(
                trainer,
                dataset,
                epochs=1,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        path = latest_checkpoint(tmp_path)
        ckpt = TrainingCheckpoint.load(path)
        ckpt.meta["version"] = 999
        bad = tmp_path / "bad.npz"
        ckpt.save(bad)
        with pytest.raises(ValueError, match="version"):
            TrainingCheckpoint.load(bad)

    def test_meta_is_plain_json(self, dataset, tmp_path):
        with make_trainer() as trainer:
            fit(
                trainer,
                dataset,
                epochs=1,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        ckpt = TrainingCheckpoint.load(latest_checkpoint(tmp_path))
        # round-trips through json without numpy leakage
        meta = json.loads(json.dumps(ckpt.meta))
        assert meta["step"] == 3
        assert config_from_dict(meta["config"]).scheme == "1bit"

    def test_policy_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every_steps"):
            CheckpointPolicy(directory=tmp_path, every_steps=0)
        with pytest.raises(ValueError, match="every_epochs"):
            CheckpointPolicy(directory=tmp_path, every_epochs=0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointPolicy(directory=tmp_path, keep=0)

    def test_identity_mismatch_rejected(self, dataset, tmp_path):
        with make_trainer() as trainer:
            fit(
                trainer,
                dataset,
                epochs=1,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        path = latest_checkpoint(tmp_path)
        with make_trainer(scheme="qsgd4") as other:
            with pytest.raises(ValueError, match="scheme"):
                fit(other, dataset, epochs=2, resume_from=path)


class TestBitIdenticalResume:
    GRID = [
        ("32bit", "mpi", "sequential"),
        ("1bit", "mpi", "sequential"),
        ("1bit", "mpi", "threaded"),
        ("1bit", "mpi", "process"),
        ("1bit*", "nccl", "sequential"),
        ("1bit*", "mpi", "threaded"),
        ("qsgd4", "nccl", "threaded"),
        ("qsgd4", "nccl", "process"),
        ("qsgd4", "alltoall", "sequential"),
        ("terngrad", "mpi", "sequential"),
        ("terngrad", "nccl", "threaded"),
        ("dettmers8", "mpi", "threaded"),
        ("dettmers8", "nccl", "process"),
        ("dettmers8c", "mpi", "sequential"),
    ]

    @pytest.mark.parametrize("scheme,exchange,engine", GRID)
    def test_resume_matches_uninterrupted(
        self, dataset, tmp_path, scheme, exchange, engine
    ):
        kw = dict(scheme=scheme, exchange=exchange, engine=engine)
        with make_trainer(**kw) as trainer:
            reference = fit(trainer, dataset, epochs=3)
            ref_weights = weights_of(trainer)
        with make_trainer(**kw) as trainer:
            fit(
                trainer,
                dataset,
                epochs=2,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        path = latest_checkpoint(tmp_path)
        with make_trainer(**kw) as trainer:
            resumed = fit(trainer, dataset, epochs=3, resume_from=path)
            res_weights = weights_of(trainer)
        assert_same_run(reference, ref_weights, resumed, res_weights)

    @pytest.mark.parametrize("engine", ["sequential", "process"])
    def test_adaptive_policy_resume_matches_uninterrupted(
        self, dataset, tmp_path, engine
    ):
        # the checkpoint carries the frozen per-layer assignment table;
        # the resumed run must route every gradient exactly as the
        # uninterrupted run did
        kw = dict(
            scheme="qsgd4", policy="adaptive", exchange="nccl",
            engine=engine,
        )
        with make_trainer(**kw) as trainer:
            reference = fit(trainer, dataset, epochs=3)
            ref_weights = weights_of(trainer)
        with make_trainer(**kw) as trainer:
            fit(
                trainer,
                dataset,
                epochs=2,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        path = latest_checkpoint(tmp_path)
        loaded = TrainingCheckpoint.load(path)
        assert loaded.meta.get("policy_assignments")
        with make_trainer(**kw) as trainer:
            resumed = fit(trainer, dataset, epochs=3, resume_from=path)
            res_weights = weights_of(trainer)
            carried = loaded.meta["policy_assignments"]
            assert trainer.step_engine.policy.assignments == carried
        assert_same_run(reference, ref_weights, resumed, res_weights)

    def test_policy_mismatch_rejected(self, dataset, tmp_path):
        # "policy" is an identity field: a static checkpoint must not
        # silently resume as adaptive (the trajectories diverge)
        with make_trainer(scheme="qsgd4", policy="static") as trainer:
            fit(
                trainer,
                dataset,
                epochs=1,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        path = latest_checkpoint(tmp_path)
        with make_trainer(scheme="qsgd4", policy="adaptive") as other:
            with pytest.raises(ValueError, match="policy"):
                fit(other, dataset, epochs=2, resume_from=path)

    def test_error_feedback_residuals_round_trip(self, dataset, tmp_path):
        # 1bit's per-rank residuals are trajectory state: dropping them
        # at the resume point would visibly change every later step
        kw = dict(scheme="1bit", exchange="mpi")
        with make_trainer(**kw) as trainer:
            fit(
                trainer,
                dataset,
                epochs=1,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
            live_residuals = [
                {k: v.copy() for k, v in rank_res.items()}
                for rank_res in trainer.step_engine._residuals
            ]
        ckpt = TrainingCheckpoint.load(latest_checkpoint(tmp_path))
        with make_trainer(**kw) as trainer:
            ckpt.restore(trainer)
            restored = trainer.step_engine._residuals
            assert len(restored) == len(live_residuals)
            for saved, loaded in zip(live_residuals, restored):
                assert saved.keys() == loaded.keys()
                nonzero = 0
                for name in saved:
                    assert np.array_equal(saved[name], loaded[name])
                    nonzero += int(np.any(saved[name]))
                assert nonzero > 0, "residuals were all zero — not a test"

    def test_mid_epoch_resume_is_bit_identical(self, dataset, tmp_path):
        kw = dict(scheme="1bit", exchange="mpi")
        with make_trainer(**kw) as trainer:
            reference = fit(trainer, dataset, epochs=2)
            ref_weights = weights_of(trainer)
        # checkpoint after every step; resume from step 4 = mid-epoch 1
        with make_trainer(**kw) as trainer:
            fit(
                trainer,
                dataset,
                epochs=2,
                checkpoint=CheckpointPolicy(
                    directory=tmp_path, every_steps=1, keep=None,
                    every_epochs=None,
                ),
            )
        path = tmp_path / "ckpt-00000004.npz"
        assert path.exists()
        ckpt = TrainingCheckpoint.load(path)
        assert ckpt.epoch == 1 and ckpt.batches_done == 1
        with make_trainer(**kw) as trainer:
            resumed = fit(trainer, dataset, epochs=2, resume_from=ckpt)
            res_weights = weights_of(trainer)
        assert_same_run(reference, ref_weights, resumed, res_weights)

    @pytest.mark.parametrize(
        "writer,resumer",
        [
            ("sequential", "threaded"),
            ("sequential", "process"),
            ("process", "sequential"),
            ("process", "threaded"),
        ],
    )
    def test_cross_engine_resume(self, dataset, tmp_path, writer, resumer):
        # the engine is not an identity field: a checkpoint written by
        # one engine resumed on another continues the same trajectory
        kw = dict(scheme="1bit*", exchange="mpi")
        with make_trainer(engine="sequential", **kw) as trainer:
            reference = fit(trainer, dataset, epochs=3)
            ref_weights = weights_of(trainer)
        with make_trainer(engine=writer, **kw) as trainer:
            fit(
                trainer,
                dataset,
                epochs=2,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        path = latest_checkpoint(tmp_path)
        with make_trainer(engine=resumer, **kw) as trainer:
            resumed = fit(trainer, dataset, epochs=3, resume_from=path)
            res_weights = weights_of(trainer)
        assert_same_run(reference, ref_weights, resumed, res_weights)

    @pytest.mark.parametrize(
        "writer,resumer",
        [("process", "sequential"), ("threaded", "process")],
    )
    def test_mid_epoch_resume_lands_on_different_engine(
        self, dataset, tmp_path, writer, resumer
    ):
        # mid-epoch state (shuffle position, partial epoch metrics) must
        # survive the engine switch, not just epoch boundaries
        kw = dict(scheme="1bit", exchange="mpi")
        with make_trainer(engine="sequential", **kw) as trainer:
            reference = fit(trainer, dataset, epochs=2)
            ref_weights = weights_of(trainer)
        with make_trainer(engine=writer, **kw) as trainer:
            fit(
                trainer,
                dataset,
                epochs=2,
                checkpoint=CheckpointPolicy(
                    directory=tmp_path, every_steps=1, keep=None,
                    every_epochs=None,
                ),
            )
        path = tmp_path / "ckpt-00000004.npz"
        ckpt = TrainingCheckpoint.load(path)
        assert ckpt.epoch == 1 and ckpt.batches_done == 1
        with make_trainer(engine=resumer, **kw) as trainer:
            resumed = fit(trainer, dataset, epochs=2, resume_from=ckpt)
            res_weights = weights_of(trainer)
        assert_same_run(reference, ref_weights, resumed, res_weights)

    def test_resumed_history_contains_prior_epochs(self, dataset, tmp_path):
        with make_trainer() as trainer:
            fit(
                trainer,
                dataset,
                epochs=2,
                checkpoint=CheckpointPolicy(directory=tmp_path),
            )
        with make_trainer() as trainer:
            resumed = fit(
                trainer,
                dataset,
                epochs=3,
                resume_from=latest_checkpoint(tmp_path),
            )
        assert [m.epoch for m in resumed.epochs] == [0, 1, 2]
