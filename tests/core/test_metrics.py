"""Unit tests for History metadata and digest semantics."""

from repro.core.metrics import EpochMetrics, History


def _epoch(i: int) -> EpochMetrics:
    return EpochMetrics(
        epoch=i,
        train_loss=1.0 / (i + 1),
        train_accuracy=0.5 + 0.01 * i,
        test_accuracy=0.4 + 0.01 * i,
        comm_bytes=1024 * (i + 1),
        wall_seconds=0.5,
    )


class TestKernelBackendMetadata:
    def test_digest_ignores_kernel_backend(self):
        # digest equality across backends is the cross-backend
        # bit-identity check; the provenance stamp must not break it
        a = History(label="run", kernel_backend="numpy")
        b = History(label="run", kernel_backend="cext")
        for i in range(3):
            a.append(_epoch(i))
            b.append(_epoch(i))
        assert a.digest() == b.digest()

    def test_to_dict_roundtrip_preserves_backend(self):
        history = History(label="run", kernel_backend="numba")
        history.append(_epoch(0))
        record = history.to_dict()
        assert record["kernel_backend"] == "numba"
        restored = History.from_dict(record)
        assert restored.kernel_backend == "numba"
        assert restored.digest() == history.digest()

    def test_to_dict_omits_backend_when_unset(self):
        # pre-existing serialized histories have no backend field;
        # unset stays unset so old and new records stay comparable
        history = History(label="run")
        history.append(_epoch(0))
        record = history.to_dict()
        assert "kernel_backend" not in record
        assert History.from_dict(record).kernel_backend is None
