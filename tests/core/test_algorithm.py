"""Tests for the synchronous aggregation step (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import SynchronousStep, TrainingConfig
from repro.nn.module import Parameter


def make_params():
    rng = np.random.default_rng(0)
    return [
        Parameter("big.W", rng.normal(size=(64, 64)).astype(np.float32)),
        Parameter("tiny.b", rng.normal(size=8).astype(np.float32)),
    ]


def make_grads(world_size, shape, seed=0):
    return [
        np.random.default_rng(seed + rank)
        .normal(size=shape)
        .astype(np.float32)
        for rank in range(world_size)
    ]


class TestAggregation:
    def test_fullprec_returns_mean(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(scheme="32bit", world_size=4, batch_size=4),
            params,
        )
        grads = make_grads(4, (64, 64))
        result = step.aggregate("big.W", grads)
        np.testing.assert_allclose(
            result, sum(grads) / 4, rtol=1e-5, atol=1e-5
        )

    def test_small_matrices_bypass_quantizer(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(scheme="qsgd4", world_size=2, batch_size=4),
            params,
        )
        grads = make_grads(2, (8,))
        result = step.aggregate("tiny.b", grads)
        # the bias is below the passthrough threshold: exact mean
        np.testing.assert_allclose(result, sum(grads) / 2, rtol=1e-5)

    def test_quantized_mean_close(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(scheme="qsgd8", world_size=4, batch_size=4),
            params,
        )
        grads = make_grads(4, (64, 64))
        result = step.aggregate("big.W", grads)
        exact = sum(grads) / 4
        assert np.abs(result - exact).mean() < 0.05

    def test_wrong_grad_count_rejected(self):
        step = SynchronousStep(
            TrainingConfig(world_size=4, batch_size=4), make_params()
        )
        with pytest.raises(ValueError):
            step.aggregate("big.W", make_grads(2, (64, 64)))


class TestErrorFeedbackState:
    def test_residuals_accumulate_per_rank(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(scheme="1bit*", world_size=2, batch_size=4),
            params,
        )
        grads = make_grads(2, (64, 64))
        step.aggregate("big.W", grads)
        residuals = step._residuals
        assert "big.W" in residuals[0]
        assert "big.W" in residuals[1]
        assert not np.array_equal(
            residuals[0]["big.W"], residuals[1]["big.W"]
        )

    def test_error_feedback_recovers_mean_over_time(self):
        # constant gradient + biased 1-bit codec: the running mean of
        # aggregates must converge to the true mean thanks to EF
        params = [Parameter("w", np.zeros((32, 32), dtype=np.float32))]
        step = SynchronousStep(
            TrainingConfig(scheme="1bit*", world_size=2, batch_size=4),
            params,
        )
        rng = np.random.default_rng(1)
        fixed = [
            rng.normal(size=(32, 32)).astype(np.float32) for _ in range(2)
        ]
        true_mean = sum(fixed) / 2
        total = np.zeros_like(true_mean)
        rounds = 60
        for _ in range(rounds):
            total += step.aggregate("w", fixed)
        error = np.abs(total / rounds - true_mean).mean()
        assert error < 0.1

    def test_no_residuals_for_unbiased_schemes(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(scheme="qsgd4", world_size=2, batch_size=4),
            params,
        )
        step.aggregate("big.W", make_grads(2, (64, 64)))
        assert not step._residuals[0]

    def test_reset_clears_everything(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(scheme="1bit*", world_size=2, batch_size=4),
            params,
        )
        step.aggregate("big.W", make_grads(2, (64, 64)))
        assert step.comm_bytes > 0
        step.reset()
        assert step.comm_bytes == 0
        assert not step._residuals[0]


class TestTrafficVisibility:
    def test_comm_bytes_grow_with_precision(self):
        byte_counts = {}
        for scheme in ("32bit", "qsgd8", "qsgd2"):
            params = make_params()
            step = SynchronousStep(
                TrainingConfig(scheme=scheme, world_size=4, batch_size=4),
                params,
            )
            step.aggregate("big.W", make_grads(4, (64, 64)))
            byte_counts[scheme] = step.comm_bytes
        assert byte_counts["32bit"] > byte_counts["qsgd8"]
        assert byte_counts["qsgd8"] > byte_counts["qsgd2"]
