"""Failure-injection tests: divergence and bad inputs surface loudly."""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.nn import Dense, Sequential


def dataset(seed=0, n=64):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 8)).astype(np.float32)
    y = rng.integers(0, 4, size=n).astype(np.int64)
    return x, y


class TestDivergenceDetection:
    def test_nonfinite_loss_raises(self):
        # corrupted inputs (NaN features, e.g. a broken reader) must
        # fail loudly instead of training on garbage
        x, y = dataset()
        x[3, 2] = np.nan
        config = TrainingConfig(scheme="32bit", batch_size=64, lr=0.01)
        rng = np.random.default_rng(0)
        model = Sequential(Dense(8, 4, "fc", rng))
        trainer = ParallelTrainer(model, config)
        with pytest.raises(FloatingPointError, match="diverged"):
            trainer.train_epoch(x, y)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_error_message_names_configuration(self):
        x, y = dataset()
        x[0, 0] = np.inf
        config = TrainingConfig(
            scheme="qsgd8", batch_size=64, lr=0.01, world_size=2
        )
        rng = np.random.default_rng(0)
        model = Sequential(Dense(8, 4, "fc", rng))
        trainer = ParallelTrainer(model, config)
        with pytest.raises(FloatingPointError, match="qsgd8/mpi/2gpu"):
            trainer.train_epoch(x, y)


class TestBadInputs:
    def test_empty_epoch_is_noop(self):
        x = np.zeros((0, 8), dtype=np.float32)
        y = np.zeros(0, dtype=np.int64)
        config = TrainingConfig(batch_size=4)
        rng = np.random.default_rng(0)
        trainer = ParallelTrainer(Sequential(Dense(8, 4, "fc", rng)),
                                  config)
        loss, acc = trainer.train_epoch(x, y)
        assert np.isnan(loss) or loss == 0.0 or acc == acc  # no crash

    def test_more_ranks_than_samples_in_batch(self):
        # a 4-rank step fed a 4-sample batch leaves every rank one
        # sample; fed fewer, empty shards contribute zero gradients
        x, y = dataset(n=6)
        config = TrainingConfig(
            scheme="32bit", world_size=4, batch_size=4, lr=0.01
        )
        rng = np.random.default_rng(0)
        trainer = ParallelTrainer(Sequential(Dense(8, 4, "fc", rng)),
                                  config)
        loss, acc = trainer.train_step(x[:3], y[:3])
        assert np.isfinite(loss)
