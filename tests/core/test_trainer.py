"""Integration tests for the data-parallel trainer."""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.data import make_image_dataset, make_sequence_dataset
from repro.models import speech_lstm, tiny_alexnet
from repro.nn import Dense, Sequential
from repro.quantization import kernels


@pytest.fixture(scope="module")
def image_dataset():
    return make_image_dataset(
        num_classes=4,
        train_samples=128,
        test_samples=64,
        image_size=8,
        noise=0.8,
        seed=0,
    )


def linear_model(seed=0, features=8, classes=4):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(features, classes, "fc", rng))


class TestTrainingImproves:
    def test_fullprec_learns(self, image_dataset):
        ds = image_dataset
        config = TrainingConfig(
            scheme="32bit", world_size=2, batch_size=16, lr=0.01, seed=0
        )
        trainer = ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        )
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y, epochs=5
        )
        assert history.final_test_accuracy > 0.5
        assert len(history.epochs) == 5
        # provenance stamp: which kernel backend produced this run
        assert history.kernel_backend == kernels.backend_name()
        assert history.to_dict()["kernel_backend"] == kernels.backend_name()

    @pytest.mark.parametrize("scheme", ["qsgd4", "1bit*"])
    def test_quantized_learns(self, image_dataset, scheme):
        ds = image_dataset
        config = TrainingConfig(
            scheme=scheme, world_size=2, batch_size=16, lr=0.01, seed=0
        )
        trainer = ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        )
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y, epochs=5
        )
        # biased schemes oscillate epoch-to-epoch; peak accuracy is
        # the stable signal that learning happened
        assert history.best_test_accuracy > 0.45

    def test_lstm_learns(self):
        ds = make_sequence_dataset(
            num_classes=3, train_samples=96, test_samples=48, seed=2
        )
        config = TrainingConfig(
            scheme="qsgd4", world_size=2, batch_size=16, lr=0.05, seed=0
        )
        trainer = ParallelTrainer(
            speech_lstm(num_classes=3, input_size=20, hidden_size=24,
                        layers=2, seed=1),
            config,
        )
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y, epochs=6
        )
        assert history.final_test_accuracy > 0.5


class TestSynchronousSemantics:
    def test_k_workers_match_single_worker_at_full_precision(self):
        # with 32bit exchange and even shards, data-parallel training is
        # numerically the same computation as single-worker training
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=64).astype(np.int64)

        runs = {}
        for world_size in (1, 4):
            config = TrainingConfig(
                scheme="32bit",
                world_size=world_size,
                batch_size=16,
                lr=0.1,
                momentum=0.9,
                seed=0,
            )
            trainer = ParallelTrainer(linear_model(seed=5), config)
            trainer.fit(x, y, x, y, epochs=3)
            runs[world_size] = [
                p.data.copy() for p in trainer.parameters
            ]
        for a, b in zip(runs[1], runs[4]):
            np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_comm_bytes_recorded_per_epoch(self, image_dataset):
        ds = image_dataset
        config = TrainingConfig(
            scheme="qsgd4", world_size=2, batch_size=16, lr=0.01
        )
        trainer = ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        )
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y, epochs=2
        )
        assert history.epochs[0].comm_bytes > 0
        # per-epoch traffic is constant for a fixed dataset/batch size
        assert history.epochs[0].comm_bytes == history.epochs[1].comm_bytes

    def test_quantized_uses_fewer_bytes(self, image_dataset):
        ds = image_dataset
        byte_counts = {}
        for scheme in ("32bit", "qsgd4"):
            config = TrainingConfig(
                scheme=scheme, world_size=2, batch_size=16, lr=0.01
            )
            trainer = ParallelTrainer(
                tiny_alexnet(num_classes=4, image_size=8, seed=1), config
            )
            history = trainer.fit(
                ds.train_x, ds.train_y, ds.test_x, ds.test_y, epochs=1
            )
            byte_counts[scheme] = history.total_comm_bytes
        assert byte_counts["qsgd4"] < byte_counts["32bit"] / 5

    def test_single_gpu_no_comm(self, image_dataset):
        ds = image_dataset
        config = TrainingConfig(
            scheme="32bit", world_size=1, batch_size=16, lr=0.01
        )
        trainer = ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        )
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y, epochs=1
        )
        assert history.total_comm_bytes == 0


class TestEvaluate:
    def test_empty_test_set_returns_nan(self):
        # regression: used to crash with ZeroDivisionError
        config = TrainingConfig(batch_size=8)
        trainer = ParallelTrainer(linear_model(), config)
        x = np.zeros((0, 8), dtype=np.float32)
        y = np.zeros(0, dtype=np.int64)
        assert np.isnan(trainer.evaluate(x, y))


class TestShardWeighting:
    def test_unequal_shards_weighted_by_size(self):
        # regression: per-shard means were averaged unweighted, so a
        # 3-sample batch on 2 ranks (shards of 2 and 1) misreported
        # the global-minibatch loss
        from repro.nn.loss import softmax_cross_entropy

        rng = np.random.default_rng(3)
        x = rng.normal(size=(3, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=3).astype(np.int64)

        config = TrainingConfig(
            scheme="32bit", world_size=2, batch_size=2, lr=0.01
        )
        trainer = ParallelTrainer(linear_model(seed=7), config)
        expected, _ = softmax_cross_entropy(
            trainer.model.forward(x, training=True), y
        )
        loss, _acc = trainer.train_step(x, y)
        assert loss == pytest.approx(float(expected), rel=1e-6)

    def test_accuracy_weighted_by_size(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=5).astype(np.int64)
        config = TrainingConfig(
            scheme="32bit", world_size=2, batch_size=4, lr=0.01
        )
        trainer = ParallelTrainer(linear_model(seed=7), config)
        logits = trainer.model.forward(x, training=True)
        expected = float((logits.argmax(axis=1) == y).mean())
        _loss, acc = trainer.train_step(x, y)
        assert acc == pytest.approx(expected, rel=1e-6)


class TestLrSchedule:
    def test_lr_decay_applied(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=32).astype(np.int64)
        config = TrainingConfig(
            scheme="32bit", batch_size=16, lr=0.1, lr_decay=0.5
        )
        trainer = ParallelTrainer(linear_model(), config)
        trainer.fit(x, y, x, y, epochs=3)
        assert trainer.optimizer.lr == pytest.approx(0.1 * 0.25)


class TestHistory:
    def test_series_extraction(self, image_dataset):
        ds = image_dataset
        config = TrainingConfig(batch_size=32, lr=0.01)
        trainer = ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        )
        history = trainer.fit(
            ds.train_x, ds.train_y, ds.test_x, ds.test_y, epochs=2
        )
        assert len(history.series("test_accuracy")) == 2
        assert history.best_test_accuracy >= history.final_test_accuracy

    def test_duplicate_parameter_names_rejected(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Dense(4, 4, "same", rng), Dense(4, 4, "same", rng)
        )
        with pytest.raises(ValueError, match="unique"):
            ParallelTrainer(model, TrainingConfig(batch_size=8))
