"""Error-feedback residuals telescope across skipped rounds.

With ``aggregation_frequency=N`` a biased codec's residuals are only
updated at round flushes — the accumulated micro-step gradients carry
the in-between mass.  The conservation law under test: after any
number of complete rounds, everything the ranks produced is accounted
for exactly once,

    sum(flushed means) * world * N  +  sum(final residuals)
        == sum(all micro-step gradients),

up to float32 rounding.  If a skipped round dropped gradient mass, or
a flush double-counted the residual, the two sides drift apart by the
magnitude of the lost term — far beyond rounding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SynchronousStep, TrainingConfig
from repro.nn.module import Parameter

SHAPE = (48, 48)  # above the small-matrix passthrough threshold


def make_step(scheme, world_size, frequency, exchange="nccl"):
    rng = np.random.default_rng(0)
    params = [Parameter("W", rng.normal(size=SHAPE).astype(np.float32))]
    return SynchronousStep(
        TrainingConfig(
            scheme=scheme,
            exchange=exchange,
            world_size=world_size,
            batch_size=world_size,
            aggregation_frequency=frequency,
        ),
        params,
    )


@settings(max_examples=25, deadline=None)
@given(
    # only the biased schemes keep residuals; qsgd's quantization
    # error is unbiased noise that no state tracks
    scheme=st.sampled_from(["1bit", "1bit*"]),
    # mpi is excluded: its re-quantized broadcast keeps a *second*,
    # aggregator-side residual, so rank residuals alone don't close
    # the books.  nccl and alltoall sum the decoded uplinks exactly.
    exchange=st.sampled_from(["nccl", "alltoall"]),
    world_size=st.integers(min_value=2, max_value=4),
    frequency=st.integers(min_value=1, max_value=5),
    rounds=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_residuals_telescope_across_rounds(
    scheme, exchange, world_size, frequency, rounds, seed
):
    step = make_step(scheme, world_size, frequency, exchange)
    rng = np.random.default_rng(seed)
    total = np.zeros(SHAPE, dtype=np.float64)
    flushed = np.zeros(SHAPE, dtype=np.float64)
    for _ in range(rounds):
        for micro in range(frequency):
            grads = [
                rng.normal(size=SHAPE).astype(np.float32)
                for _ in range(world_size)
            ]
            for g in grads:
                total += g
            if step.sync_this_step:
                mean = step.aggregate("W", grads)
                flushed += np.asarray(mean, dtype=np.float64) * (
                    world_size * frequency
                )
            else:
                step.accumulate("W", grads)
            step.advance_round()
    residuals = np.zeros(SHAPE, dtype=np.float64)
    for rank in range(world_size):
        leftover = step._residuals[rank].get("W")
        if leftover is not None:
            residuals += leftover
    np.testing.assert_allclose(
        flushed + residuals,
        total,
        rtol=1e-4,
        atol=1e-2 * world_size * frequency * rounds,
    )


@settings(max_examples=15, deadline=None)
@given(
    frequency=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_residual_unchanged_on_skipped_micro_steps(frequency, seed):
    # residuals must only move at flushes: a skipped micro-step that
    # touched them would double-count its correction at the next flush
    step = make_step("1bit", 2, frequency)
    rng = np.random.default_rng(seed)

    def micro_grads():
        return [
            rng.normal(size=SHAPE).astype(np.float32) for _ in range(2)
        ]

    # one complete round seeds nonzero residuals and lands on a
    # round boundary (position 0)
    for _ in range(frequency - 1):
        step.accumulate("W", micro_grads())
        step.advance_round()
    step.aggregate("W", micro_grads())
    step.advance_round()
    assert step.round_position == 0
    before = [step._residuals[r]["W"].copy() for r in range(2)]
    for _ in range(frequency - 1):
        assert not step.sync_this_step
        step.accumulate("W", micro_grads())
        step.advance_round()
    for rank in range(2):
        assert np.array_equal(before[rank], step._residuals[rank]["W"])
