"""Tests for the ASCII chart renderer."""

import math

import pytest

from repro.viz import line_chart, stacked_bars


class TestLineChart:
    def test_renders_all_series_legends(self):
        chart = line_chart({"a": [0, 1, 2], "b": [2, 1, 0]})
        assert "o = a" in chart
        assert "x = b" in chart

    def test_extremes_hit_borders(self):
        chart = line_chart({"a": [0.0, 1.0]}, width=10, height=5)
        rows = [line for line in chart.splitlines() if line.startswith("|")]
        assert "o" in rows[0]  # max value on top row
        assert "o" in rows[-1]  # min value on bottom row

    def test_nan_points_skipped(self):
        chart = line_chart({"a": [math.nan, 1.0, 2.0]})
        grid = "".join(
            line for line in chart.splitlines() if line.startswith("|")
        )
        assert grid.count("o") == 2

    def test_constant_series_ok(self):
        chart = line_chart({"a": [1.0, 1.0, 1.0]})
        assert "o" in chart

    def test_y_label_shows_range(self):
        chart = line_chart({"a": [0.0, 2.0]}, y_label="acc")
        assert chart.splitlines()[0].startswith("acc")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": [math.nan]})


class TestStackedBars:
    def test_renders_segments(self):
        text = stacked_bars({"32bit": (3.0, 1.0), "qsgd4": (0.5, 1.0)})
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "#" in lines[0] and "." in lines[0]

    def test_totals_printed(self):
        text = stacked_bars({"x": (1.0, 2.0)})
        assert "3" in text

    def test_legend(self):
        text = stacked_bars({"x": (1.0, 2.0)}, labels=("io", "cpu"))
        assert "# = io" in text

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            stacked_bars({})
        with pytest.raises(ValueError):
            stacked_bars({"x": (0.0, 0.0)})
