"""Tests for QSGD stochastic quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization import Qsgd
from repro.quantization.base import Quantizer

FLOATS = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, width=32
)


class TestConstruction:
    @pytest.mark.parametrize("bits", [1, 0, 17, 32])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(ValueError):
            Qsgd(bits)

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            Qsgd(4, norm="l1")

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            Qsgd(4, variant="fancy")

    def test_invalid_bucket_rejected(self):
        with pytest.raises(ValueError):
            Qsgd(4, bucket_size=0)

    def test_paper_default_buckets(self):
        # Section 4.4: 2bit->128, 4/8bit->512, 16bit->8192
        assert Qsgd(2).bucket_size == 128
        assert Qsgd(4).bucket_size == 512
        assert Qsgd(8).bucket_size == 512
        assert Qsgd(16).bucket_size == 8192


class TestSignVariant:
    def test_two_bit_levels_are_ternary(self):
        # 2-bit sign variant has levels {-scale, 0, +scale}
        q = Qsgd(2, bucket_size=16, norm="inf")
        rng = np.random.default_rng(0)
        grad = rng.normal(size=64).astype(np.float32)
        decoded = q.roundtrip(grad, np.random.default_rng(1))
        scale = np.abs(grad.reshape(4, 16)).max(axis=1)
        for bucket in range(4):
            values = np.unique(decoded.reshape(4, 16)[bucket])
            allowed = np.array([0.0, scale[bucket], -scale[bucket]])
            distances = np.abs(values[:, None] - allowed[None, :])
            assert (distances.min(axis=1) < 1e-5).all()

    def test_unbiasedness(self):
        q = Qsgd(4, bucket_size=64)
        rng = np.random.default_rng(2)
        grad = rng.normal(size=256).astype(np.float32)
        total = np.zeros_like(grad, dtype=np.float64)
        n = 400
        for i in range(n):
            total += q.roundtrip(grad, np.random.default_rng(i))
        mean = total / n
        scale = np.abs(grad).max()
        # standard error of the estimate shrinks as 1/sqrt(n)
        assert np.abs(mean - grad).max() < 6 * scale / 15 / np.sqrt(n) * 15

    def test_inf_norm_never_expands_values(self):
        q = Qsgd(4, bucket_size=32, norm="inf")
        rng = np.random.default_rng(3)
        grad = rng.normal(size=128).astype(np.float32)
        decoded = q.roundtrip(grad, np.random.default_rng(4))
        assert np.abs(decoded).max() <= np.abs(grad).max() + 1e-6

    def test_higher_bits_lower_error(self):
        rng = np.random.default_rng(5)
        grad = rng.normal(size=4096).astype(np.float32)
        errors = []
        for bits in (2, 4, 8, 16):
            q = Qsgd(bits, bucket_size=512)
            decoded = q.roundtrip(grad, np.random.default_rng(6))
            errors.append(float(np.abs(decoded - grad).mean()))
        assert errors == sorted(errors, reverse=True)

    def test_smaller_buckets_lower_error_l2(self):
        # bucketing throttles the added variance (Section 5.1)
        rng = np.random.default_rng(7)
        grad = rng.normal(size=8192).astype(np.float32)
        errors = []
        for bucket in (8192, 512, 64):
            q = Qsgd(4, bucket_size=bucket, norm="l2")
            decoded = q.roundtrip(grad, np.random.default_rng(8))
            errors.append(float(np.square(decoded - grad).mean()))
        assert errors == sorted(errors, reverse=True)

    def test_inf_norm_less_variance_than_l2(self):
        # the paper found inf-norm scaling preserves more information
        rng = np.random.default_rng(9)
        grad = rng.normal(size=4096).astype(np.float32)
        err = {}
        for norm in ("inf", "l2"):
            q = Qsgd(4, bucket_size=512, norm=norm)
            decoded = q.roundtrip(grad, np.random.default_rng(10))
            err[norm] = float(np.square(decoded - grad).mean())
        assert err["inf"] < err["l2"]

    def test_zero_vector(self):
        q = Qsgd(4, bucket_size=16)
        grad = np.zeros(64, dtype=np.float32)
        np.testing.assert_array_equal(
            q.roundtrip(grad, np.random.default_rng(0)), 0.0
        )

    def test_zero_bucket_among_nonzero(self):
        q = Qsgd(4, bucket_size=4)
        grad = np.array([0, 0, 0, 0, 1, -2, 3, -4], dtype=np.float32)
        decoded = q.roundtrip(grad, np.random.default_rng(0))
        np.testing.assert_array_equal(decoded[:4], 0.0)


class TestGridVariant:
    def test_endpoints_are_levels(self):
        q = Qsgd(2, bucket_size=4, variant="grid", norm="inf")
        grad = np.array([3.0, -3.0, 1.0, -1.0], dtype=np.float32)
        decoded = q.roundtrip(grad, np.random.default_rng(0))
        # 2^2 - 1 = 3 intervals over [-3, 3]: levels -3, -1, 1, 3
        allowed = {-3.0, -1.0, 1.0, 3.0}
        assert set(np.round(decoded, 5)) <= allowed

    def test_grid_unbiased(self):
        q = Qsgd(3, bucket_size=32, variant="grid")
        rng = np.random.default_rng(11)
        grad = rng.normal(size=64).astype(np.float32)
        total = np.zeros_like(grad, dtype=np.float64)
        n = 500
        for i in range(n):
            total += q.roundtrip(grad, np.random.default_rng(100 + i))
        assert np.abs(total / n - grad).max() < 0.3

    def test_zero_vector_grid(self):
        q = Qsgd(4, bucket_size=16, variant="grid")
        grad = np.zeros(32, dtype=np.float32)
        np.testing.assert_array_equal(
            q.roundtrip(grad, np.random.default_rng(0)), 0.0
        )


class TestWireFormat:
    def test_bits_per_element_close_to_nominal(self):
        rng = np.random.default_rng(12)
        grad = rng.normal(size=(512, 512)).astype(np.float32)
        for bits in (2, 4, 8, 16):
            q = Qsgd(bits, bucket_size=512)
            bpe = q.encode(grad, rng).bits_per_element
            # nominal bits + one float32 scale per 512-element bucket
            assert bits <= bpe < bits + 0.2

    def test_analytic_nbytes_matches_encoding(self):
        for bits in (2, 4, 8, 16):
            q = Qsgd(bits)
            for shape in [(64, 300), (17,), (1, 1), (700,)]:
                assert q.encoded_nbytes(shape) == Quantizer.encoded_nbytes(
                    q, shape
                )

    def test_effective_bucket_caps_at_size(self):
        q = Qsgd(16, bucket_size=8192)
        message = q.encode(
            np.ones(100, dtype=np.float32), np.random.default_rng(0)
        )
        assert int(message.meta["bucket_size"]) == 100
        # a 100-element tensor must not pad out to 8192 codes
        assert message.bits_per_element < 21

    def test_deterministic_given_rng(self):
        q = Qsgd(4, bucket_size=64)
        grad = np.random.default_rng(13).normal(size=256).astype(np.float32)
        a = q.roundtrip(grad, np.random.default_rng(7))
        b = q.roundtrip(grad, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    @settings(max_examples=40, deadline=None)
    @given(
        grad=hnp.arrays(
            np.float32,
            st.integers(min_value=1, max_value=200),
            elements=FLOATS,
        ),
        bits=st.sampled_from([2, 4, 8]),
    )
    def test_roundtrip_bounded_property(self, grad, bits):
        q = Qsgd(bits, bucket_size=32, norm="inf")
        decoded = q.roundtrip(grad, np.random.default_rng(0))
        assert decoded.shape == grad.shape
        assert np.abs(decoded).max() <= np.abs(grad).max() + 1e-4
