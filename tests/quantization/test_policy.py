"""Tests for the small-matrix passthrough policy."""

import numpy as np
import pytest

from repro.quantization import (
    FullPrecision,
    Qsgd,
    QuantizationPolicy,
    passthrough_threshold,
)


class TestPassthroughThreshold:
    def test_empty_inventory(self):
        assert passthrough_threshold([]) == 0

    def test_single_matrix_never_skipped(self):
        assert passthrough_threshold([1000]) == 0

    def test_coverage_rule(self):
        # biases are 1% of params here; they may all be skipped
        sizes = [10, 10, 10, 10000, 10000]
        threshold = passthrough_threshold(sizes, coverage=0.99)
        quantized = sum(s for s in sizes if s >= threshold)
        assert quantized / sum(sizes) > 0.99

    def test_paper_rule_on_realistic_model(self):
        # "we always quantize more than 99% of all parameters"
        from repro.models.specs import get_network

        spec = get_network("ResNet50")
        sizes = [layer.size for layer in spec.layers]
        threshold = passthrough_threshold(sizes)
        quantized = sum(s for s in sizes if s >= threshold)
        assert quantized / sum(sizes) > 0.99
        # and it does actually skip the tiny matrices
        assert threshold > 1

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            passthrough_threshold([10], coverage=0.0)
        with pytest.raises(ValueError):
            passthrough_threshold([10], coverage=1.5)


class TestQuantizationPolicy:
    def test_routes_small_to_fullprec(self):
        policy = QuantizationPolicy(Qsgd(4), threshold=100)
        assert isinstance(policy.codec_for(99), FullPrecision)
        assert isinstance(policy.codec_for(100), Qsgd)

    def test_zero_threshold_quantizes_everything(self):
        policy = QuantizationPolicy(Qsgd(4), threshold=0)
        assert isinstance(policy.codec_for(1), Qsgd)

    def test_encode_decode_roundtrip_through_policy(self):
        policy = QuantizationPolicy(Qsgd(8, bucket_size=64), threshold=50)
        small = np.ones(10, dtype=np.float32)
        message = policy.encode(small, np.random.default_rng(0))
        assert message.scheme == "32bit"
        np.testing.assert_array_equal(policy.decode(message), small)

        rng = np.random.default_rng(1)
        large = rng.normal(size=256).astype(np.float32)
        message = policy.encode(large, np.random.default_rng(2))
        assert message.scheme == "qsgd8"
        decoded = policy.decode(message)
        assert np.abs(decoded - large).mean() < 0.1

    def test_for_model_constructor(self):
        sizes = [10, 10, 100000]
        policy = QuantizationPolicy.for_model(Qsgd(4), sizes)
        assert isinstance(policy.codec_for(10), FullPrecision)
        assert isinstance(policy.codec_for(100000), Qsgd)
