"""Bit-identity and registry tests for the kernel backend layer.

The compiled backends (numba, the C extension) exist purely for speed:
their contract is that every byte they produce — packed code words,
scale vectors, decoded tensors, fused accumulations — is identical to
the pure-numpy reference, including the stochastic-rounding decisions
(the uniform draws are made by the caller and passed in, so all
backends consume the same RNG stream).  These tests enforce that
contract over the full scheme×bits×bucket×shape grid against whichever
compiled backends load in this environment, exercise the uncompiled
``_impls`` loop kernels (the numba source) directly so the arithmetic
is validated even where numba is not installed, and pin the selection
rules of the registry itself.
"""

import numpy as np
import pytest

from repro.quantization import bitpack, kernels
from repro.quantization.base import EncodedTensor
from repro.quantization.kernels import _impls
from repro.quantization.kernels import _numpy as ref_backend
from repro.quantization.qsgd import Qsgd
from repro.quantization.workspace import EncodeWorkspace

BACKENDS = kernels.available_backends()
#: compiled backends to check against the reference; a skip marker
#: stands in so the grid reports as skipped (not silently absent) in
#: environments with neither numba nor a C compiler
COMPILED = [name for name in BACKENDS if name != "numpy"] or [
    pytest.param(
        "numpy", marks=pytest.mark.skip(reason="no compiled backend")
    )
]

SHAPES = [
    (1,),
    (7,),
    (128,),
    (513,),
    (1, 1),
    (3, 5),
    (37, 53),
    (64, 64),
    (2, 3, 4),
]


def _gradient(shape, seed, zero_run=False):
    grad = (
        np.random.default_rng(seed)
        .normal(scale=2.0, size=shape)
        .astype(np.float32)
    )
    if zero_run and grad.size:
        # zero a prefix long enough to produce all-zero buckets, the
        # branch where scale == 0 and every code must collapse to 0
        flat = grad.reshape(-1)
        flat[: max(1, flat.size // 2)] = 0.0
    return grad


def _bits_equal(a, b):
    """Bit-pattern equality for float32 arrays (catches signed zeros)."""
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint32), b.view(np.uint32)
    )


def _roundtrip(backend, variant, norm, bits, shape, bucket, zero_run):
    """Encode/decode/sum-decode one gradient under ``backend``."""
    with kernels.use_backend(backend):
        codec = Qsgd(bits, bucket_size=bucket, norm=norm, variant=variant)
        ws = EncodeWorkspace()
        grad = _gradient(shape, seed=17, zero_run=zero_run)

        message = codec.encode_into(grad, np.random.default_rng(23), ws)
        words = message.payload["words"].copy()
        scales = message.payload["scales"].copy()
        decoded = np.empty(shape, dtype=np.float32)
        codec.decode_into(message, decoded, workspace=ws)

        decoder = codec.sum_decoder(shape, ws)
        for seed in (1, 2, 3):
            decoder.add(
                codec.encode_into(grad, np.random.default_rng(seed), ws)
            )
        summed = decoder.result().copy()
    return words, scales, decoded, summed


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("variant", ["sign", "grid"])
@pytest.mark.parametrize("norm", ["inf", "l2"])
@pytest.mark.parametrize("bits", [2, 4, 8, 16])
@pytest.mark.parametrize("bucket", [None, 64])
@pytest.mark.parametrize("zero_run", [False, True])
def test_qsgd_grid_bit_identity(backend, variant, norm, bits, bucket, zero_run):
    """Words, scales, decode and sum-decode match numpy on every cell."""
    for shape in SHAPES:
        got = _roundtrip(backend, variant, norm, bits, shape, bucket, zero_run)
        want = _roundtrip("numpy", variant, norm, bits, shape, bucket, zero_run)
        assert np.array_equal(got[0], want[0]), (shape, "words")
        assert _bits_equal(got[1], want[1]), (shape, "scales")
        assert _bits_equal(got[2], want[2]), (shape, "decode")
        assert _bits_equal(got[3], want[3]), (shape, "sum-decode")


@pytest.mark.parametrize("backend", COMPILED)
def test_pack_unpack_bit_identity(backend):
    rng = np.random.default_rng(3)
    for width in range(1, 33):
        for count in (0, 1, 7, 31, 32, 33, 100):
            codes = rng.integers(
                0, 1 << width, size=count, dtype=np.uint64
            )
            with kernels.use_backend("numpy"):
                want_words = bitpack.pack(codes, width)
            with kernels.use_backend(backend):
                words = bitpack.pack(codes, width)
                recovered = bitpack.unpack(words, count, width)
            assert np.array_equal(words, want_words), (width, count)
            assert np.array_equal(recovered, codes), (width, count)


@pytest.mark.parametrize("backend", COMPILED)
def test_subnormal_scales_stay_bit_identical(backend):
    # a subnormal inf-norm makes the grid step underflow to zero while
    # the scale stays positive: the safe-step substitution must match
    # the numpy reference exactly
    grad = np.full((300,), 1e-41, dtype=np.float32)
    grad[::3] *= -1.0
    for variant in ("sign", "grid"):
        codec = Qsgd(4, variant=variant)
        with kernels.use_backend("numpy"):
            want = codec.decode(codec.encode(grad, np.random.default_rng(5)))
        with kernels.use_backend(backend):
            got = codec.decode(codec.encode(grad, np.random.default_rng(5)))
        assert _bits_equal(got, want), variant


@pytest.mark.parametrize("backend", COMPILED)
def test_fused_accumulate_matches_zeros_then_add(backend):
    # BucketSumDecoder's fused decode-accumulate path must equal the
    # materialize-then-add path bit for bit, first add included
    codec = Qsgd(4)
    shape = (48, 30)
    grad = _gradient(shape, seed=9)
    messages = [
        codec.encode(grad, np.random.default_rng(r)) for r in range(3)
    ]
    with kernels.use_backend(backend):
        acc = None
        for message in messages:
            acc = codec._decode_acc_into(message, acc)
        want = np.zeros_like(acc)
        for message in messages:
            want += codec._decode_values(message)
    assert _bits_equal(acc, want)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("variant", ["sign", "grid"])
# bucket sizes word-aligned for every slot (64), aligned only for the
# wider slots (24), and never aligned (7) — the last two force the
# fused kernels' composed fallback
@pytest.mark.parametrize("bucket_size", [64, 24, 7])
def test_fused_packed_kernels_match_composition(backend, variant, bucket_size):
    """quantize_*_packed / dequantize_*_packed == unfused compose, bitwise.

    The fused entry points exist so compiled backends can skip
    materializing the code plane; the reference defines them as the
    exact composition of quantize+pack and unpack+dequantize, so every
    backend's fused output must match its own composed output bit for
    bit (zero-scale buckets and the accumulate variant included).
    """
    bits = 4
    slot = bitpack.slot_width(bits)
    lanes = (6, bucket_size)
    buckets = np.random.default_rng(11).normal(size=lanes).astype(np.float32)
    buckets[2, :] = 0.0  # zero-scale bucket
    scales = np.abs(buckets).max(axis=1)
    rand = np.random.default_rng(12).random(lanes)
    n_words = bitpack.packed_words(lanes[0] * lanes[1], bits)

    with kernels.use_backend(backend) as kern:
        ws = EncodeWorkspace()
        codes = np.empty(lanes, dtype=np.uint32)
        if variant == "sign":
            kern.quantize_sign(buckets, scales, bits, rand, codes, ws)
        else:
            kern.quantize_grid(buckets, scales, bits, rand, codes, ws)
        want_words = np.empty(n_words, dtype=np.uint32)
        kern.pack(codes.reshape(-1), slot, want_words, ws)

        words = np.empty(n_words, dtype=np.uint32)
        if variant == "sign":
            kern.quantize_sign_packed(buckets, scales, bits, rand, words, ws)
        else:
            kern.quantize_grid_packed(buckets, scales, bits, rand, words, ws)
        assert np.array_equal(words, want_words)

        want = np.empty(lanes, dtype=np.float32)
        out = np.empty(lanes, dtype=np.float32)
        if variant == "sign":
            kern.dequantize_sign(codes, scales, bits, want, False, ws)
            kern.dequantize_sign_packed(words, scales, bits, out, False, ws)
        else:
            kern.dequantize_grid(codes, scales, bits, want, False, ws)
            kern.dequantize_grid_packed(words, scales, bits, out, False, ws)
        assert _bits_equal(out, want)

        want_acc = np.zeros(lanes, dtype=np.float32)
        acc = np.zeros(lanes, dtype=np.float32)
        for _ in range(2):
            if variant == "sign":
                kern.dequantize_sign(codes, scales, bits, want_acc, True, ws)
                kern.dequantize_sign_packed(
                    words, scales, bits, acc, True, ws
                )
            else:
                kern.dequantize_grid(codes, scales, bits, want_acc, True, ws)
                kern.dequantize_grid_packed(
                    words, scales, bits, acc, True, ws
                )
        assert _bits_equal(acc, want_acc)


def test_qsgd_decode_rejects_wrong_word_count():
    codec = Qsgd(4)
    message = codec.encode(
        _gradient((16, 16), seed=3), np.random.default_rng(0)
    )
    bad = EncodedTensor(
        scheme=message.scheme,
        shape=message.shape,
        payload={
            "scales": message.payload["scales"],
            "words": message.payload["words"][:-1],
        },
        meta=message.meta,
    )
    with pytest.raises(ValueError, match="packed words"):
        codec.decode(bad)


def test_bucket_sum_decoder_rejects_mismatched_geometry():
    codec = Qsgd(4)
    decoder = codec.sum_decoder((8, 8))
    rng = np.random.default_rng(0)
    decoder.add(codec.encode(_gradient((8, 8), seed=1), rng))
    other = codec.encode(_gradient((100,), seed=2), rng)
    with pytest.raises(ValueError, match="geometry"):
        decoder.add(other)


class TestImplsUncompiled:
    """The numba source (``_impls``) run as plain Python on tiny shapes.

    This validates the loop arithmetic against the numpy reference even
    in environments without numba, and keeps the module covered.
    """

    LANES = (5, 8)

    def _buckets(self, zero_row=True):
        buckets = (
            np.random.default_rng(2)
            .normal(size=self.LANES)
            .astype(np.float32)
        )
        if zero_row:
            buckets[1, :] = 0.0
        return buckets

    def test_transpose_roundtrip(self):
        grad = np.arange(12, dtype=np.float32).reshape(3, 4)
        flat = np.empty(12, dtype=np.float32)
        _impls.transpose_f32(grad, flat)
        np.testing.assert_array_equal(flat, grad.ravel(order="F"))
        back = np.empty_like(grad)
        _impls.untranspose_f32(flat, back)
        np.testing.assert_array_equal(back, grad)

    def test_absmax_rows(self):
        buckets = self._buckets()
        scales = np.empty(self.LANES[0], dtype=np.float32)
        _impls.absmax_rows(buckets, scales)
        np.testing.assert_array_equal(
            scales, np.abs(buckets).max(axis=1)
        )

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_quant_dequant_sign(self, bits):
        buckets = self._buckets()
        scales = np.abs(buckets).max(axis=1)
        rand = np.random.default_rng(4).random(self.LANES)
        codes = np.empty(self.LANES, dtype=np.uint32)
        _impls.quant_sign(buckets, scales, bits, rand, codes)

        ws = EncodeWorkspace()
        want_codes = np.empty(self.LANES, dtype=np.uint32)
        ref_backend.quantize_sign(
            buckets, scales, bits, rand, want_codes, ws
        )
        np.testing.assert_array_equal(codes, want_codes)

        out = np.empty(self.LANES, dtype=np.float32)
        _impls.dequant_sign(codes, scales, bits, out, False)
        want = np.empty(self.LANES, dtype=np.float32)
        ref_backend.dequantize_sign(codes, scales, bits, want, False, ws)
        assert _bits_equal(out, want)

        # accumulate-into-zeros differs from plain decode only where
        # IEEE addition does: 0 + (-0) is +0, matching the reference's
        # zeros-then-add path exactly
        acc = np.zeros(self.LANES, dtype=np.float32)
        _impls.dequant_sign(codes, scales, bits, acc, True)
        want_acc = np.zeros(self.LANES, dtype=np.float32)
        want_acc += want
        assert _bits_equal(acc, want_acc)

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_quant_dequant_grid(self, bits):
        buckets = self._buckets()
        scales = np.abs(buckets).max(axis=1)
        rand = np.random.default_rng(5).random(self.LANES)
        codes = np.empty(self.LANES, dtype=np.uint32)
        _impls.quant_grid(buckets, scales, bits, rand, codes)

        ws = EncodeWorkspace()
        want_codes = np.empty(self.LANES, dtype=np.uint32)
        ref_backend.quantize_grid(
            buckets, scales, bits, rand, want_codes, ws
        )
        np.testing.assert_array_equal(codes, want_codes)

        out = np.empty(self.LANES, dtype=np.float32)
        _impls.dequant_grid(codes, scales, bits, out, False)
        want = np.empty(self.LANES, dtype=np.float32)
        ref_backend.dequantize_grid(codes, scales, bits, want, False, ws)
        assert _bits_equal(out, want)

    @pytest.mark.parametrize("slot", [1, 2, 4, 8, 16, 32])
    def test_pack_unpack_words(self, slot):
        per_word = 32 // slot
        count = 3 * per_word + max(1, per_word - 1)  # ragged tail
        codes = np.random.default_rng(6).integers(
            0, 1 << slot, size=count, dtype=np.uint64
        ).astype(np.uint32)
        n_words = -(-count // per_word)
        words = np.zeros(n_words, dtype=np.uint32)
        _impls.pack_words(codes, count, slot, words, n_words)

        want = bitpack.pack(codes.astype(np.uint64), slot)
        np.testing.assert_array_equal(words, want)

        lanes = np.empty(n_words * per_word, dtype=np.uint32)
        _impls.unpack_words(words, n_words, slot, lanes)
        np.testing.assert_array_equal(lanes[:count], codes)


class TestRegistry:
    def test_numpy_backend_always_available(self):
        assert "numpy" in kernels.available_backends()

    def test_active_is_cached(self):
        assert kernels.active() is kernels.active()

    def test_use_backend_pins_and_restores(self):
        before = kernels.backend_name()
        with kernels.use_backend("numpy") as module:
            assert module.name == "numpy"
            assert kernels.backend_name() == "numpy"
        assert kernels.backend_name() == before

    def test_set_backend_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_backend("cuda")

    def test_forced_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "cuda")
        with pytest.raises(ValueError, match="unknown backend"):
            kernels._select()

    def test_forced_valid_backend_is_selected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert kernels._select().name == "numpy"

    def test_forced_unavailable_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numba")

        def unavailable(name):
            kernels._load_errors[name] = ImportError("not installed")
            return None

        monkeypatch.setattr(kernels, "_try_load", unavailable)
        with pytest.raises(RuntimeError, match="numba"):
            kernels._select()

    def test_set_backend_unavailable_raises(self, monkeypatch):
        def unavailable(name):
            kernels._load_errors[name] = ImportError("not installed")
            return None

        monkeypatch.setattr(kernels, "_try_load", unavailable)
        with pytest.raises(RuntimeError, match="not available"):
            kernels.set_backend("numba")

    def test_auto_selection_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)

        def numpy_only(name):
            if name == "numpy":
                return ref_backend
            kernels._load_errors[name] = ImportError("not installed")
            return None

        monkeypatch.setattr(kernels, "_try_load", numpy_only)
        assert kernels._select().name == "numpy"
