"""Workspace arena semantics and zero-allocation kernel bit-identity.

The refactor's core contract: every scheme's ``encode_into`` /
``decode_into`` out-parameter form produces *bit-identical* messages
and reconstructions to the allocating ``encode`` / ``decode`` pair, and
``decode_into(..., accumulate=True)`` equals decode-then-sum exactly.
These tests pin that contract for every scheme in the package.
"""

import numpy as np
import pytest

from repro.quantization import EncodeWorkspace, make_quantizer

ALL_SCHEMES = [
    "32bit",
    "qsgd2",
    "qsgd4",
    "qsgd8",
    "qsgd16",
    "1bit",
    "1bit*",
    "aqsgd4",
    "topk0.05",
]

SHAPES = [(64, 64), (7, 13), (33,), (3, 4, 5)]


def _grad(shape, seed=0):
    return (
        np.random.default_rng(seed).normal(size=shape).astype(np.float32)
    )


class TestArena:
    def test_same_key_returns_same_storage(self):
        ws = EncodeWorkspace()
        a = ws.array("t", (4, 5))
        b = ws.array("t", (4, 5))
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_distinct_shapes_do_not_collide(self):
        ws = EncodeWorkspace()
        a = ws.array("t", (4, 5))
        b = ws.array("t", (5, 4))
        assert a is not b
        assert len(ws) == 2

    def test_dtype_reuse_under_one_tag_raises(self):
        ws = EncodeWorkspace()
        ws.array("t", (8,), np.float32)
        with pytest.raises(ValueError, match="dtype"):
            ws.array("t", (8,), np.uint32)

    def test_clear_forgets_tag_dtypes(self):
        ws = EncodeWorkspace()
        ws.array("t", (8,), np.float32)
        ws.clear()
        buf = ws.array("t", (8,), np.uint32)
        assert buf.dtype == np.uint32

    def test_malformed_shapes_raise_clear_errors(self):
        ws = EncodeWorkspace()
        with pytest.raises(TypeError, match="integers"):
            ws.array("t", (4, 2.0))
        with pytest.raises(TypeError, match="integers"):
            ws.array("t", (True, 3))
        with pytest.raises(ValueError, match=">= 0"):
            ws.array("t", (4, -1))

    def test_numpy_integer_dims_are_normalized(self):
        ws = EncodeWorkspace()
        a = ws.array("t", (np.int64(4), np.int32(5)))
        b = ws.array("t", (4, 5))
        assert a is b

    def test_zeros_refills_every_request(self):
        ws = EncodeWorkspace()
        buf = ws.zeros("z", (3,))
        buf[...] = 7.0
        again = ws.zeros("z", (3,))
        assert again is buf
        np.testing.assert_array_equal(again, 0.0)

    def test_clear_drops_buffers_and_counters(self):
        ws = EncodeWorkspace()
        ws.array("t", (2,))
        ws.clear()
        assert len(ws) == 0
        assert ws.nbytes == 0
        assert ws.hits == 0 and ws.misses == 0

    def test_nbytes_accounts_for_held_buffers(self):
        ws = EncodeWorkspace()
        ws.array("t", (16,), np.float32)
        assert ws.nbytes == 64


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
@pytest.mark.parametrize("shape", SHAPES)
class TestKernelBitIdentity:
    def test_encode_into_matches_encode(self, scheme, shape):
        codec = make_quantizer(scheme)
        grad = _grad(shape, seed=3)
        ref = codec.encode(grad, np.random.default_rng(11))
        ws = EncodeWorkspace()
        msg = codec.encode_into(grad, np.random.default_rng(11), ws)
        assert msg.scheme == ref.scheme
        assert msg.shape == ref.shape
        assert msg.nbytes == ref.nbytes
        assert set(msg.payload) == set(ref.payload)
        for name, arr in ref.payload.items():
            np.testing.assert_array_equal(
                np.asarray(msg.payload[name]), np.asarray(arr)
            )

    def test_decode_into_matches_decode(self, scheme, shape):
        codec = make_quantizer(scheme)
        grad = _grad(shape, seed=4)
        message = codec.encode(grad, np.random.default_rng(12))
        ref = codec.decode(message)
        ws = EncodeWorkspace()
        out = np.empty(shape, dtype=np.float32)
        codec.decode_into(message, out, workspace=ws)
        np.testing.assert_array_equal(out, ref)

    def test_accumulate_equals_decode_then_sum(self, scheme, shape):
        codec = make_quantizer(scheme)
        grad = _grad(shape, seed=5)
        message = codec.encode(grad, np.random.default_rng(13))
        base = _grad(shape, seed=6)
        ref = base + codec.decode(message)
        ws = EncodeWorkspace()
        acc = base.copy()
        codec.decode_into(message, acc, accumulate=True, workspace=ws)
        np.testing.assert_array_equal(acc, ref)


@pytest.mark.parametrize("scheme", ["qsgd4", "aqsgd4", "32bit", "qsgd2"])
def test_sum_decoder_matches_rank_order_dense_sum(scheme):
    """sum_decoder (incl. the bucket-space override) == zeros-then-add."""
    codec = make_quantizer(scheme)
    shape = (48, 30)
    messages = [
        codec.encode(_grad(shape, seed=20 + r), np.random.default_rng(r))
        for r in range(4)
    ]
    ref = np.zeros(shape, dtype=np.float32)
    for message in messages:
        ref += codec.decode(message)
    for ws in (None, EncodeWorkspace()):
        decoder = codec.sum_decoder(shape, ws)
        for message in messages:
            decoder.add(message)
        np.testing.assert_array_equal(decoder.result(), ref)


def test_sum_decoder_empty_stream_is_zero():
    codec = make_quantizer("qsgd4")
    for ws in (None, EncodeWorkspace()):
        decoder = codec.sum_decoder((5, 7), ws)
        np.testing.assert_array_equal(
            decoder.result(), np.zeros((5, 7), np.float32)
        )


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_steady_state_performs_no_new_arena_allocations(scheme):
    """After one warmup round, the arena stops allocating entirely."""
    codec = make_quantizer(scheme)
    grad = _grad((40, 24), seed=9)
    ws = EncodeWorkspace()
    out = np.empty(grad.shape, dtype=np.float32)

    def round_trip(seed):
        message = codec.encode_into(grad, np.random.default_rng(seed), ws)
        codec.decode_into(message, out, workspace=ws)

    round_trip(0)
    misses = ws.misses
    for seed in range(1, 4):
        round_trip(seed)
    assert ws.misses == misses, "hot path allocated after warmup"
    assert ws.hits > 0
