"""Tests for the extension codecs: top-k sparsification and
non-uniform-level (adaptive) QSGD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    AdaptiveQsgd,
    ErrorFeedback,
    Qsgd,
    TopK,
    lloyd_max_levels,
    make_quantizer,
)
from repro.quantization.base import Quantizer


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        codec = TopK(density=0.375)  # 3 of 8 survive
        grad = np.array([0.1, -5.0, 0.2, 4.0, -0.3, 0.1, 0.05, 3.0],
                        dtype=np.float32)
        decoded = codec.roundtrip(grad)
        kept = np.nonzero(decoded)[0]
        np.testing.assert_array_equal(sorted(kept), [1, 3, 7])

    def test_kept_values_exact(self):
        codec = TopK(density=0.5)
        rng = np.random.default_rng(0)
        grad = rng.normal(size=64).astype(np.float32)
        decoded = codec.roundtrip(grad)
        kept = decoded != 0
        np.testing.assert_array_equal(decoded[kept], grad[kept])

    def test_density_one_is_lossless(self):
        codec = TopK(density=1.0)
        rng = np.random.default_rng(1)
        grad = rng.normal(size=(8, 8)).astype(np.float32)
        np.testing.assert_array_equal(codec.roundtrip(grad), grad)

    def test_at_least_one_survivor(self):
        codec = TopK(density=0.001)
        grad = np.array([1.0, 2.0], dtype=np.float32)
        assert np.count_nonzero(codec.roundtrip(grad)) == 1

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            TopK(0.0)
        with pytest.raises(ValueError):
            TopK(1.5)

    def test_wire_size_is_8_bytes_per_survivor(self):
        codec = TopK(density=0.1)
        grad = np.zeros(1000, dtype=np.float32)
        assert codec.encode(grad).nbytes == 20 + 8 * 100

    def test_analytic_nbytes_matches_encoding(self):
        codec = TopK(density=0.1)
        for shape in [(1000,), (13, 7), (3,)]:
            assert codec.encoded_nbytes(shape) == Quantizer.encoded_nbytes(
                codec, shape
            )

    def test_paper_relatedwork_argument(self):
        # >10% density (as the paper measured on Inception) costs more
        # bits per element than dense 4-bit QSGD
        dense = Qsgd(4, bucket_size=512)
        sparse = TopK(density=0.10)
        grad = np.random.default_rng(2).normal(size=100_000).astype(
            np.float32
        )
        rng = np.random.default_rng(3)
        assert (
            sparse.encode(grad, rng).bits_per_element
            > dense.encode(grad, rng).bits_per_element
        )

    def test_error_feedback_recovers_dropped_mass(self):
        codec = TopK(density=0.1)
        feedback = ErrorFeedback(codec)
        grad = np.linspace(0.1, 1.0, 50).astype(np.float32)
        total = np.zeros_like(grad)
        rounds = 200
        for _ in range(rounds):
            total += feedback.decode(feedback.encode("w", grad))
        # small coordinates are sent in cycles; the cycle amplitude
        # bounds the deviation of the running mean
        np.testing.assert_allclose(total / rounds, grad, atol=0.06)

    def test_registry_name(self):
        codec = make_quantizer("topk0.05")
        assert isinstance(codec, TopK)
        assert codec.density == 0.05


class TestLloydMaxLevels:
    def test_endpoints_pinned(self):
        levels = lloyd_max_levels(np.random.default_rng(0).random(500), 8)
        assert levels[0] == 0.0
        assert levels[-1] >= 1.0

    def test_levels_increasing(self):
        levels = lloyd_max_levels(np.random.default_rng(1).random(500), 8)
        assert (np.diff(levels) > 0).all()

    def test_adapts_to_skewed_distribution(self):
        # most mass near zero: interior levels must crowd low
        skewed = np.random.default_rng(2).random(2000) ** 4
        levels = lloyd_max_levels(skewed, 8)
        uniform = np.linspace(0, 1, 8)
        assert levels[1:-1].mean() < uniform[1:-1].mean()

    def test_empty_sample_gives_uniform(self):
        levels = lloyd_max_levels(np.zeros(0), 4)
        np.testing.assert_allclose(levels, np.linspace(0, 1, 4))

    def test_too_few_levels_rejected(self):
        with pytest.raises(ValueError):
            lloyd_max_levels(np.ones(4), 1)


class TestAdaptiveQsgd:
    def test_roundtrip_shape(self):
        codec = AdaptiveQsgd(4, bucket_size=64)
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(16, 16)).astype(np.float32)
        assert codec.roundtrip(grad, rng).shape == grad.shape

    def test_nearly_unbiased(self):
        codec = AdaptiveQsgd(4, bucket_size=128)
        rng = np.random.default_rng(1)
        grad = rng.normal(size=256).astype(np.float32)
        total = np.zeros_like(grad, dtype=np.float64)
        n = 300
        for i in range(n):
            total += codec.roundtrip(grad, np.random.default_rng(i))
        assert np.abs(total / n - grad).max() < 0.25

    def test_never_expands_values(self):
        codec = AdaptiveQsgd(4, bucket_size=32)
        rng = np.random.default_rng(2)
        grad = rng.normal(size=128).astype(np.float32)
        decoded = codec.roundtrip(grad, np.random.default_rng(3))
        assert np.abs(decoded).max() <= np.abs(grad).max() + 1e-5

    def test_zero_vector(self):
        codec = AdaptiveQsgd(4)
        grad = np.zeros(64, dtype=np.float32)
        np.testing.assert_array_equal(
            codec.roundtrip(grad, np.random.default_rng(0)), 0.0
        )

    def test_lower_error_than_uniform_on_heavytailed_gradients(self):
        # the point of adaptive levels: better fit to the magnitude
        # distribution (the paper found the gain insignificant for
        # training, which EXPERIMENTS.md revisits)
        rng = np.random.default_rng(4)
        grad = (rng.standard_t(df=2, size=16384)).astype(np.float32)
        uniform = Qsgd(4, bucket_size=16384, norm="inf")
        adaptive = AdaptiveQsgd(4, bucket_size=16384)
        err_uniform = np.square(
            uniform.roundtrip(grad, np.random.default_rng(5)) - grad
        ).mean()
        err_adaptive = np.square(
            adaptive.roundtrip(grad, np.random.default_rng(5)) - grad
        ).mean()
        assert err_adaptive < err_uniform

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            AdaptiveQsgd(1)
        with pytest.raises(ValueError):
            AdaptiveQsgd(16)

    def test_registry_name(self):
        codec = make_quantizer("aqsgd4", bucket_size=64)
        assert isinstance(codec, AdaptiveQsgd)
        assert codec.bucket_size == 64

    @settings(max_examples=20, deadline=None)
    @given(bits=st.sampled_from([2, 4, 8]), seed=st.integers(0, 100))
    def test_roundtrip_property(self, bits, seed):
        codec = AdaptiveQsgd(bits, bucket_size=32)
        rng = np.random.default_rng(seed)
        grad = rng.normal(size=96).astype(np.float32)
        decoded = codec.roundtrip(grad, np.random.default_rng(seed + 1))
        assert decoded.shape == grad.shape
        assert np.isfinite(decoded).all()


class TestUnknownSchemeError:
    def test_message_enumerates_builtin_schemes(self):
        from repro.quantization import SCHEME_NAMES

        with pytest.raises(ValueError) as excinfo:
            make_quantizer("float8")
        text = str(excinfo.value)
        assert "'float8'" in text
        for name in SCHEME_NAMES:
            assert name in text

    def test_message_shows_extension_syntax_examples(self):
        # the error must teach the parameterized spellings, with a
        # concrete example for each extension family
        with pytest.raises(ValueError) as excinfo:
            make_quantizer("nope")
        text = str(excinfo.value)
        assert "aqsgd4" in text
        assert "topk0.01" in text
        assert "terngrad2.5" in text

    def test_extension_examples_are_constructible(self):
        # every example the error advertises must actually parse
        from repro.quantization import EXTENSION_SCHEME_EXAMPLES

        for example in EXTENSION_SCHEME_EXAMPLES:
            spelling = example.split()[0].replace("<bits>", "4")
            spelling = spelling.replace("<density>", "0.01")
            spelling = spelling.replace("<clip>", "2.5")
            assert isinstance(make_quantizer(spelling), Quantizer)

    def test_malformed_extension_parameter_still_raises(self):
        with pytest.raises(ValueError):
            make_quantizer("terngradfoo")
        with pytest.raises(ValueError):
            make_quantizer("aqsgdx")
        with pytest.raises(ValueError):
            make_quantizer("topkzz")
