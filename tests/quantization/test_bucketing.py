"""Tests for bucket reshaping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization import bucket_count, from_buckets, to_buckets


class TestBucketCount:
    def test_exact_division(self):
        assert bucket_count(128, 64) == 2

    def test_remainder_rounds_up(self):
        assert bucket_count(129, 64) == 3

    def test_zero_elements(self):
        assert bucket_count(0, 64) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bucket_count(10, 0)
        with pytest.raises(ValueError):
            bucket_count(-1, 4)


class TestRoundtrip:
    def test_column_major_flattening(self):
        grad = np.array([[1, 3], [2, 4]], dtype=np.float32)
        buckets = to_buckets(grad, 4)
        # consecutive elements of the same column share a bucket
        np.testing.assert_array_equal(buckets, [[1, 2, 3, 4]])

    def test_padding_is_zero(self):
        grad = np.arange(5, dtype=np.float32)
        buckets = to_buckets(grad, 4)
        assert buckets.shape == (2, 4)
        np.testing.assert_array_equal(buckets[1], [4, 0, 0, 0])

    def test_padding_cropped_on_restore(self):
        grad = np.arange(5, dtype=np.float32)
        buckets = to_buckets(grad, 4)
        buckets[1, 1:] = 99.0  # corrupt padding: must not leak back
        np.testing.assert_array_equal(
            from_buckets(buckets, (5,)), np.arange(5, dtype=np.float32)
        )

    @settings(max_examples=50, deadline=None)
    @given(
        grad=hnp.arrays(
            np.float32,
            hnp.array_shapes(min_dims=1, max_dims=3, min_side=1,
                             max_side=12),
            elements=st.floats(
                min_value=-1e3, max_value=1e3, allow_nan=False, width=32
            ),
        ),
        bucket=st.integers(min_value=1, max_value=40),
    )
    def test_roundtrip_property(self, grad, bucket):
        np.testing.assert_array_equal(
            from_buckets(to_buckets(grad, bucket), grad.shape), grad
        )
