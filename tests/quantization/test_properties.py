"""Property-based tests for the quantized wire format.

The grid tests elsewhere pin exact values on chosen examples; these
tests assert the *laws* every scheme must satisfy on arbitrary inputs —
Alistarh et al.'s QSGD guarantees (bounded per-element error from the
level spacing, unbiasedness of the stochastic rounding), exact wire
sizes, the error-feedback telescoping identity, and the bit-packing
roundtrip — including the degenerate shapes (empty, scalar,
non-multiple-of-bucket lengths) real layers never produce but the
format must survive.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    SCHEME_NAMES,
    ErrorFeedback,
    bitpack,
    dynamic_tree_values,
    kernels,
    make_quantizer,
)

# Every law below must hold under every kernel backend — the compiled
# QSGD/bitpack kernels included (notably the error-feedback telescoping
# identity, which compounds per-step decode results across a stream).
# The whole module runs once per available backend; a REPRO_KERNELS pin
# (as in the numpy-only CI jobs) restricts the run to that backend.
_FORCED = os.environ.get("REPRO_KERNELS", "").strip().lower()
BACKENDS = (_FORCED,) if _FORCED else kernels.available_backends()


@pytest.fixture(scope="module", params=BACKENDS, autouse=True)
def kernel_backend(request):
    with kernels.use_backend(request.param):
        yield request.param

ALL_SCHEMES = st.sampled_from(SCHEME_NAMES)
QSGD_SCHEMES = st.sampled_from(["qsgd16", "qsgd8", "qsgd4", "qsgd2"])
EF_SCHEMES = st.sampled_from(["1bit", "1bit*", "qsgd4", "qsgd2", "terngrad"])
DETTMERS_SCHEMES = st.sampled_from(["dettmers8", "dettmers8c"])

# shapes that exercise the wire format's corners: empty tensors,
# scalars, 1-D lengths straddling every default bucket size, and
# small matrices/conv-like stacks (first dim = rows for 1bit)
SHAPES = st.one_of(
    st.just(()),
    st.just((0,)),
    st.just((0, 3)),
    st.just((4, 0)),
    st.tuples(st.integers(1, 600)),
    st.tuples(st.integers(1, 12), st.integers(1, 12)),
    st.tuples(
        st.integers(1, 5), st.integers(1, 4), st.integers(1, 4)
    ),
)


def gradient(shape, seed):
    return (
        np.random.default_rng(seed)
        .normal(scale=2.0, size=shape)
        .astype(np.float32)
    )


def qsgd_levels(scheme):
    bits = int(scheme.removeprefix("qsgd"))
    return 2 ** (bits - 1) - 1


class TestRoundtripErrorBounds:
    @settings(max_examples=60, deadline=None)
    @given(scheme=ALL_SCHEMES, shape=SHAPES, seed=st.integers(0, 99))
    def test_decode_preserves_shape_and_finiteness(
        self, scheme, shape, seed
    ):
        grad = gradient(shape, seed)
        quantizer = make_quantizer(scheme)
        decoded = quantizer.decode(
            quantizer.encode(grad, np.random.default_rng(seed + 1))
        )
        assert decoded.shape == grad.shape
        assert decoded.dtype == np.float32
        assert np.isfinite(decoded).all()

    @settings(max_examples=60, deadline=None)
    @given(shape=SHAPES, seed=st.integers(0, 99))
    def test_fullprec_roundtrip_is_exact(self, shape, seed):
        grad = gradient(shape, seed)
        quantizer = make_quantizer("32bit")
        decoded = quantizer.decode(quantizer.encode(grad))
        assert np.array_equal(decoded, grad)

    @settings(max_examples=60, deadline=None)
    @given(
        scheme=QSGD_SCHEMES, shape=SHAPES, seed=st.integers(0, 99)
    )
    def test_qsgd_error_bounded_by_level_spacing(
        self, scheme, shape, seed
    ):
        # stochastic rounding lands on one of the two levels bracketing
        # each entry, so per-element error < scale / levels; the scale
        # is a per-bucket max (inf norm), bounded by the global max
        grad = gradient(shape, seed)
        quantizer = make_quantizer(scheme)
        decoded = quantizer.decode(
            quantizer.encode(grad, np.random.default_rng(seed + 1))
        )
        if grad.size == 0:
            return
        spacing = np.abs(grad).max() / qsgd_levels(scheme)
        assert np.abs(decoded - grad).max() <= spacing * (1 + 1e-5)

    @settings(max_examples=60, deadline=None)
    @given(
        scheme=st.sampled_from(["1bit", "1bit*"]),
        shape=SHAPES,
        seed=st.integers(0, 99),
    )
    def test_onebit_error_bounded_by_value_range(
        self, scheme, shape, seed
    ):
        # each entry is replaced by the mean of its sign group, which
        # lies inside the group's value range
        grad = gradient(shape, seed)
        quantizer = make_quantizer(scheme)
        decoded = quantizer.decode(quantizer.encode(grad))
        if grad.size == 0:
            return
        spread = float(grad.max() - grad.min())
        assert np.abs(decoded - grad).max() <= spread * (1 + 1e-5)


class TestTernGrad:
    @settings(max_examples=60, deadline=None)
    @given(shape=SHAPES, seed=st.integers(0, 99))
    def test_error_bounded_by_bucket_max(self, shape, seed):
        # every entry lands on 0 or +/-s where s is its bucket's max
        # magnitude, so per-element error never exceeds s
        grad = gradient(shape, seed)
        quantizer = make_quantizer("terngrad")
        decoded = quantizer.decode(
            quantizer.encode(grad, np.random.default_rng(seed + 1))
        )
        if grad.size == 0:
            return
        absmax = float(np.abs(grad).max())
        assert np.abs(decoded - grad).max() <= absmax * (1 + 1e-5)

    @settings(max_examples=60, deadline=None)
    @given(shape=SHAPES, seed=st.integers(0, 99))
    def test_decoded_values_are_ternary(self, shape, seed):
        # the decoded tensor takes at most three distinct values per
        # bucket: {-s, 0, +s}
        grad = gradient(shape, seed)
        quantizer = make_quantizer("terngrad")
        decoded = quantizer.decode(
            quantizer.encode(grad, np.random.default_rng(seed + 1))
        )
        if grad.size == 0:
            return
        absmax = float(np.abs(grad).max())
        flat = np.abs(decoded.reshape(-1))
        on_scale = np.isclose(flat, absmax, rtol=1e-6)
        at_zero = flat == 0.0
        assert np.all(on_scale | at_zero)

    @settings(max_examples=8, deadline=None)
    @given(length=st.integers(1, 40), seed=st.integers(0, 20))
    def test_unbiased_without_clipping(self, length, seed):
        # E[decode(encode(g))] == g: each entry fires +/-s with
        # probability |g|/s, so the expectation is exactly g (TernGrad
        # Theorem 1; holds only with gradient clipping off)
        grad = gradient((length,), seed)
        quantizer = make_quantizer("terngrad")
        trials = 400
        total = np.zeros_like(grad, dtype=np.float64)
        for trial in range(trials):
            message = quantizer.encode(
                grad, np.random.default_rng(seed * trials + trial)
            )
            total += quantizer.decode(message)
        scale = float(np.abs(grad).max())
        # each decode is s*Bernoulli with variance <= s^2/4, so the
        # empirical mean's standard error is <= s / (2 sqrt(trials))
        tolerance = 6.0 * scale / (2.0 * np.sqrt(trials)) + 1e-7
        assert np.abs(total / trials - grad).max() <= tolerance

    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.one_of(
            st.tuples(st.integers(1, 300)),
            st.tuples(st.integers(1, 10), st.integers(1, 10)),
        ),
        seed=st.integers(0, 99),
        clip=st.floats(0.5, 5.0),
    )
    def test_clipped_variant_stays_bounded(self, shape, seed, clip):
        # clipping caps magnitudes at clip*sigma before scaling, so the
        # decoded values never exceed the clipped bucket max
        grad = gradient(shape, seed)
        quantizer = make_quantizer(f"terngrad{clip}")
        decoded = quantizer.decode(
            quantizer.encode(grad, np.random.default_rng(seed + 1))
        )
        sigma = float(np.std(grad.astype(np.float64)))
        bound = min(
            float(np.abs(grad).max()),
            clip * sigma if sigma > 0 else float(np.abs(grad).max()),
        )
        assert np.abs(decoded).max() <= bound * (1 + 1e-5)


class TestDettmersDynamicTree:
    @settings(max_examples=30, deadline=None)
    @given(bits=st.integers(3, 8))
    def test_code_to_value_mapping_is_strictly_monotone(self, bits):
        # the dynamic tree's defining property: magnitude codes map to
        # strictly increasing values, anchored at 0 and 1.0
        values = dynamic_tree_values(bits)
        assert values.size == 2 ** (bits - 1)
        assert values[0] == 0.0
        assert values[-1] == 1.0
        assert np.all(np.diff(values) > 0)
        assert np.all(values >= 0.0)

    @settings(max_examples=60, deadline=None)
    @given(
        scheme=DETTMERS_SCHEMES, shape=SHAPES, seed=st.integers(0, 99)
    )
    def test_error_bounded_by_widest_level_gap(self, scheme, shape, seed):
        # nearest-level rounding on the normalized magnitude: the error
        # is at most half the widest gap between adjacent tree levels,
        # times the (per-bucket, hence <= global) max-magnitude scale
        grad = gradient(shape, seed)
        quantizer = make_quantizer(scheme)
        decoded = quantizer.decode(
            quantizer.encode(grad, np.random.default_rng(seed + 1))
        )
        if grad.size == 0:
            return
        levels = dynamic_tree_values(8)
        widest = float(np.diff(levels).max())
        absmax = float(np.abs(grad).max())
        bound = absmax * (widest / 2.0) * (1 + 1e-5) + 1e-12
        assert np.abs(decoded - grad).max() <= bound

    @settings(max_examples=60, deadline=None)
    @given(
        scheme=DETTMERS_SCHEMES, shape=SHAPES, seed=st.integers(0, 99)
    )
    def test_roundtrip_preserves_sign(self, scheme, shape, seed):
        # the sign bit rides in the high code bit: decoded entries are
        # zero or carry the original sign
        grad = gradient(shape, seed)
        quantizer = make_quantizer(scheme)
        decoded = quantizer.decode(
            quantizer.encode(grad, np.random.default_rng(seed + 1))
        )
        nonzero = decoded != 0.0
        assert np.all(
            np.sign(decoded[nonzero]) == np.sign(grad[nonzero])
        )


class TestQsgdUnbiasedness:
    @settings(max_examples=8, deadline=None)
    @given(
        scheme=QSGD_SCHEMES,
        length=st.integers(1, 40),
        seed=st.integers(0, 20),
    )
    def test_decode_mean_converges_to_gradient(
        self, scheme, length, seed
    ):
        # E[decode(encode(g))] == g for QSGD's stochastic rounding; the
        # empirical mean over many independent rounding streams must
        # approach g at the 1/sqrt(n) rate
        grad = gradient((length,), seed)
        quantizer = make_quantizer(scheme)
        trials = 400
        total = np.zeros_like(grad, dtype=np.float64)
        for trial in range(trials):
            message = quantizer.encode(
                grad, np.random.default_rng(seed * trials + trial)
            )
            total += quantizer.decode(message)
        spacing = np.abs(grad).max() / qsgd_levels(scheme)
        # rounding error is uniform within one level gap, so the mean's
        # standard error is < spacing / sqrt(trials); 6 sigma of margin
        tolerance = 6.0 * spacing / np.sqrt(trials) + 1e-7
        assert np.abs(total / trials - grad).max() <= tolerance


class TestEncodedNbytes:
    @settings(max_examples=80, deadline=None)
    @given(scheme=ALL_SCHEMES, shape=SHAPES, seed=st.integers(0, 99))
    def test_predicted_size_matches_actual_message(
        self, scheme, shape, seed
    ):
        grad = gradient(shape, seed)
        quantizer = make_quantizer(scheme)
        message = quantizer.encode(
            grad, np.random.default_rng(seed + 1)
        )
        assert message.nbytes == quantizer.encoded_nbytes(shape)


class TestErrorFeedbackInvariant:
    @settings(max_examples=40, deadline=None)
    @given(
        scheme=EF_SCHEMES,
        shape=st.one_of(
            st.tuples(st.integers(1, 300)),
            st.tuples(st.integers(1, 10), st.integers(1, 10)),
        ),
        seed=st.integers(0, 99),
        rounds=st.integers(1, 4),
    )
    def test_transmitted_plus_residual_equals_original(
        self, scheme, shape, seed, rounds
    ):
        # each round: corrected = grad + residual_prev, and
        # residual_new = corrected - decoded, so
        # decoded + residual_new == grad + residual_prev (up to fp)
        feedback = ErrorFeedback(make_quantizer(scheme))
        rng = np.random.default_rng(seed + 1)
        for round_index in range(rounds):
            grad = gradient(shape, seed * 10 + round_index)
            residual_prev = feedback.residual("w", grad.shape).copy()
            decoded = feedback.decode(feedback.encode("w", grad, rng))
            residual_new = feedback.residual("w", grad.shape)
            np.testing.assert_allclose(
                decoded + residual_new,
                grad + residual_prev,
                rtol=1e-5,
                atol=1e-5,
            )

    @settings(max_examples=30, deadline=None)
    @given(
        scheme=EF_SCHEMES,
        length=st.integers(1, 200),
        seed=st.integers(0, 99),
    )
    def test_telescoping_identity_over_a_stream(
        self, scheme, length, seed
    ):
        # sum_t decoded_t == sum_t grad_t - residual_T exactly (up to
        # fp accumulation): the bias cancels over the stream
        feedback = ErrorFeedback(make_quantizer(scheme))
        rng = np.random.default_rng(seed + 1)
        grads = [gradient((length,), seed * 10 + t) for t in range(5)]
        decoded_sum = np.zeros(length, dtype=np.float64)
        for grad in grads:
            decoded_sum += feedback.decode(
                feedback.encode("w", grad, rng)
            )
        expected = np.sum(grads, axis=0, dtype=np.float64)
        expected -= feedback.residual("w", (length,))
        np.testing.assert_allclose(
            decoded_sum, expected, rtol=1e-4, atol=1e-4
        )


class TestBitpackRoundtrip:
    @settings(max_examples=120, deadline=None)
    @given(
        width=st.integers(1, 32),
        count=st.integers(0, 200),
        seed=st.integers(0, 99),
    )
    def test_pack_unpack_roundtrip(self, width, count, seed):
        codes = np.random.default_rng(seed).integers(
            0, 2**width, size=count, dtype=np.uint64
        )
        words = bitpack.pack(codes, width)
        assert words.size == bitpack.packed_words(count, width)
        recovered = bitpack.unpack(words, count, width)
        assert recovered.size == count
        assert np.array_equal(recovered, codes)

    @settings(max_examples=60, deadline=None)
    @given(width=st.integers(1, 32), count=st.integers(0, 200))
    def test_extreme_codes_survive(self, width, count):
        # all-zeros and all-max are the patterns sign/carry bugs eat
        top = (1 << width) - 1
        for value in (0, top):
            codes = np.full(count, value, dtype=np.uint64)
            recovered = bitpack.unpack(
                bitpack.pack(codes, width), count, width
            )
            assert np.array_equal(recovered, codes)
