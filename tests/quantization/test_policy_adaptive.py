"""Property tests for the adaptive bit-width policy.

The policy's contract is determinism: the assignment table is a pure
function of the ``(name, size, kind)`` inventory (plus optional
measured counters), survives a checkpoint round-trip verbatim, and is
re-derived identically when a degraded run rebuilds its step engine
from the same parameters.  These laws are what keep resumed and
rank-evicted runs bit-identical, so they are tested as properties over
arbitrary inventories rather than pinned examples.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    SCHEME_NAMES,
    AdaptiveBitWidthPolicy,
    FullPrecision,
    Qsgd,
    make_quantizer,
)
from repro.quantization.policy import (
    DEFAULT_KIND_SENSITIVITY,
    derive_assignments,
)

KINDS = st.sampled_from(sorted(DEFAULT_KIND_SENSITIVITY))

# an inventory: unique layer names with arbitrary sizes and kinds
INVENTORIES = st.dictionaries(
    keys=st.text(
        alphabet="abcdefghij._0123456789", min_size=1, max_size=12
    ),
    values=st.tuples(st.integers(0, 200_000), KINDS),
    min_size=1,
    max_size=12,
).map(
    lambda d: tuple(
        (name, size, kind) for name, (size, kind) in d.items()
    )
)


def profile_for(inventory, seed):
    """Synthetic measured counters shaped like Counters.layer_profile()."""
    rng = np.random.default_rng(seed)
    return {
        name: {
            "encode_calls": int(rng.integers(1, 50)),
            "encoded_bytes": int(rng.integers(0, 1 << 20)),
            "decode_calls": int(rng.integers(1, 50)),
            "wire_bytes": int(rng.integers(0, 1 << 24)),
        }
        for name, _, _ in inventory
    }


class TestDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(inventory=INVENTORIES, seed=st.integers(0, 99))
    def test_same_counters_same_assignment(self, inventory, seed):
        # identical inventories and identical measured counters must
        # produce identical tables, regardless of dict iteration order
        profiles = profile_for(inventory, seed)
        reversed_profiles = dict(reversed(list(profiles.items())))
        first = derive_assignments(inventory, 64, profiles=profiles)
        second = derive_assignments(
            tuple(reversed(inventory)), 64, profiles=reversed_profiles
        )
        assert first == second

    @settings(max_examples=60, deadline=None)
    @given(inventory=INVENTORIES)
    def test_assignments_are_valid_schemes(self, inventory):
        policy = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        for scheme in policy.assignments.values():
            assert scheme in SCHEME_NAMES
            make_quantizer(scheme)  # constructible

    @settings(max_examples=60, deadline=None)
    @given(inventory=INVENTORIES)
    def test_rebuilt_policy_rederives_identically(self, inventory):
        # a degraded run reconstructs its SynchronousStep (and thus its
        # policy) from the surviving ranks' identical parameter list;
        # the re-derived table must match the original exactly
        first = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        second = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        assert first.assignments == second.assignments
        assert first.threshold == second.threshold

    @settings(max_examples=40, deadline=None)
    @given(inventory=INVENTORIES, seed=st.integers(0, 99))
    def test_refit_is_pure_and_deterministic(self, inventory, seed):
        policy = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        before = dict(policy.assignments)
        profiles = profile_for(inventory, seed)
        refit_a = policy.refit(profiles)
        refit_b = policy.refit(
            dict(reversed(list(profiles.items())))
        )
        assert policy.assignments == before  # original untouched
        assert refit_a.assignments == refit_b.assignments


class TestCheckpointRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(inventory=INVENTORIES)
    def test_carried_assignments_restore_verbatim(self, inventory):
        # checkpoints persist {str: str}; restoring the carried table
        # into a freshly derived policy must reproduce the original
        # routing exactly (what checkpoint.restore() does)
        original = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        carried = {
            str(name): str(scheme)
            for name, scheme in original.assignments.items()
        }
        rebuilt = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        rebuilt.assignments = carried
        for name, size, _ in inventory:
            assert (
                rebuilt.codec_for_layer(name, size).name
                == original.codec_for_layer(name, size).name
            )

    @settings(max_examples=40, deadline=None)
    @given(inventory=INVENTORIES)
    def test_unassigned_stream_falls_back_to_size_routing(
        self, inventory
    ):
        policy = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        # a name outside the table routes by size, like the static policy
        small = policy.codec_for_layer("__unseen__", 0)
        if policy.threshold > 0:
            assert isinstance(small, FullPrecision)
        big = policy.codec_for_layer("__unseen__", 10**9)
        assert big is policy.quantizer


class TestAssignmentShape:
    def test_sensitive_kinds_keep_precision(self):
        inventory = [
            ("conv1.W", 50_000, "conv"),
            ("fc1.W", 50_000, "fc"),
            ("fc1.b", 10, "bias"),
        ]
        policy = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        assert policy.assignments["conv1.W"] == "qsgd8"
        assert policy.assignments["fc1.W"] == "terngrad"
        assert policy.assignments["fc1.b"] == "32bit"

    def test_small_fc_keeps_default_scheme(self):
        inventory = [("fc1.W", 64_000, "fc"), ("fc2.W", 2_000, "fc")]
        policy = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        assert policy.assignments["fc1.W"] == "terngrad"
        assert policy.assignments["fc2.W"] == "qsgd4"

    def test_refit_drops_precision_on_wire_hotspot(self):
        inventory = [
            ("conv1.W", 50_000, "conv"),
            ("fc1.W", 500_000, "fc"),
        ]
        policy = AdaptiveBitWidthPolicy.for_layers(
            make_quantizer("qsgd8"), inventory
        )
        profiles = {
            "conv1.W": {"wire_bytes": 10},
            "fc1.W": {"wire_bytes": 10_000_000},
        }
        refit = policy.refit(profiles)
        # the negligible sensitive layer is promoted to full precision
        assert refit.assignments["conv1.W"] == "32bit"
        # the hotspot was already ternary (fat fc) and saturates there
        assert refit.assignments["fc1.W"] == "terngrad"

    def test_decode_dispatches_on_message_scheme(self):
        inventory = [
            ("conv1.W", 50_000, "conv"),
            ("fc1.W", 50_000, "fc"),
        ]
        policy = AdaptiveBitWidthPolicy.for_layers(Qsgd(4), inventory)
        rng = np.random.default_rng(0)
        grad = rng.normal(size=256).astype(np.float32)
        for name in ("conv1.W", "fc1.W"):
            codec = policy.codec_for_layer(name, grad.size)
            message = codec.encode(grad, np.random.default_rng(1))
            assert message.scheme == policy.assignments[name]
            decoded = policy.decode(message)
            assert decoded.shape == grad.shape
            assert np.isfinite(decoded).all()
