"""Cross-codec property tests: invariants every quantizer must obey."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization import make_quantizer
from repro.quantization.base import Quantizer

ALL_SCHEMES = [
    "32bit", "1bit", "1bit*", "qsgd2", "qsgd4", "qsgd8", "qsgd16",
    "aqsgd4", "topk0.1",
]

FLOATS = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, width=32
)
SHAPES = hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=16)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestUniversalInvariants:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_shape_preserved(self, scheme, data):
        grad = data.draw(hnp.arrays(np.float32, SHAPES, elements=FLOATS))
        codec = make_quantizer(scheme)
        decoded = codec.roundtrip(grad, np.random.default_rng(0))
        assert decoded.shape == grad.shape
        assert decoded.dtype == np.float32

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_decoded_values_finite(self, scheme, data):
        grad = data.draw(hnp.arrays(np.float32, SHAPES, elements=FLOATS))
        codec = make_quantizer(scheme)
        decoded = codec.roundtrip(grad, np.random.default_rng(0))
        assert np.isfinite(decoded).all()

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_idempotent_on_own_image(self, scheme, data):
        # re-quantizing an already quantized tensor with the same rng
        # must keep the reconstruction within one quantization step
        if scheme.startswith("topk"):
            pytest.skip("top-k image depends on tie-breaking")
        grad = data.draw(
            hnp.arrays(np.float32, st.just((8, 8)), elements=FLOATS)
        )
        codec = make_quantizer(scheme)
        once = codec.roundtrip(grad, np.random.default_rng(1))
        twice = codec.roundtrip(once, np.random.default_rng(1))
        scale = max(float(np.abs(once).max()), 1e-6)
        assert np.abs(twice - once).max() <= scale + 1e-5

    def test_zero_maps_to_zero(self, scheme):
        codec = make_quantizer(scheme)
        grad = np.zeros((7, 5), dtype=np.float32)
        np.testing.assert_array_equal(
            codec.roundtrip(grad, np.random.default_rng(0)), 0.0
        )

    def test_analytic_size_matches_real_encoding(self, scheme):
        codec = make_quantizer(scheme)
        for shape in [(33,), (5, 17), (2, 3, 4)]:
            assert codec.encoded_nbytes(shape) == Quantizer.encoded_nbytes(
                codec, shape
            )

    def test_scale_equivariance(self, scheme):
        # quantizers normalize by a scale, so doubling the input
        # roughly doubles the reconstruction (exactly, for the
        # deterministic codecs)
        codec = make_quantizer(scheme)
        grad = np.random.default_rng(3).normal(size=128).astype(np.float32)
        a = codec.roundtrip(grad, np.random.default_rng(7))
        b = codec.roundtrip(2.0 * grad, np.random.default_rng(7))
        np.testing.assert_allclose(b, 2.0 * a, rtol=1e-4, atol=1e-4)

    def test_nbytes_positive_and_ordered(self, scheme):
        codec = make_quantizer(scheme)
        small = codec.encoded_nbytes((100,))
        large = codec.encoded_nbytes((10_000,))
        assert 0 < small < large


class TestCompressionOrdering:
    def test_wire_rate_ordering_on_large_tensors(self):
        grad = np.random.default_rng(0).normal(size=(512, 512)).astype(
            np.float32
        )
        rng = np.random.default_rng(1)
        rates = {
            scheme: make_quantizer(scheme)
            .encode(grad, rng)
            .bits_per_element
            for scheme in ("32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2",
                           "1bit*")
        }
        assert (
            rates["32bit"] > rates["qsgd16"] > rates["qsgd8"]
            > rates["qsgd4"] > rates["qsgd2"] > rates["1bit*"]
        )
