"""Tests for 1bitSGD (stock column-wise and reshaped variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantization import (
    ErrorFeedback,
    OneBitSgd,
    OneBitSgdReshaped,
)
from repro.quantization.base import Quantizer

FLOATS = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, width=32
)


class TestColumnWiseOneBit:
    def test_decoded_values_are_column_averages(self):
        q = OneBitSgd()
        grad = np.array(
            [[1.0, -4.0], [3.0, -2.0], [-2.0, 6.0]], dtype=np.float32
        )
        decoded = q.roundtrip(grad)
        # column 0: avg+ of {1, 3} = 2, avg- of {-2} = -2
        np.testing.assert_allclose(decoded[:, 0], [2.0, 2.0, -2.0])
        # column 1: avg+ of {6} = 6, avg- of {-4, -2} = -3
        np.testing.assert_allclose(decoded[:, 1], [-3.0, -3.0, 6.0])

    def test_sign_preserved(self):
        q = OneBitSgd()
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(37, 53)).astype(np.float32)
        decoded = q.roundtrip(grad)
        positive = grad >= 0
        assert (decoded[positive] >= 0).all()
        assert (decoded[~positive] <= 0).all()

    def test_column_mean_preserved(self):
        # avg+/avg- reconstruction preserves each column's mean exactly
        q = OneBitSgd()
        rng = np.random.default_rng(1)
        grad = rng.normal(size=(64, 9)).astype(np.float32)
        decoded = q.roundtrip(grad)
        np.testing.assert_allclose(
            decoded.mean(axis=0), grad.mean(axis=0), atol=1e-5
        )

    def test_all_positive_column(self):
        q = OneBitSgd()
        grad = np.ones((5, 1), dtype=np.float32)
        np.testing.assert_allclose(q.roundtrip(grad), 1.0)

    def test_all_negative_column(self):
        q = OneBitSgd()
        grad = -np.ones((5, 1), dtype=np.float32)
        np.testing.assert_allclose(q.roundtrip(grad), -1.0)

    def test_zero_vector(self):
        q = OneBitSgd()
        grad = np.zeros((8, 3), dtype=np.float32)
        np.testing.assert_allclose(q.roundtrip(grad), 0.0)

    def test_wire_size_matches_paper_formula(self):
        # two floats plus ceil(n/32) words per column (Section 3.2.1)
        q = OneBitSgd()
        grad = np.zeros((100, 7), dtype=np.float32)
        message = q.encode(grad)
        expected_payload = 7 * (8 + 4 * -(-100 // 32))
        assert message.nbytes == expected_payload + 20

    def test_tiny_columns_give_no_compression(self):
        # the Section 3.2.2 artefact: 3-row conv matrices quantize to
        # MORE bytes per element than full precision
        q = OneBitSgd()
        grad = np.zeros((3, 1000), dtype=np.float32)
        assert q.encode(grad).bits_per_element >= 32.0

    def test_higher_rank_tensors_flatten_to_columns(self):
        q = OneBitSgd()
        rng = np.random.default_rng(2)
        grad = rng.normal(size=(4, 3, 2, 2)).astype(np.float32)
        decoded = q.roundtrip(grad)
        assert decoded.shape == grad.shape
        matrix = grad.reshape(4, -1)
        expected = q.roundtrip(matrix).reshape(grad.shape)
        np.testing.assert_allclose(decoded, expected)

    @settings(max_examples=40, deadline=None)
    @given(
        grad=hnp.arrays(
            np.float32,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1,
                             max_side=24),
            elements=FLOATS,
        )
    )
    def test_decoded_takes_two_values_per_column(self, grad):
        decoded = OneBitSgd().roundtrip(grad)
        for col in range(grad.shape[1]):
            assert len(np.unique(decoded[:, col])) <= 2


class TestReshapedOneBit:
    def test_bucket_size_respected(self):
        q = OneBitSgdReshaped(bucket_size=64)
        grad = np.zeros((64, 10), dtype=np.float32)
        message = q.encode(grad)
        assert message.payload["avg_pos"].shape == (10,)

    def test_invalid_bucket_rejected(self):
        with pytest.raises(ValueError):
            OneBitSgdReshaped(bucket_size=0)

    def test_padding_does_not_bias_scales(self):
        # 100 elements in buckets of 64: the tail bucket is padded with
        # 28 zeros which must not dilute avg+/avg-
        q = OneBitSgdReshaped(bucket_size=64)
        grad = np.full(100, 2.0, dtype=np.float32)
        decoded = q.roundtrip(grad)
        np.testing.assert_allclose(decoded, 2.0)

    def test_compresses_conv_shaped_matrices(self):
        # same matrix where stock 1bitSGD gives >= 32 bits/element
        q = OneBitSgdReshaped(bucket_size=64)
        grad = np.zeros((3, 1000), dtype=np.float32)
        assert q.encode(grad).bits_per_element < 3.0

    def test_roundtrip_shape_preserved(self):
        q = OneBitSgdReshaped(bucket_size=32)
        rng = np.random.default_rng(3)
        grad = rng.normal(size=(7, 11, 3)).astype(np.float32)
        assert q.roundtrip(grad).shape == grad.shape

    def test_effective_bucket_caps_at_size(self):
        q = OneBitSgdReshaped(bucket_size=8192)
        assert q.effective_bucket(100) == 100
        message = q.encode(np.ones(100, dtype=np.float32))
        assert int(message.meta["bucket_size"]) == 100

    def test_analytic_nbytes_matches_encoding(self):
        q = OneBitSgdReshaped(bucket_size=64)
        for shape in [(3, 1000), (64,), (1, 1), (50, 50)]:
            assert q.encoded_nbytes(shape) == Quantizer.encoded_nbytes(
                q, shape
            )


class TestErrorFeedback:
    def test_requires_error_feedback_flags(self):
        assert OneBitSgd().requires_error_feedback
        assert OneBitSgdReshaped().requires_error_feedback

    @pytest.mark.parametrize(
        "quantizer", [OneBitSgd(), OneBitSgdReshaped(bucket_size=16)]
    )
    def test_telescoping_identity(self, quantizer):
        # sum of decoded == sum of gradients - final residual, exactly
        feedback = ErrorFeedback(quantizer)
        rng = np.random.default_rng(4)
        total_grad = np.zeros((16, 8), dtype=np.float64)
        total_decoded = np.zeros((16, 8), dtype=np.float64)
        for _ in range(30):
            grad = rng.normal(size=(16, 8)).astype(np.float32)
            message = feedback.encode("w", grad)
            total_grad += grad
            total_decoded += feedback.decode(message)
        residual = feedback.residual("w", (16, 8))
        np.testing.assert_allclose(
            total_grad - total_decoded, residual, atol=1e-3
        )

    def test_residual_bounded(self):
        # with error feedback the residual must not blow up
        feedback = ErrorFeedback(OneBitSgdReshaped(bucket_size=16))
        rng = np.random.default_rng(5)
        norms = []
        for _ in range(100):
            grad = rng.normal(size=128).astype(np.float32)
            feedback.encode("w", grad)
            norms.append(
                float(np.linalg.norm(feedback.residual("w", (128,))))
            )
        assert norms[-1] < 10 * np.sqrt(128)

    def test_reset_clears_state(self):
        feedback = ErrorFeedback(OneBitSgd())
        feedback.encode("w", np.ones((4, 4), dtype=np.float32))
        feedback.reset()
        np.testing.assert_array_equal(feedback.residual("w", (4, 4)), 0.0)

    def test_streams_are_independent(self):
        feedback = ErrorFeedback(OneBitSgdReshaped(bucket_size=4))
        feedback.encode("a", np.ones(8, dtype=np.float32) * 3)
        np.testing.assert_array_equal(feedback.residual("b", (8,)), 0.0)
