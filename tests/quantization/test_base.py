"""Tests for the quantizer interfaces, registry, and message format."""

import numpy as np
import pytest

from repro.quantization import (
    MESSAGE_HEADER_BYTES,
    SCHEME_NAMES,
    FullPrecision,
    make_quantizer,
)


class TestEncodedTensor:
    def test_nbytes_includes_header(self):
        q = FullPrecision()
        message = q.encode(np.zeros(10, dtype=np.float32))
        assert message.nbytes == MESSAGE_HEADER_BYTES + 40

    def test_bits_per_element(self):
        q = FullPrecision()
        message = q.encode(np.zeros(1000, dtype=np.float32))
        assert message.bits_per_element == pytest.approx(32.0, rel=0.01)

    def test_element_count_scalar(self):
        q = FullPrecision()
        message = q.encode(np.float32(1.0).reshape(()))
        assert message.element_count == 1


class TestFullPrecision:
    def test_exact_roundtrip(self):
        q = FullPrecision()
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(13, 7)).astype(np.float32)
        np.testing.assert_array_equal(q.roundtrip(grad), grad)

    def test_no_error_feedback_needed(self):
        assert not FullPrecision().requires_error_feedback


class TestRegistry:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_all_scheme_names_constructible(self, name):
        q = make_quantizer(name)
        assert q.name == name
        rng = np.random.default_rng(0)
        grad = rng.normal(size=(16, 8)).astype(np.float32)
        decoded = q.decode(q.encode(grad, np.random.default_rng(1)))
        assert decoded.shape == grad.shape

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown quantizer"):
            make_quantizer("qsgd-banana")

    def test_bucket_override(self):
        assert make_quantizer("qsgd4", bucket_size=99).bucket_size == 99
        assert make_quantizer("1bit*", bucket_size=17).bucket_size == 17

    def test_nominal_bits(self):
        assert make_quantizer("32bit").nominal_bits == 32
        assert make_quantizer("qsgd4").nominal_bits == 4
        assert make_quantizer("1bit").nominal_bits == 1

    def test_roundtrip_helper_equals_encode_decode(self):
        q = make_quantizer("qsgd8")
        grad = np.random.default_rng(2).normal(size=128).astype(np.float32)
        a = q.roundtrip(grad, np.random.default_rng(5))
        b = q.decode(q.encode(grad, np.random.default_rng(5)))
        np.testing.assert_array_equal(a, b)
