"""``encoded_nbytes`` must equal actual serialized size, everywhere.

The performance simulator and the exchanges' traffic accounting both
price messages through ``Quantizer.encoded_nbytes(shape)`` without
encoding anything.  If that prediction ever drifted from the bytes a
real ``encode`` puts on the wire, every reproduced cost figure would
silently drift with it — so this suite sweeps the full scheme x
width x bucket-size x shape grid and checks exact equality.
"""

import numpy as np
import pytest

from repro.quantization import make_quantizer
from repro.quantization.adaptive import AdaptiveQsgd
from repro.quantization.qsgd import Qsgd

SHAPES = [(1,), (5,), (31,), (16, 16), (7, 13), (128, 65), (3, 4, 5)]


def _check(codec, shape):
    grad = (
        np.random.default_rng(hash(shape) % 1000)
        .normal(size=shape)
        .astype(np.float32)
    )
    message = codec.encode(grad, np.random.default_rng(1))
    assert codec.encoded_nbytes(shape) == message.nbytes


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("bits", [2, 4, 8, 16])
@pytest.mark.parametrize("bucket_size", [None, 1, 16, 512, 8192])
def test_qsgd_grid(shape, bits, bucket_size):
    _check(Qsgd(bits, bucket_size=bucket_size), shape)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("variant", ["sign", "grid"])
@pytest.mark.parametrize("norm", ["inf", "l2"])
def test_qsgd_variants(shape, variant, norm):
    _check(Qsgd(4, variant=variant, norm=norm), shape)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("bits", [2, 4, 8])
@pytest.mark.parametrize("bucket_size", [16, 512])
def test_adaptive_qsgd_grid(shape, bits, bucket_size):
    _check(AdaptiveQsgd(bits, bucket_size=bucket_size), shape)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize(
    "scheme",
    [
        "32bit", "1bit", "1bit*", "topk0.05", "topk0.25",
        "terngrad", "terngrad2.5", "dettmers8", "dettmers8c",
    ],
)
def test_other_schemes(shape, scheme):
    _check(make_quantizer(scheme), shape)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("scheme", ["terngrad", "dettmers8", "dettmers8c"])
@pytest.mark.parametrize("bucket_size", [1, 16, 512, 8192])
def test_new_scheme_bucket_sizes(shape, scheme, bucket_size):
    _check(make_quantizer(scheme, bucket_size=bucket_size), shape)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("bucket_size", [1, 32, 2048])
def test_reshaped_onebit_bucket_sizes(shape, bucket_size):
    _check(make_quantizer("1bit*", bucket_size=bucket_size), shape)
