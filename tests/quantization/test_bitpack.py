"""Tests for the bit-packing wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import bitpack


class TestSlotWidth:
    def test_exact_divisors_map_to_themselves(self):
        for width in (1, 2, 4, 8, 16, 32):
            assert bitpack.slot_width(width) == width

    def test_non_divisors_round_up(self):
        assert bitpack.slot_width(3) == 4
        assert bitpack.slot_width(5) == 8
        assert bitpack.slot_width(9) == 16
        assert bitpack.slot_width(17) == 32

    @pytest.mark.parametrize("width", [0, -1, 33])
    def test_out_of_range_width_rejected(self, width):
        with pytest.raises(ValueError):
            bitpack.slot_width(width)


class TestPackedWords:
    def test_one_bit_codes_pack_32_per_word(self):
        assert bitpack.packed_words(32, 1) == 1
        assert bitpack.packed_words(33, 1) == 2
        assert bitpack.packed_words(0, 1) == 0

    def test_matches_paper_column_formula(self):
        # Section 3.2.1: n bits pack into ceil(n/32) unsigned ints
        for n in (1, 31, 32, 64, 100, 1000):
            assert bitpack.packed_words(n, 1) == -(-n // 32)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            bitpack.packed_words(-1, 8)


class TestPackUnpackRoundtrip:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 8, 12, 16, 32])
    def test_roundtrip_fixed(self, width):
        rng = np.random.default_rng(width)
        codes = rng.integers(0, 1 << width, size=1000, dtype=np.uint32)
        words = bitpack.pack(codes, width)
        assert words.dtype == np.uint32
        recovered = bitpack.unpack(words, codes.size, width)
        np.testing.assert_array_equal(recovered, codes)

    def test_empty_input(self):
        words = bitpack.pack(np.zeros(0, dtype=np.uint32), 4)
        assert words.size == 0
        assert bitpack.unpack(words, 0, 4).size == 0

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError):
            bitpack.pack(np.array([4], dtype=np.int64), 2)
        with pytest.raises(ValueError):
            bitpack.pack(np.array([-1], dtype=np.int64), 2)

    def test_2d_codes_rejected(self):
        with pytest.raises(ValueError):
            bitpack.pack(np.zeros((2, 2), dtype=np.uint32), 2)

    def test_word_count_mismatch_rejected(self):
        words = bitpack.pack(np.arange(10, dtype=np.uint32) % 4, 2)
        with pytest.raises(ValueError):
            bitpack.unpack(words, 100, 2)

    def test_known_layout_one_bit(self):
        # bit i of the word is code i (little-endian lanes)
        codes = np.zeros(32, dtype=np.uint32)
        codes[0] = 1
        codes[31] = 1
        word = bitpack.pack(codes, 1)[0]
        assert word == (1 | (1 << 31))

    def test_known_layout_eight_bit(self):
        codes = np.array([0x11, 0x22, 0x33, 0x44], dtype=np.uint32)
        word = bitpack.pack(codes, 8)[0]
        assert word == 0x44332211

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.sampled_from([1, 2, 4, 8, 16]),
        data=st.data(),
    )
    def test_roundtrip_property(self, width, data):
        count = data.draw(st.integers(min_value=0, max_value=300))
        codes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << width) - 1),
                min_size=count,
                max_size=count,
            )
        )
        codes = np.array(codes, dtype=np.uint32)
        words = bitpack.pack(codes, width)
        assert words.size == bitpack.packed_words(count, width)
        np.testing.assert_array_equal(
            bitpack.unpack(words, count, width), codes
        )


class TestIntoForms:
    """Out-parameter forms must match the allocating forms bit-for-bit."""

    @pytest.mark.parametrize("width", list(range(1, 33)))
    def test_roundtrip_every_width(self, width):
        # all widths 1..32, including non-divisors that round up to the
        # next power-of-two slot, and counts that leave a partial word
        from repro.quantization.workspace import EncodeWorkspace

        rng = np.random.default_rng(width)
        for count in (0, 1, 37, 1000):
            codes = rng.integers(
                0, 1 << width, size=count, dtype=np.uint64
            ).astype(np.uint32)
            ws = EncodeWorkspace()
            out = np.empty(bitpack.packed_words(count, width), np.uint32)
            words = bitpack.pack_into(codes, width, out, workspace=ws)
            np.testing.assert_array_equal(words, bitpack.pack(codes, width))
            back = bitpack.unpack_into(words, count, width, workspace=ws)
            np.testing.assert_array_equal(back, codes)

    def test_unpack_into_explicit_out(self):
        codes = np.arange(100, dtype=np.uint32) % 16
        words = bitpack.pack(codes, 4)
        out = np.empty(100, dtype=np.uint32)
        result = bitpack.unpack_into(words, 100, 4, out=out)
        assert result is out
        np.testing.assert_array_equal(out, codes)

    def test_pack_into_rejects_wrong_out(self):
        codes = np.zeros(10, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_into(
                codes, 2, np.empty(99, dtype=np.uint32)
            )
        with pytest.raises(ValueError):
            bitpack.pack_into(
                codes, 2,
                np.empty(bitpack.packed_words(10, 2), dtype=np.int64),
            )

    def test_pack_into_check_flag_validates_range(self):
        out = np.empty(1, dtype=np.uint32)
        with pytest.raises(ValueError):
            bitpack.pack_into(np.array([4], dtype=np.uint32), 2, out)
