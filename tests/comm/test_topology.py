"""Tests for range partitioning and ring topology."""

import pytest

from repro.comm import partition_ranges, ring_order, ring_successor


class TestPartitionRanges:
    def test_even_split(self):
        assert partition_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_early_ranks(self):
        ranges = partition_ranges(10, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [3, 3, 2, 2]

    def test_ranges_cover_everything_contiguously(self):
        for n in (0, 1, 5, 17, 100):
            for k in (1, 2, 3, 7, 16):
                ranges = partition_ranges(n, k)
                assert len(ranges) == k
                assert ranges[0][0] == 0
                assert ranges[-1][1] == n
                for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
                    assert a_hi == b_lo

    def test_fewer_elements_than_ranks(self):
        ranges = partition_ranges(2, 4)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes == [1, 1, 0, 0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_ranges(4, 0)
        with pytest.raises(ValueError):
            partition_ranges(-1, 2)


class TestRing:
    def test_ring_order(self):
        assert ring_order(4) == [0, 1, 2, 3]

    def test_successor_wraps(self):
        assert ring_successor(3, 4) == 0
        assert ring_successor(0, 4) == 1

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            ring_order(0)
