"""Tests for the collective gradient exchanges.

Covers the synchronous-SGD invariants: every rank sees the identical
aggregate; full precision sums exactly; quantized aggregates stay close
to the true sum; and the byte counts on the wire reflect compression.
"""

import numpy as np
import pytest

from repro.comm import (
    AllToAllBroadcast,
    MpiReduceBroadcast,
    NcclRingAllreduce,
    make_exchange,
)
from repro.quantization import FullPrecision, make_quantizer


def make_tensors(world_size, shape=(32, 100), seed=0):
    return [
        np.random.default_rng(seed + rank).normal(size=shape).astype(
            np.float32
        )
        for rank in range(world_size)
    ]


EXCHANGES = ["mpi", "nccl", "alltoall"]


class TestExactSum:
    @pytest.mark.parametrize("name", EXCHANGES)
    @pytest.mark.parametrize("world_size", [1, 2, 3, 4, 8])
    def test_fullprec_sums_exactly(self, name, world_size):
        tensors = make_tensors(world_size)
        exchange = make_exchange(name, world_size)
        result = exchange.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        np.testing.assert_allclose(
            result.aggregate, sum(tensors), rtol=1e-5, atol=1e-4
        )

    @pytest.mark.parametrize("name", EXCHANGES)
    def test_decoded_local_is_input_for_fullprec(self, name):
        tensors = make_tensors(3)
        exchange = make_exchange(name, 3)
        result = exchange.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        for rank in range(3):
            np.testing.assert_array_equal(
                result.decoded_local[rank], tensors[rank]
            )


class TestQuantizedAggregation:
    @pytest.mark.parametrize("name", EXCHANGES)
    @pytest.mark.parametrize("scheme", ["qsgd8", "qsgd4", "1bit*"])
    def test_aggregate_close_to_true_sum(self, name, scheme):
        world_size = 4
        tensors = make_tensors(world_size)
        exchange = make_exchange(name, world_size)
        codec = make_quantizer(scheme)
        result = exchange.exchange(
            "w", tensors, codec, np.random.default_rng(0)
        )
        exact = sum(tensors)
        scale = np.abs(exact).max()
        # quantization error per rank is bounded by the bucket scale
        assert np.abs(result.aggregate - exact).mean() < scale

    @pytest.mark.parametrize("name", EXCHANGES)
    def test_aggregate_identical_across_all_ranks_by_construction(
        self, name
    ):
        # the API returns one aggregate; verify determinism across two
        # identical calls so replicas applying it stay in sync
        tensors = make_tensors(4)
        codec = make_quantizer("qsgd4")
        a = make_exchange(name, 4).exchange(
            "w", tensors, codec, np.random.default_rng(3)
        )
        b = make_exchange(name, 4).exchange(
            "w", tensors, codec, np.random.default_rng(3)
        )
        np.testing.assert_array_equal(a.aggregate, b.aggregate)

    def test_mpi_equals_alltoall_when_buckets_align(self):
        # with column count divisible by K and bucket dividing rows,
        # the range-partitioned pipeline reproduces Algorithm 1 exactly
        tensors = make_tensors(4, shape=(64, 64))
        codec = make_quantizer("1bit*", bucket_size=64)
        mpi = MpiReduceBroadcast(4, requantize_broadcast=False)
        a2a = AllToAllBroadcast(4)
        rng = np.random.default_rng(0)
        result_mpi = mpi.exchange("w", tensors, codec, rng)
        result_a2a = a2a.exchange("w", tensors, codec, rng)
        np.testing.assert_allclose(
            result_mpi.aggregate, result_a2a.aggregate, atol=1e-5
        )


class TestByteAccounting:
    def test_mpi_traffic_formula_fullprec(self):
        # reduce + broadcast each move (K-1) x payload in total
        world_size = 4
        tensors = make_tensors(world_size, shape=(64, 64))
        exchange = MpiReduceBroadcast(world_size)
        exchange.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        payload = 64 * 64 * 4
        total = exchange.traffic.total_bytes
        expected = 2 * (world_size - 1) * payload
        # headers add a small constant per message
        assert expected <= total <= expected * 1.05

    def test_quantization_reduces_mpi_traffic(self):
        tensors = make_tensors(4, shape=(64, 512))
        full = MpiReduceBroadcast(4)
        full.exchange("w", tensors, FullPrecision(), np.random.default_rng(0))
        quant = MpiReduceBroadcast(4)
        quant.exchange(
            "w", tensors, make_quantizer("qsgd4"), np.random.default_rng(0)
        )
        ratio = full.traffic.total_bytes / quant.traffic.total_bytes
        assert 6 < ratio < 9  # ~32/4 minus scale/header overhead

    def test_nccl_ring_traffic_is_bandwidth_optimal(self):
        world_size = 4
        # large tensor so slice padding is negligible
        tensors = make_tensors(world_size, shape=(512, 512))
        exchange = NcclRingAllreduce(world_size)
        exchange.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        payload = 512 * 512 * 4
        per_rank = exchange.traffic.sent_by(0)
        optimal = 2 * (world_size - 1) / world_size * payload
        assert optimal <= per_rank <= optimal * 1.1

    def test_nccl_only_uses_ring_links(self):
        world_size = 4
        tensors = make_tensors(world_size)
        exchange = NcclRingAllreduce(world_size)
        exchange.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        for record in exchange.traffic.records:
            assert record.dst == (record.src + 1) % world_size

    def test_alltoall_moves_k_times_k_minus_one_messages(self):
        world_size = 3
        tensors = make_tensors(world_size, shape=(8, 8))
        exchange = AllToAllBroadcast(world_size)
        exchange.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        assert len(exchange.traffic.records) == world_size * (world_size - 1)

    def test_single_rank_no_traffic(self):
        for name in EXCHANGES:
            exchange = make_exchange(name, 1)
            result = exchange.exchange(
                "w",
                make_tensors(1),
                make_quantizer("qsgd4"),
                np.random.default_rng(0),
            )
            assert exchange.traffic.total_bytes == 0
            assert result.aggregate.shape == (32, 100)


class TestMpiRequantization:
    def test_requantize_broadcast_uses_aggregator_feedback(self):
        # with a biased codec, repeated exchanges must not accumulate
        # systematic error thanks to the aggregator-side residual
        world_size = 2
        codec = make_quantizer("1bit*", bucket_size=16)
        exchange = MpiReduceBroadcast(world_size, requantize_broadcast=True)
        rng = np.random.default_rng(0)
        grad = np.ones((16, 16), dtype=np.float32)
        total = np.zeros_like(grad)
        rounds = 50
        for _ in range(rounds):
            result = exchange.exchange("w", [grad, grad], codec, rng)
            total += result.aggregate
        # each round's true sum is 2.0 everywhere
        np.testing.assert_allclose(
            total / rounds, 2.0 * np.ones_like(grad), atol=0.2
        )

    def test_requantize_off_broadcasts_exact_aggregate(self):
        world_size = 2
        codec = make_quantizer("1bit*", bucket_size=16)
        tensors = make_tensors(world_size, shape=(16, 16))
        exchange = MpiReduceBroadcast(world_size, requantize_broadcast=False)
        result = exchange.exchange(
            "w", tensors, codec, np.random.default_rng(0)
        )
        expected = sum(
            codec.roundtrip(t, np.random.default_rng(9)) for t in tensors
        )
        # aggregate equals the sum of per-rank quantized gradients
        assert result.aggregate.shape == expected.shape

    def test_reset_clears_aggregator_state(self):
        exchange = MpiReduceBroadcast(2)
        codec = make_quantizer("1bit*", bucket_size=16)
        tensors = make_tensors(2, shape=(16, 16))
        exchange.exchange("w", tensors, codec, np.random.default_rng(0))
        exchange.reset()
        assert exchange.traffic.total_bytes == 0
        assert not exchange._broadcast_feedback


class TestValidation:
    def test_wrong_rank_count_rejected(self):
        exchange = make_exchange("mpi", 4)
        with pytest.raises(ValueError, match="expected 4"):
            exchange.exchange(
                "w", make_tensors(3), FullPrecision(),
                np.random.default_rng(0),
            )

    def test_mismatched_shapes_rejected(self):
        exchange = make_exchange("nccl", 2)
        tensors = [
            np.zeros((2, 2), dtype=np.float32),
            np.zeros((3, 2), dtype=np.float32),
        ]
        with pytest.raises(ValueError, match="shape"):
            exchange.exchange(
                "w", tensors, FullPrecision(), np.random.default_rng(0)
            )

    def test_unknown_exchange_rejected(self):
        with pytest.raises(ValueError, match="unknown exchange"):
            make_exchange("infiniband", 2)

    def test_invalid_world_size_rejected(self):
        with pytest.raises(ValueError):
            make_exchange("mpi", 0)
