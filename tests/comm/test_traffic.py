"""Tests for link-traffic accounting."""

import pytest

from repro.comm import LinkTraffic


class TestLinkTraffic:
    def test_empty(self):
        traffic = LinkTraffic()
        assert traffic.total_bytes == 0
        assert traffic.max_link_bytes == 0

    def test_record_accumulates(self):
        traffic = LinkTraffic()
        traffic.record(0, 1, 100)
        traffic.record(0, 1, 50)
        traffic.record(1, 0, 25)
        assert traffic.link_bytes(0, 1) == 150
        assert traffic.link_bytes(1, 0) == 25
        assert traffic.total_bytes == 175
        assert traffic.max_link_bytes == 150

    def test_per_rank_totals(self):
        traffic = LinkTraffic()
        traffic.record(0, 1, 100)
        traffic.record(0, 2, 10)
        traffic.record(2, 0, 1)
        assert traffic.sent_by(0) == 110
        assert traffic.received_by(1) == 100
        assert traffic.received_by(0) == 1
        assert traffic.sent_by(1) == 0

    def test_self_sends_are_free(self):
        # local hand-off never crosses a link
        traffic = LinkTraffic()
        traffic.record(2, 2, 1000)
        assert traffic.total_bytes == 0
        assert not traffic.records

    def test_negative_bytes_rejected(self):
        traffic = LinkTraffic()
        with pytest.raises(ValueError):
            traffic.record(0, 1, -1)

    def test_reset(self):
        traffic = LinkTraffic()
        traffic.record(0, 1, 10, tag="w")
        traffic.reset()
        assert traffic.total_bytes == 0
        assert traffic.link_bytes(0, 1) == 0

    def test_records_keep_tags(self):
        traffic = LinkTraffic()
        traffic.record(0, 1, 10, tag="fc6.W")
        assert traffic.records[0].tag == "fc6.W"
