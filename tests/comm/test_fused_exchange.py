"""Workspace (fused decode-accumulate) exchanges vs the allocating path.

Every exchange must produce bit-identical aggregates, identical wire
byte counts, and — when the scheme needs error feedback — bit-identical
per-rank round-trip images, whether or not a workspace arena is
supplied.  The fused path's only legal difference is that unbiased
schemes skip materializing ``decoded_local`` (it returns ``None``).
"""

import numpy as np
import pytest

from repro.comm import EXCHANGE_NAMES, make_exchange
from repro.quantization import EncodeWorkspace, make_quantizer

SCHEMES = ["32bit", "qsgd4", "qsgd2", "1bit", "1bit*", "aqsgd4"]
WORLD = 4


def _tensors(shape=(32, 20)):
    return [
        np.random.default_rng(100 + r).normal(size=shape).astype(np.float32)
        for r in range(WORLD)
    ]


def _run(exchange_name, scheme, workspace):
    exchange = make_exchange(exchange_name, WORLD)
    codec = make_quantizer(scheme)
    result = exchange.exchange(
        "w",
        _tensors(),
        codec,
        np.random.default_rng(5),
        workspace=workspace,
    )
    return codec, exchange, result


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("exchange_name", sorted(EXCHANGE_NAMES))
class TestFusedMatchesAllocating:
    def test_aggregate_bit_identical(self, exchange_name, scheme):
        _, _, ref = _run(exchange_name, scheme, None)
        _, _, got = _run(exchange_name, scheme, EncodeWorkspace())
        np.testing.assert_array_equal(
            np.asarray(got.aggregate), np.asarray(ref.aggregate)
        )

    def test_wire_bytes_unchanged(self, exchange_name, scheme):
        _, ref_ex, _ = _run(exchange_name, scheme, None)
        _, got_ex, _ = _run(exchange_name, scheme, EncodeWorkspace())
        assert (
            got_ex.traffic.total_bytes == ref_ex.traffic.total_bytes
        )

    def test_decoded_local_contract(self, exchange_name, scheme):
        codec, _, ref = _run(exchange_name, scheme, None)
        _, _, got = _run(exchange_name, scheme, EncodeWorkspace())
        # the allocating path always materializes round-trip images
        assert ref.decoded_local is not None
        if codec.requires_error_feedback:
            # the trainer's residual update needs them: bit-identical
            assert got.decoded_local is not None
            for mine, theirs in zip(got.decoded_local, ref.decoded_local):
                np.testing.assert_array_equal(
                    np.asarray(mine), np.asarray(theirs)
                )
        elif exchange_name == "nccl" and scheme == "32bit":
            # full-precision NCCL sums exactly: the round-trip images
            # are the inputs themselves, so they come back for free
            assert got.decoded_local is not None
        else:
            # unbiased schemes fuse: no per-rank tensors materialized
            assert got.decoded_local is None


@pytest.mark.parametrize("exchange_name", sorted(EXCHANGE_NAMES))
def test_workspace_reuse_across_repeated_exchanges(exchange_name):
    """Steady state: repeated exchanges stop allocating arena buffers."""
    exchange = make_exchange(exchange_name, WORLD)
    codec = make_quantizer("qsgd4")
    ws = EncodeWorkspace()
    tensors = _tensors()
    exchange.exchange("w", tensors, codec, np.random.default_rng(0), workspace=ws)
    misses = ws.misses
    for step in range(1, 4):
        exchange.exchange(
            "w", tensors, codec, np.random.default_rng(step), workspace=ws
        )
    assert ws.misses == misses, "exchange allocated after warmup"
