"""Property-based tests for the collective exchanges.

Randomized world sizes, tensor shapes, and codecs; the synchronous-SGD
invariants must hold for all of them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import make_exchange
from repro.quantization import FullPrecision, make_quantizer

SCHEMES = st.sampled_from(["32bit", "qsgd4", "qsgd8", "1bit*"])
EXCHANGES = st.sampled_from(["mpi", "nccl", "alltoall"])
WORLDS = st.integers(min_value=1, max_value=6)
DIMS = st.tuples(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=12),
)


def rank_tensors(world_size, shape, seed):
    return [
        np.random.default_rng(seed * 100 + rank)
        .normal(size=shape)
        .astype(np.float32)
        for rank in range(world_size)
    ]


class TestExchangeProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        exchange_name=EXCHANGES,
        world_size=WORLDS,
        shape=DIMS,
        seed=st.integers(0, 50),
    )
    def test_fullprec_exact_for_any_configuration(
        self, exchange_name, world_size, shape, seed
    ):
        tensors = rank_tensors(world_size, shape, seed)
        exchange = make_exchange(exchange_name, world_size)
        result = exchange.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        np.testing.assert_allclose(
            result.aggregate, sum(tensors), rtol=1e-4, atol=1e-4
        )

    @settings(max_examples=40, deadline=None)
    @given(
        exchange_name=EXCHANGES,
        scheme=SCHEMES,
        world_size=WORLDS,
        shape=DIMS,
        seed=st.integers(0, 50),
    )
    def test_aggregate_shape_and_finiteness(
        self, exchange_name, scheme, world_size, shape, seed
    ):
        tensors = rank_tensors(world_size, shape, seed)
        exchange = make_exchange(exchange_name, world_size)
        codec = make_quantizer(scheme)
        result = exchange.exchange(
            "w", tensors, codec, np.random.default_rng(0)
        )
        assert result.aggregate.shape == tuple(shape)
        assert np.isfinite(result.aggregate).all()
        assert len(result.decoded_local) == world_size

    @settings(max_examples=30, deadline=None)
    @given(
        scheme=SCHEMES,
        world_size=st.integers(min_value=2, max_value=6),
        shape=DIMS,
        seed=st.integers(0, 50),
    )
    def test_traffic_symmetric_across_ranks_mpi(
        self, scheme, world_size, shape, seed
    ):
        # in the reduce-and-broadcast pattern every rank sends its
        # ranges and every owner broadcasts: totals balance globally
        tensors = rank_tensors(world_size, shape, seed)
        exchange = make_exchange("mpi", world_size)
        exchange.exchange(
            "w", tensors, make_quantizer(scheme), np.random.default_rng(0)
        )
        sent = sum(
            exchange.traffic.sent_by(rank) for rank in range(world_size)
        )
        received = sum(
            exchange.traffic.received_by(rank)
            for rank in range(world_size)
        )
        assert sent == received == exchange.traffic.total_bytes

    @settings(max_examples=30, deadline=None)
    @given(
        world_size=st.integers(min_value=2, max_value=6),
        shape=st.tuples(
            st.integers(min_value=4, max_value=12),
            st.integers(min_value=4, max_value=12),
        ),
        seed=st.integers(0, 50),
    )
    def test_quantized_never_more_traffic_than_fullprec_alltoall(
        self, world_size, shape, seed
    ):
        # needs a non-trivial tensor: on 1-element tensors the scale
        # float plus header outweighs the 32-bit payload
        tensors = rank_tensors(world_size, shape, seed)
        full = make_exchange("alltoall", world_size)
        full.exchange(
            "w", tensors, FullPrecision(), np.random.default_rng(0)
        )
        quant = make_exchange("alltoall", world_size)
        quant.exchange(
            "w",
            tensors,
            make_quantizer("qsgd8", bucket_size=64),
            np.random.default_rng(0),
        )
        # 8-bit codes + per-bucket scales always beat 32-bit floats
        assert quant.traffic.total_bytes <= full.traffic.total_bytes
