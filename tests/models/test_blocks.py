"""Gradient and behaviour tests for residual and inception blocks."""

import numpy as np
import pytest

from repro.models.blocks import InceptionBlock, ResidualBlock
from repro.nn.gradcheck import check_layer_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestResidualBlock:
    def test_identity_shortcut_gradients(self, rng):
        block = ResidualBlock(4, 4, "b", rng, stride=1)
        errors = check_layer_gradients(
            block, rng.normal(size=(2, 4, 6, 6)), rtol=1e-3, atol=1e-5
        )
        assert max(errors.values()) < 1e-4

    def test_projection_shortcut_gradients(self, rng):
        block = ResidualBlock(4, 8, "b", rng, stride=2)
        check_layer_gradients(
            block, rng.normal(size=(2, 4, 6, 6)), rtol=1e-3, atol=1e-5
        )

    def test_identity_shortcut_has_no_projection(self, rng):
        assert ResidualBlock(4, 4, "b", rng).shortcut is None

    def test_downsample_halves_spatial(self, rng):
        block = ResidualBlock(4, 8, "b", rng, stride=2)
        out = block.forward(np.zeros((1, 4, 8, 8), dtype=np.float32))
        assert out.shape == (1, 8, 4, 4)

    def test_skip_path_carries_signal(self, rng):
        # zeroing the main path must leave the skip path intact
        block = ResidualBlock(4, 4, "b", rng)
        for p in block.main.parameters():
            p.data[:] = 0.0
        x = np.abs(rng.normal(size=(1, 4, 4, 4))).astype(np.float32)
        out = block.forward(x, training=True)
        np.testing.assert_allclose(out, np.maximum(x, 0.0), atol=1e-5)


class TestInceptionBlock:
    def test_output_channels_are_sum_of_widths(self, rng):
        block = InceptionBlock(8, (4, 6, 6, 4), "i", rng)
        out = block.forward(np.zeros((2, 8, 6, 6), dtype=np.float32))
        assert out.shape == (2, 20, 6, 6)

    def test_gradients(self, rng):
        block = InceptionBlock(4, (2, 4, 4, 2), "i", rng)
        check_layer_gradients(
            block, rng.normal(size=(2, 4, 5, 5)), rtol=1e-3, atol=1e-5
        )

    def test_backward_splits_channels(self, rng):
        block = InceptionBlock(4, (2, 4, 4, 2), "i", rng)
        x = rng.normal(size=(1, 4, 5, 5)).astype(np.float32)
        out = block.forward(x, training=True)
        dx = block.backward(np.ones_like(out))
        assert dx.shape == x.shape
