"""Tests for the paper-scale network inventories (Figures 3 and 4)."""

import pytest

from repro.models.specs import NETWORKS, get_network


class TestParameterCounts:
    """Reconstructed totals must match the paper's Figure 3."""

    @pytest.mark.parametrize(
        "name,millions,tolerance",
        [
            ("AlexNet", 62, 0.05),
            ("VGG19", 143, 0.05),
            ("ResNet50", 25, 0.05),
            ("ResNet152", 60, 0.05),
            ("BN-Inception", 11, 0.10),
            ("LSTM", 13, 0.05),
        ],
    )
    def test_figure3_parameter_counts(self, name, millions, tolerance):
        spec = get_network(name)
        assert spec.parameter_count == pytest.approx(
            millions * 1e6, rel=tolerance
        )

    def test_resnet110_parameter_count(self):
        # the published ResNet-110 has ~1.7M params (Figure 3 rounds to 1M)
        spec = get_network("ResNet110")
        assert 1.5e6 < spec.parameter_count < 1.9e6


class TestRecipes:
    """Epochs / learning rates straight from Figure 3."""

    @pytest.mark.parametrize(
        "name,epochs,lr",
        [
            ("AlexNet", 112, 0.07),
            ("BN-Inception", 300, 3.6),
            ("ResNet50", 120, 1.0),
            ("ResNet110", 160, 0.1),
            ("ResNet152", 120, 1.0),
            ("VGG19", 80, 0.1),
            ("LSTM", 20, 0.5),
        ],
    )
    def test_figure3_recipes(self, name, epochs, lr):
        spec = get_network(name)
        assert spec.epochs_to_converge == epochs
        assert spec.initial_lr == lr


class TestBatchSizes:
    """Batch sizes straight from Figure 4."""

    @pytest.mark.parametrize(
        "name,sizes",
        [
            ("AlexNet", {1: 256, 2: 256, 4: 256, 8: 256, 16: 256}),
            ("BN-Inception", {1: 64, 2: 128, 4: 256, 8: 256, 16: 256}),
            ("VGG19", {1: 32, 2: 64, 4: 128, 8: 128, 16: 128}),
            ("ResNet50", {1: 32, 2: 64, 4: 128, 8: 256, 16: 256}),
            ("ResNet152", {1: 16, 2: 32, 4: 64, 8: 128, 16: 256}),
            ("ResNet110", {1: 128, 2: 128, 4: 128, 8: 128, 16: 128}),
            ("LSTM", {1: 16, 2: 16}),
        ],
    )
    def test_figure4_batch_sizes(self, name, sizes):
        spec = get_network(name)
        assert spec.batch_sizes == sizes

    def test_lstm_not_run_beyond_2_gpus(self):
        # Figure 4 marks LSTM at 4+ GPUs as NA
        with pytest.raises(ValueError):
            get_network("LSTM").batch_size_for(4)


class TestLayouts:
    def test_conv_layers_have_kernel_width_rows(self):
        # the CNTK layout behind the stock-1bitSGD artefact: conv
        # gradient matrices expose only kernel-width-many rows
        spec = get_network("ResNet152")
        conv_rows = {l.rows for l in spec.layers if l.kind == "conv"}
        assert conv_rows <= {1, 3, 7}

    def test_fc_layers_have_long_columns(self):
        spec = get_network("AlexNet")
        fc = [l for l in spec.layers if l.kind == "fc"]
        assert all(l.rows >= 1000 for l in fc)

    def test_conv_fraction_separates_network_classes(self):
        # communication-dominated nets are FC-heavy; compute-dominated
        # nets are conv-heavy (Section 5.2)
        assert get_network("AlexNet").conv_fraction < 0.1
        assert get_network("VGG19").conv_fraction < 0.2
        assert get_network("ResNet50").conv_fraction > 0.85
        assert get_network("BN-Inception").conv_fraction > 0.85

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="unknown network"):
            get_network("GPT-4")

    def test_model_megabytes(self):
        spec = get_network("AlexNet")
        assert spec.model_megabytes == pytest.approx(
            spec.parameter_count * 4 / 1e6
        )

    def test_all_layer_names_unique(self):
        for spec in NETWORKS.values():
            names = [l.name for l in spec.layers]
            assert len(names) == len(set(names)), spec.name
