"""Tests for the trainable model zoo."""

import numpy as np
import pytest

from repro.models import (
    MODEL_BUILDERS,
    build_model,
    speech_lstm,
    tiny_alexnet,
    tiny_inception,
    tiny_resnet,
    tiny_vgg,
)
from repro.nn.loss import softmax_cross_entropy

IMAGE_MODELS = ["alexnet", "vgg", "resnet", "inception"]


class TestForwardBackward:
    @pytest.mark.parametrize("name", IMAGE_MODELS)
    def test_image_models_run(self, name):
        model = build_model(name, num_classes=5, seed=0)
        x = np.random.default_rng(0).normal(size=(4, 3, 32, 32)).astype(
            np.float32
        )
        logits = model.forward(x, training=True)
        assert logits.shape == (4, 5)
        loss, dlogits = softmax_cross_entropy(
            logits, np.array([0, 1, 2, 3])
        )
        dx = model.backward(dlogits)
        assert dx.shape == x.shape
        assert all(np.isfinite(p.grad).all() for p in model.parameters())

    def test_lstm_model_runs(self):
        model = speech_lstm(num_classes=4, input_size=10, seed=0)
        x = np.random.default_rng(0).normal(size=(3, 12, 10)).astype(
            np.float32
        )
        logits = model.forward(x, training=True)
        assert logits.shape == (3, 4)
        _, dlogits = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        dx = model.backward(dlogits)
        assert dx.shape == x.shape

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("transformer")


class TestCommunicationProfiles:
    def test_alexnet_is_fc_dominated(self):
        # like paper AlexNet: most parameters in the dense head
        model = tiny_alexnet(seed=0)
        fc = sum(
            p.size for p in model.parameters() if p.name.startswith("fc")
        )
        assert fc / model.parameter_count() > 0.9

    def test_vgg_is_fc_dominated(self):
        model = tiny_vgg(seed=0)
        fc = sum(
            p.size for p in model.parameters() if p.name.startswith("fc")
        )
        assert fc / model.parameter_count() > 0.8

    def test_resnet_is_conv_dominated(self):
        model = tiny_resnet(seed=0)
        conv = sum(
            p.size
            for p in model.parameters()
            if ".c" in p.name or "conv" in p.name or "stem" in p.name
            or "proj" in p.name
        )
        assert conv / model.parameter_count() > 0.9

    def test_parameter_names_unique(self):
        for name in MODEL_BUILDERS:
            model = build_model(name, seed=0)
            names = [p.name for p in model.parameters()]
            assert len(names) == len(set(names)), name


class TestDeterminism:
    @pytest.mark.parametrize("name", ["alexnet", "resnet", "lstm"])
    def test_same_seed_same_weights(self, name):
        a = build_model(name, seed=7)
        b = build_model(name, seed=7)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = tiny_alexnet(seed=1)
        b = tiny_alexnet(seed=2)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
        )


class TestResNetOptions:
    def test_depth_scales_with_blocks(self):
        shallow = tiny_resnet(blocks_per_stage=1, seed=0)
        deep = tiny_resnet(blocks_per_stage=3, seed=0)
        assert deep.parameter_count() > shallow.parameter_count()

    def test_custom_widths(self):
        model = tiny_resnet(widths=(8, 16, 32), seed=0)
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        assert model.forward(x, training=False).shape == (2, 10)


class TestInception:
    def test_branch_concat_width(self):
        model = tiny_inception(num_classes=3, seed=0)
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        assert model.forward(x, training=False).shape == (2, 3)
