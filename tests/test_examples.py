"""Smoke tests for the example scripts' importable pieces.

The full example scripts train for minutes; these tests exercise their
fast building blocks so the examples cannot silently rot.
"""

import subprocess
import sys

import pytest


class TestPlannerLogic:
    def test_sweep_covers_all_feasible_cells(self):
        sys.path.insert(0, "examples")
        try:
            from throughput_planner import sweep
        finally:
            sys.path.pop(0)
        rows = sweep("ResNet50")
        assert rows
        machines = {row["machine"] for row in rows}
        assert "dgx1" in machines
        assert all(row["samples_per_s"] > 0 for row in rows)
        # NCCL at 16 GPUs must be absent (unsupported)
        assert not any(
            row["gpus"] == 16 and row["exchange"] == "nccl" for row in rows
        )


class TestReproducePaperScript:
    def test_list_flag(self):
        result = subprocess.run(
            [sys.executable, "examples/reproduce_paper.py", "--list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "fig10" in result.stdout
        assert "fig16-right" in result.stdout

    def test_unknown_id_rejected(self):
        result = subprocess.run(
            [sys.executable, "examples/reproduce_paper.py", "fig99"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0

    def test_single_simulator_figure_runs(self):
        result = subprocess.run(
            [sys.executable, "examples/reproduce_paper.py", "fig16-right"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "asymptote" in result.stdout


class TestDgxExample:
    def test_runs_for_resnet(self):
        result = subprocess.run(
            [sys.executable, "examples/dgx_vs_ec2.py", "ResNet50"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "4-bit speedup" in result.stdout

    def test_unknown_network_rejected(self):
        result = subprocess.run(
            [sys.executable, "examples/dgx_vs_ec2.py", "GPT-5"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode != 0
