"""Public-API surface tests: the imports README and examples rely on."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_imports(self):
        from repro import ParallelTrainer, TrainingConfig  # noqa: F401
        from repro.data import make_image_dataset  # noqa: F401
        from repro.models import tiny_alexnet  # noqa: F401

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name


SUBPACKAGES = [
    "repro.quantization",
    "repro.comm",
    "repro.nn",
    "repro.optim",
    "repro.models",
    "repro.data",
    "repro.core",
    "repro.simulator",
    "repro.study",
]


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, module_name

    def test_public_classes_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"
