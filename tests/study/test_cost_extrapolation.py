"""Tests for the Figure 16 cost and extrapolation studies."""

import pytest

from repro.study.cost import (
    cheapest_configuration,
    cost_accuracy_curve,
    print_cost_accuracy,
)
from repro.study.extrapolation import (
    dummy_alexnet,
    extrapolation_curve,
    print_extrapolation,
)


class TestCostStudy:
    def test_cheapest_configuration_is_ec2(self):
        machine, world_size, dollars = cheapest_configuration("AlexNet")
        assert machine.startswith("p2.")
        assert world_size >= 1
        assert dollars > 0

    def test_cost_scales_with_epochs(self):
        points = cost_accuracy_curve("ResNet50", fractions=(0.5, 1.0))
        assert points[1].dollars == pytest.approx(
            2 * points[0].dollars, rel=0.05
        )
        assert points[1].accuracy > points[0].accuracy

    def test_paper_discussion_deltas(self):
        # Section 5.4: "+$600 AlexNet -> ResNet-50 buys ~15 accuracy
        # points; another ~$1500 to ResNet-152 buys ~2 more"
        full = {
            net: cost_accuracy_curve(net, fractions=(1.0,))[0]
            for net in ("AlexNet", "ResNet50", "ResNet152")
        }
        step1_cost = full["ResNet50"].dollars - full["AlexNet"].dollars
        step1_acc = full["ResNet50"].accuracy - full["AlexNet"].accuracy
        step2_cost = full["ResNet152"].dollars - full["ResNet50"].dollars
        step2_acc = full["ResNet152"].accuracy - full["ResNet50"].accuracy
        assert 400 < step1_cost < 900
        assert 10 < step1_acc < 20
        assert 1000 < step2_cost < 2000
        assert 0.5 < step2_acc < 4

    def test_monotone_cost_accuracy(self):
        # "almost monotonic correlation between $ cost and accuracy"
        points = sorted(
            (
                p
                for net in ("AlexNet", "ResNet50", "ResNet152")
                for p in cost_accuracy_curve(net, fractions=(1.0,))
            ),
            key=lambda p: p.dollars,
        )
        accuracies = [p.accuracy for p in points]
        assert accuracies == sorted(accuracies)

    def test_print(self, capsys):
        print_cost_accuracy()
        out = capsys.readouterr().out
        assert "Figure 16 (left)" in out


class TestExtrapolation:
    def test_dummy_model_grows_fc_only(self):
        base = dummy_alexnet(1.0)
        big = dummy_alexnet(10.0)
        assert big.parameter_count > 9 * base.parameter_count
        base_conv = sum(
            l.size for l in base.layers if l.kind == "conv"
        )
        big_conv = sum(l.size for l in big.layers if l.kind == "conv")
        assert base_conv == big_conv

    def test_speedup_grows_with_model_size(self):
        points = extrapolation_curve(scales=(0.1, 10.0, 1000.0))
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)

    def test_speedup_bounded_by_bandwidth_ratio(self):
        # Section 6: "upper bounded by the difference in bandwidth
        # usage, which is 4x"
        points = extrapolation_curve(scales=(1000.0, 10000.0))
        assert all(p.speedup <= 4.0 for p in points)

    def test_small_models_show_no_speedup(self):
        point = extrapolation_curve(scales=(0.1,))[0]
        assert point.speedup < 1.1

    def test_large_models_show_substantial_speedup(self):
        point = extrapolation_curve(scales=(1000.0,))[0]
        assert point.speedup > 1.5

    def test_mb_per_gflops_axis_monotone(self):
        points = extrapolation_curve(scales=(0.1, 1.0, 10.0))
        ratios = [p.mb_per_gflops for p in points]
        assert ratios == sorted(ratios)

    def test_print(self, capsys):
        print_extrapolation()
        out = capsys.readouterr().out
        assert "Figure 16 (right)" in out
        assert "asymptote" in out
