"""Tests for the layer-type sensitivity study."""

import numpy as np
import pytest

from repro.core import SynchronousStep, TrainingConfig
from repro.nn.module import Parameter
from repro.study.layer_sensitivity import VARIANTS, run_layer_sensitivity


def make_params():
    rng = np.random.default_rng(0)
    return [
        Parameter("conv1.W", rng.normal(size=(16, 16, 3, 3)).astype(
            np.float32), kind="conv"),
        Parameter("fc1.W", rng.normal(size=(256, 64)).astype(np.float32),
                  kind="fc"),
    ]


def grads_for(params, world):
    return {
        p.name: [
            np.random.default_rng(r).normal(size=p.shape).astype(np.float32)
            for r in range(world)
        ]
        for p in params
    }


class TestSelectiveQuantization:
    def test_conv_only_routes_fc_to_fullprec(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(
                scheme="qsgd2", world_size=2, batch_size=4,
                quantize_kinds=("conv",),
            ),
            params,
        )
        grads = grads_for(params, 2)
        fc_result = step.aggregate("fc1.W", grads["fc1.W"])
        exact = sum(grads["fc1.W"]) / 2
        np.testing.assert_allclose(fc_result, exact, rtol=1e-5, atol=1e-5)
        conv_result = step.aggregate("conv1.W", grads["conv1.W"])
        conv_exact = sum(grads["conv1.W"]) / 2
        assert np.abs(conv_result - conv_exact).max() > 1e-3

    def test_empty_kinds_disables_quantization(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(
                scheme="qsgd2", world_size=2, batch_size=4,
                quantize_kinds=(),
            ),
            params,
        )
        grads = grads_for(params, 2)
        for name in ("fc1.W", "conv1.W"):
            result = step.aggregate(name, grads[name])
            np.testing.assert_allclose(
                result, sum(grads[name]) / 2, rtol=1e-5, atol=1e-5
            )

    def test_none_quantizes_everything_large(self):
        params = make_params()
        step = SynchronousStep(
            TrainingConfig(scheme="qsgd2", world_size=2, batch_size=4),
            params,
        )
        grads = grads_for(params, 2)
        result = step.aggregate("fc1.W", grads["fc1.W"])
        exact = sum(grads["fc1.W"]) / 2
        assert np.abs(result - exact).max() > 1e-3


class TestStudy:
    def test_variants_cover_paper_comparison(self):
        assert "quantize all" in VARIANTS
        assert VARIANTS["quantize conv only"] == ("conv",)
        assert VARIANTS["quantize fc only"] == ("fc",)

    @pytest.mark.slow
    def test_study_runs_and_orders_sensibly(self):
        results = {
            r.variant: r
            for r in run_layer_sensitivity(scheme="qsgd2", epochs=4)
        }
        # quantizing nothing moves the most bytes; quantizing all the
        # fewest (fc dominates AlexNet-class models)
        assert (
            results["quantize none (32bit)"].comm_megabytes
            > results["quantize conv only"].comm_megabytes
            > results["quantize all"].comm_megabytes
        )
        assert (
            results["quantize fc only"].comm_megabytes
            < results["quantize conv only"].comm_megabytes
        )
