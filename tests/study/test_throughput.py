"""Tests for the Figure 10/11 throughput harness."""

import pytest

from repro.study.throughput import (
    ec2_machine_for,
    print_throughput_tables,
    throughput_table,
)


class TestMachineSelection:
    def test_ec2_machine_for(self):
        assert ec2_machine_for(1) == "p2.xlarge"
        assert ec2_machine_for(2) == "p2.8xlarge"
        assert ec2_machine_for(8) == "p2.8xlarge"
        assert ec2_machine_for(16) == "p2.16xlarge"


class TestTables:
    def test_mpi_table_covers_all_paper_cells(self):
        cells = throughput_table("mpi")
        with_paper = [c for c in cells if c.paper is not None]
        # Figure 10: 6 networks x (1 + 7 schemes x 4 GPU counts) cells
        assert len(with_paper) == 6 * (1 + 7 * 4)

    def test_nccl_table_covers_all_paper_cells(self):
        cells = throughput_table("nccl")
        with_paper = [c for c in cells if c.paper is not None]
        # Figure 11: 5 networks x (1 + 5 schemes x 3 GPU counts) cells
        assert len(with_paper) == 5 * (1 + 5 * 3)

    def test_all_simulated_rates_positive(self):
        for cell in throughput_table("mpi"):
            assert cell.simulated > 0

    def test_unknown_exchange_rejected(self):
        with pytest.raises(ValueError):
            throughput_table("smoke-signals")

    def test_print_returns_cells(self, capsys):
        cells = print_throughput_tables("nccl")
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "AlexNet" in out
        assert len(cells) > 0

    def test_relative_error_none_without_paper_value(self):
        cells = throughput_table("mpi")
        missing = [c for c in cells if c.paper is None]
        assert all(c.relative_error is None for c in missing)
