"""Tests for the Figures 12-15 scalability harness."""

import math

import pytest

from repro.study.scalability import (
    SCALABILITY_SETUPS,
    print_scalability,
    scalability_series,
)


def series_map(figure):
    return {
        (s.network, s.scheme): s for s in scalability_series(figure)
    }


class TestSeries:
    @pytest.mark.parametrize("figure", sorted(SCALABILITY_SETUPS))
    def test_all_figures_generate(self, figure):
        series = scalability_series(figure)
        assert series
        for s in series:
            assert len(s.scalability) == len(s.gpu_counts)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            scalability_series("fig99")

    def test_unknown_figure_error_lists_choices(self):
        from repro.study.scalability import print_scalability

        with pytest.raises(ValueError) as err:
            print_scalability("fig99")
        for figure in SCALABILITY_SETUPS:
            assert figure in str(err.value)

    def test_baseline_is_one(self):
        s = series_map("fig12")[("AlexNet", "32bit")]
        assert s.scalability[0] == 1.0

    def test_quantized_only_defined_beyond_one_gpu(self):
        s = series_map("fig12")[("AlexNet", "qsgd4")]
        assert math.isnan(s.scalability[0])

    def test_scalability_never_exceeds_gpu_count_much(self):
        # only VGG may exceed linear (the small-batch anomaly)
        for s in scalability_series("fig12"):
            if s.network == "VGG19":
                continue
            for k, value in zip(s.gpu_counts, s.scalability):
                if not math.isnan(value):
                    assert value <= k * 1.15

    def test_quantization_improves_mpi_scalability(self):
        # Section 5.3: quantized communication consistently improves
        # scalability over 32bit on MPI
        curves = series_map("fig12")
        for network in ("AlexNet", "VGG19", "ResNet152"):
            full = curves[(network, "32bit")].scalability[-1]
            quant = curves[(network, "qsgd4")].scalability[-1]
            assert quant > full

    def test_alexnet_mpi_fullprec_scales_poorly(self):
        # "for AlexNet, 32-bit full precision with MPI only achieves
        # 2x scale up with 16 GPUs"
        s = series_map("fig12")[("AlexNet", "32bit")]
        assert s.scalability[-1] < 2.0

    def test_nccl_closes_the_gap(self):
        # Figure 13: quantization adds at most ~50% over 32bit NCCL
        curves = series_map("fig13")
        for network in ("AlexNet", "ResNet50", "ResNet152",
                        "BN-Inception"):
            full = curves[(network, "32bit")].scalability[-1]
            quant = curves[(network, "qsgd4")].scalability[-1]
            assert quant < full * 1.5

    def test_resnet152_quantized_near_linear(self):
        # "networks such as ResNet152 scale almost linearly once
        # quantization is applied even with MPI"
        s = series_map("fig12")[("ResNet152", "qsgd4")]
        at16 = s.scalability[-1]
        assert at16 > 11  # paper: ~12x at 16 GPUs

    def test_print_outputs_series(self, capsys):
        print_scalability("fig15")
        out = capsys.readouterr().out
        assert "fig15" in out
        assert "AlexNet/32bit" in out
