"""Tests for the table/series renderer."""

import pytest

from repro.study import format_series, format_table, print_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 20.25]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text

    def test_none_rendered_as_slash(self):
        # the paper's tables use "/" for cells that were not run
        text = format_table(["x"], [[None]])
        assert "/" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_print_with_title(self, capsys):
        print_table(["a"], [[1]], title="My Table")
        out = capsys.readouterr().out
        assert "My Table" in out
        assert "=" in out


class TestFormatSeries:
    def test_points_rendered(self):
        text = format_series("net/scheme", [1, 2, 4], [1.0, 1.9, 3.5])
        assert text.startswith("net/scheme:")
        assert "(4, 3.5)" in text
