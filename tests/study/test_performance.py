"""Tests for the Figures 6-9 epoch-time harness."""

import pytest

from repro.study.performance import (
    FIGURE_SETUPS,
    epoch_bars,
    print_epoch_bars,
)


class TestEpochBars:
    @pytest.mark.parametrize("figure", sorted(FIGURE_SETUPS))
    def test_all_figures_generate(self, figure):
        bars = epoch_bars(figure)
        assert bars
        for bar in bars:
            assert bar.epoch_hours > 0
            assert 0 <= bar.comm_hours <= bar.epoch_hours
            assert bar.comm_hours + bar.compute_hours == pytest.approx(
                bar.epoch_hours
            )

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            epoch_bars("fig99")

    def test_unknown_figure_error_lists_choices(self):
        from repro.study.performance import (
            FIGURE_SETUPS,
            print_epoch_bars,
        )

        with pytest.raises(ValueError) as err:
            print_epoch_bars("fig99")
        for figure in FIGURE_SETUPS:
            assert figure in str(err.value)

    def test_fig6_quantization_shrinks_comm_share(self):
        bars = {
            (b.network, b.scheme): b for b in epoch_bars("fig6")
        }
        for network in ("AlexNet", "VGG19"):
            full = bars[(network, "32bit")]
            quant = bars[(network, "qsgd4")]
            assert quant.comm_hours < full.comm_hours / 2
            assert quant.epoch_hours < full.epoch_hours

    def test_fig7_nccl_epochs_shorter_than_fig6_mpi(self):
        mpi = {
            (b.network, b.scheme): b
            for b in epoch_bars("fig6")
        }
        nccl = {
            (b.network, b.scheme): b
            for b in epoch_bars("fig7")
        }
        for network in ("AlexNet", "VGG19", "ResNet50"):
            assert (
                nccl[(network, "32bit")].epoch_hours
                < mpi[(network, "32bit")].epoch_hours
            )

    def test_fig8_dgx_epoch_time_falls_with_gpus_when_quantized(self):
        bars = epoch_bars("fig8")
        vgg_q4 = {
            b.world_size: b.epoch_hours
            for b in bars
            if b.network == "VGG19" and b.scheme == "qsgd4"
        }
        assert vgg_q4[2] > vgg_q4[4] > vgg_q4[8]

    def test_print_outputs_table(self, capsys):
        print_epoch_bars("fig9")
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "Epoch (h)" in out
