"""Tests for the experiment registry."""

import pytest

from repro.study import EXPERIMENTS, run_experiment

EXPECTED_IDS = {
    "fig5a", "fig5b", "fig5c", "fig5d", "fig5e",
    "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11",
    "fig12", "fig13", "fig14", "fig15",
    "fig16-left", "fig16-right",
    "fabric-sweep",
}


class TestRegistry:
    def test_every_paper_figure_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_experiments_carry_descriptions(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description
            # paper figures plus beyond-the-paper extension studies
            assert experiment.paper_artefact.startswith(
                ("Figure", "extension")
            )

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig42")

    @pytest.mark.parametrize(
        "exp_id", ["fig6", "fig10", "fig13", "fig16-right"]
    )
    def test_simulator_experiments_run(self, exp_id, capsys):
        result = run_experiment(exp_id)
        assert result is not None
        assert capsys.readouterr().out
