"""Tests for the insight scoreboard."""

from repro.study import evaluate_insights, print_insights


class TestInsights:
    def test_five_questions_evaluated(self):
        insights = evaluate_insights()
        assert len(insights) == 5

    def test_all_performance_insights_hold(self):
        # the reproduction's acceptance criterion: every performance
        # conclusion of the paper must re-derive from simulated data
        for insight in evaluate_insights():
            assert insight.holds, insight.question

    def test_answers_carry_evidence(self):
        for insight in evaluate_insights():
            assert insight.evidence
            assert insight.paper_answer
            assert insight.reproduced_answer

    def test_print_scoreboard(self, capsys):
        print_insights()
        out = capsys.readouterr().out
        assert out.count("HOLDS") == 5
