"""Quick-scale tests for the Figure 5 accuracy harness.

Full study runs live in the benchmark suite; here a pruned experiment
(one scheme, few epochs) verifies the harness plumbing and the key
accuracy orderings on the smallest viable workloads.
"""

import dataclasses

import pytest

from repro.study import FIG5_EXPERIMENTS
from repro.study.accuracy import run_accuracy_experiment


class TestExperimentDefinitions:
    def test_all_five_subfigures_defined(self):
        assert set(FIG5_EXPERIMENTS) == {
            "fig5a", "fig5b", "fig5c", "fig5d", "fig5e"
        }

    def test_fig5a_legend_matches_paper(self):
        labels = [label for _, _, label in FIG5_EXPERIMENTS["fig5a"].schemes]
        assert "1bitSGD" in labels
        assert "1bitSGD* (d=512)" in labels
        assert "1bitSGD* (d=64)" in labels
        assert "QSGD 2bit" in labels

    def test_bucket_sizes_match_paper_legends(self):
        buckets = {
            label: bucket
            for _, bucket, label in FIG5_EXPERIMENTS["fig5a"].schemes
        }
        assert buckets["1bitSGD* (d=512)"] == 512
        assert buckets["1bitSGD* (d=64)"] == 64

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_accuracy_experiment("fig5z")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_accuracy_experiment("fig5a", scale="epic")


class TestQuickRuns:
    def test_pruned_fig5d_runs_and_learns(self, monkeypatch):
        # prune to two schemes and two epochs to keep the test fast
        experiment = FIG5_EXPERIMENTS["fig5d"]
        pruned = dataclasses.replace(
            experiment,
            schemes=[("32bit", None, "32bit"), ("qsgd4", None, "QSGD 4bit")],
            quick_epochs=2,
        )
        monkeypatch.setitem(FIG5_EXPERIMENTS, "fig5d", pruned)
        histories = run_accuracy_experiment("fig5d", scale="quick")
        assert set(histories) == {"32bit", "QSGD 4bit"}
        for history in histories.values():
            assert len(history.epochs) == 2
            assert history.final_test_accuracy > 1.0 / 6  # beats chance

    def test_multiseed_runner_groups_by_label(self, monkeypatch):
        experiment = FIG5_EXPERIMENTS["fig5e"]
        pruned = dataclasses.replace(
            experiment,
            schemes=[("qsgd8", None, "QSGD 8bit")],
            quick_epochs=1,
        )
        monkeypatch.setitem(FIG5_EXPERIMENTS, "fig5e", pruned)
        from repro.study import run_accuracy_experiment_multiseed

        runs = run_accuracy_experiment_multiseed(
            "fig5e", seeds=(0, 1), scale="quick"
        )
        assert set(runs) == {"QSGD 8bit"}
        assert len(runs["QSGD 8bit"]) == 2
        # different seeds shuffle differently: losses should differ
        a, b = runs["QSGD 8bit"]
        assert a.epochs[0].train_loss != b.epochs[0].train_loss

    def test_lstm_experiment_runs(self, monkeypatch):
        experiment = FIG5_EXPERIMENTS["fig5e"]
        pruned = dataclasses.replace(
            experiment,
            schemes=[("qsgd4", None, "QSGD 4bit")],
            quick_epochs=2,
        )
        monkeypatch.setitem(FIG5_EXPERIMENTS, "fig5e", pruned)
        histories = run_accuracy_experiment("fig5e", scale="quick")
        history = histories["QSGD 4bit"]
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
