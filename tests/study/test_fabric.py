"""Tests for the large-K fabric sweep study."""

from repro.fabric import PATTERN_NAMES
from repro.study import fabric_sweep, print_fabric_sweep
from repro.study.fabric import SWEEP_SCHEMES, SWEEP_WORLD_SIZES


class TestFabricSweep:
    def test_grid_is_complete(self):
        points = fabric_sweep(
            world_sizes=(8, 16), total_elements=50_000
        )
        cells = {
            (p.world_size, p.pattern, p.scheme) for p in points
        }
        assert cells == {
            (k, pattern, scheme)
            for k in (8, 16)
            for pattern in PATTERN_NAMES
            for scheme in SWEEP_SCHEMES
        }
        for point in points:
            assert point.makespan_seconds > 0
            assert point.total_wire_bytes > 0
            assert point.transfers > 0
            assert 0.0 <= point.max_link_utilization <= 1.0 + 1e-9

    def test_quantization_cuts_wire_bytes_at_scale(self):
        points = fabric_sweep(
            world_sizes=(16,),
            patterns=("ring",),
            total_elements=500_000,
        )
        by_scheme = {p.scheme: p for p in points}
        assert by_scheme["qsgd4"].total_wire_bytes < (
            by_scheme["32bit"].total_wire_bytes / 4
        )
        assert by_scheme["1bit"].total_wire_bytes < (
            by_scheme["qsgd4"].total_wire_bytes
        )

    def test_default_sweep_reaches_k1024(self):
        assert SWEEP_WORLD_SIZES[0] == 64
        assert SWEEP_WORLD_SIZES[-1] == 1024

    def test_print_sweep_emits_table_and_chart(self, capsys):
        points = print_fabric_sweep(
            world_sizes=(8, 16), total_elements=20_000
        )
        out = capsys.readouterr().out
        assert "Fabric sweep" in out
        for pattern in PATTERN_NAMES:
            assert pattern in out
        assert len(points) == 2 * len(PATTERN_NAMES) * len(SWEEP_SCHEMES)
