"""Tests for the compression report and the convergence-rate metric."""

import pytest

from repro.core import EpochMetrics, History
from repro.study.compression import (
    compression_report,
    print_compression_report,
)


class TestCompressionReport:
    @pytest.fixture(scope="class")
    def cells(self):
        return {
            (c.network, c.scheme): c
            for c in compression_report(networks=("AlexNet", "ResNet152"))
        }

    def test_fullprec_is_32_bits(self, cells):
        assert cells[("AlexNet", "32bit")].bits_per_element == (
            pytest.approx(32.0, rel=0.01)
        )

    def test_qsgd_rates_near_nominal(self, cells):
        for bits, scheme in [(16, "qsgd16"), (8, "qsgd8"), (4, "qsgd4")]:
            rate = cells[("AlexNet", scheme)].bits_per_element
            assert bits <= rate < bits + 1.0

    def test_stock_1bit_expands_resnet(self, cells):
        # the Section 3.2.2 artefact as data
        assert cells[("ResNet152", "1bit")].bits_per_element > 32.0
        assert cells[("ResNet152", "1bit")].compression_vs_32bit < 1.0

    def test_stock_1bit_compresses_alexnet(self, cells):
        assert cells[("AlexNet", "1bit")].bits_per_element < 3.0

    def test_reshaped_1bit_always_compresses(self, cells):
        for network in ("AlexNet", "ResNet152"):
            assert cells[(network, "1bit*")].bits_per_element < 3.0

    def test_print(self, capsys):
        print_compression_report()
        out = capsys.readouterr().out
        assert "Wire bits per gradient element" in out
        assert "AlexNet" in out


class TestConvergenceRate:
    def make_history(self, accuracies):
        history = History(label="test")
        for epoch, accuracy in enumerate(accuracies):
            history.append(
                EpochMetrics(
                    epoch=epoch, train_loss=1.0, train_accuracy=accuracy,
                    test_accuracy=accuracy, comm_bytes=0, wall_seconds=1.0,
                )
            )
        return history

    def test_first_crossing_reported(self):
        history = self.make_history([0.3, 0.5, 0.7, 0.72])
        assert history.epochs_to_reach(0.6) == 3

    def test_reached_on_first_epoch(self):
        history = self.make_history([0.9])
        assert history.epochs_to_reach(0.5) == 1

    def test_never_reached(self):
        history = self.make_history([0.3, 0.4])
        assert history.epochs_to_reach(0.9) is None
