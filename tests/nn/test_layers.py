"""Gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.gradcheck import check_layer_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestGradients:
    def test_dense(self, rng):
        errors = check_layer_gradients(
            Dense(12, 7, "d", rng), rng.normal(size=(4, 12))
        )
        assert max(errors.values()) < 1e-6

    def test_dense_no_bias(self, rng):
        layer = Dense(6, 5, "d", rng, bias=False)
        assert len(layer.parameters()) == 1
        check_layer_gradients(layer, rng.normal(size=(3, 6)))

    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0), (2, 0)])
    def test_conv(self, rng, stride, pad):
        layer = Conv2d(3, 4, 3, "c", rng, stride=stride, pad=pad)
        check_layer_gradients(layer, rng.normal(size=(2, 3, 8, 8)))

    def test_conv_1x1(self, rng):
        layer = Conv2d(4, 6, 1, "c", rng, pad=0)
        check_layer_gradients(layer, rng.normal(size=(2, 4, 5, 5)))

    def test_batchnorm_4d(self, rng):
        check_layer_gradients(
            BatchNorm(3, "bn"), rng.normal(size=(2, 3, 6, 6))
        )

    def test_batchnorm_2d(self, rng):
        check_layer_gradients(BatchNorm(5, "bn"), rng.normal(size=(6, 5)))

    def test_maxpool(self, rng):
        check_layer_gradients(MaxPool2d(2), rng.normal(size=(2, 3, 8, 8)))

    def test_global_avg_pool(self, rng):
        check_layer_gradients(
            GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4))
        )

    def test_activations(self, rng):
        for layer in (ReLU(), Tanh(), Sigmoid()):
            check_layer_gradients(layer, rng.normal(size=(4, 6)))

    def test_flatten(self, rng):
        check_layer_gradients(Flatten(), rng.normal(size=(2, 3, 4, 4)))


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(8, 3, "d", rng)
        assert layer.forward(np.zeros((5, 8), dtype=np.float32)).shape == (
            5,
            3,
        )

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Dense(4, 4, "d", rng).backward(np.zeros((2, 4)))

    def test_parameter_names(self, rng):
        layer = Dense(4, 4, "fc6", rng)
        assert [p.name for p in layer.parameters()] == ["fc6.W", "fc6.b"]


class TestConv:
    def test_output_shape_same_padding(self, rng):
        layer = Conv2d(3, 8, 3, "c", rng)  # default pad = k//2
        out = layer.forward(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 16, 16)

    def test_output_shape_stride2(self, rng):
        layer = Conv2d(3, 8, 3, "c", rng, stride=2)
        out = layer.forward(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 8, 8)

    def test_matches_naive_convolution(self, rng):
        layer = Conv2d(2, 3, 3, "c", rng, stride=1, pad=1)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        out = layer.forward(x, training=False)
        w = layer.weight.data
        b = layer.bias.data
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for f in range(3):
            for i in range(5):
                for j in range(5):
                    window = padded[0, :, i : i + 3, j : j + 3]
                    expected = (window * w[f]).sum() + b[f]
                    assert out[0, f, i, j] == pytest.approx(
                        expected, rel=1e-4, abs=1e-4
                    )


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        layer = BatchNorm(4, "bn")
        x = rng.normal(loc=5.0, scale=3.0, size=(64, 4)).astype(np.float32)
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm(4, "bn", momentum=0.0)  # running = last batch
        x = rng.normal(loc=2.0, size=(256, 4)).astype(np.float32)
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.05)

    def test_rejects_3d_input(self):
        layer = BatchNorm(4, "bn")
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 4, 3), dtype=np.float32))


class TestPooling:
    def test_maxpool_selects_maximum(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(
            out[0, 0], [[5.0, 7.0], [13.0, 15.0]]
        )

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2d(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert dx.sum() == 4.0
        assert dx[0, 0, 1, 1] == 1.0  # position of 5
        assert dx[0, 0, 3, 3] == 1.0  # position of 15

    def test_global_avg(self):
        layer = GlobalAvgPool2d()
        x = np.ones((2, 3, 4, 4), dtype=np.float32) * 7
        np.testing.assert_allclose(layer.forward(x), 7.0)


class TestDropout:
    def test_identity_at_eval(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(10, 10)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_preserves_expectation(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((200, 200), dtype=np.float32)
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((50, 50), dtype=np.float32)
        out = layer.forward(x, training=True)
        dx = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal((out > 0), (dx > 0))

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
