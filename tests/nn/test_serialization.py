"""Tests for model checkpointing and history export."""

import numpy as np
import pytest

from repro.core import EpochMetrics, History
from repro.models import tiny_alexnet, tiny_resnet
from repro.nn.serialization import load_model, save_model


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "model.npz"
        source = tiny_alexnet(num_classes=4, image_size=8, seed=1)
        save_model(source, path)
        target = tiny_alexnet(num_classes=4, image_size=8, seed=2)
        load_model(target, path)
        for a, b in zip(source.parameters(), target.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_loaded_model_predicts_identically(self, tmp_path):
        path = tmp_path / "model.npz"
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        source = tiny_alexnet(num_classes=4, image_size=8, seed=1)
        save_model(source, path)
        target = tiny_alexnet(num_classes=4, image_size=8, seed=9)
        load_model(target, path)
        np.testing.assert_allclose(
            source.forward(x, training=False),
            target.forward(x, training=False),
            rtol=1e-6,
        )

    def test_mismatched_architecture_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(tiny_alexnet(num_classes=4, image_size=8, seed=1), path)
        other = tiny_resnet(num_classes=4, seed=1)
        with pytest.raises(ValueError, match="does not match"):
            load_model(other, path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(tiny_alexnet(num_classes=4, image_size=8, seed=1), path)
        other = tiny_alexnet(num_classes=6, image_size=8, seed=1)
        with pytest.raises(ValueError):
            load_model(other, path)


class TestHistoryExport:
    def make_history(self):
        history = History(label="qsgd4/mpi/4gpu")
        history.append(
            EpochMetrics(
                epoch=0, train_loss=1.5, train_accuracy=0.4,
                test_accuracy=0.35, comm_bytes=1000, wall_seconds=2.0,
            )
        )
        history.append(
            EpochMetrics(
                epoch=1, train_loss=0.9, train_accuracy=0.7,
                test_accuracy=0.65, comm_bytes=1000, wall_seconds=2.1,
            )
        )
        return history

    def test_roundtrip(self):
        history = self.make_history()
        restored = History.from_dict(history.to_dict())
        assert restored.label == history.label
        assert restored.final_test_accuracy == history.final_test_accuracy
        assert restored.series("train_loss") == history.series("train_loss")

    def test_json_serializable(self):
        import json

        text = json.dumps(self.make_history().to_dict())
        assert "qsgd4/mpi/4gpu" in text
