"""Tests for im2col/col2im and softmax helpers."""

import numpy as np
import pytest

from repro.nn import col2im, conv_output_size, im2col, log_softmax, softmax


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 1) == 4
        assert conv_output_size(8, 2, 2, 0) == 4

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shapes(self):
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        cols, (oh, ow) = im2col(x, kernel=3, stride=1, pad=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 3 * 9)

    def test_content_identity_kernel(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols, _ = im2col(x, kernel=1, stride=1, pad=0)
        np.testing.assert_array_equal(cols.reshape(-1), x.reshape(-1))

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols, _ = im2col(x, kernel=3, stride=2, pad=1)
        y = rng.normal(size=cols.shape).astype(np.float32)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 2, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 7))
        np.testing.assert_allclose(softmax(logits).sum(axis=1), 1.0,
                                   rtol=1e-6)

    def test_stable_for_large_logits(self):
        logits = np.array([[1000.0, 1000.0]])
        out = softmax(logits)
        np.testing.assert_allclose(out, 0.5)

    def test_log_softmax_consistent(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            log_softmax(logits), np.log(softmax(logits)), atol=1e-6
        )
