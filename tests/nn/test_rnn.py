"""Tests for the LSTM layer."""

import numpy as np
import pytest

from repro.nn import Lstm, TakeLast
from repro.nn.gradcheck import check_layer_gradients


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLstm:
    def test_gradients(self, rng):
        layer = Lstm(4, 6, "l", rng)
        errors = check_layer_gradients(layer, rng.normal(size=(2, 5, 4)))
        assert max(errors.values()) < 1e-6

    def test_output_shape(self, rng):
        layer = Lstm(3, 8, "l", rng)
        out = layer.forward(np.zeros((4, 7, 3), dtype=np.float32))
        assert out.shape == (4, 7, 8)

    def test_wrong_input_size_rejected(self, rng):
        layer = Lstm(3, 8, "l", rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 7, 5), dtype=np.float32))

    def test_forget_bias_initialized_to_one(self, rng):
        layer = Lstm(3, 8, "l", rng)
        np.testing.assert_array_equal(layer.bias.data[8:16], 1.0)
        np.testing.assert_array_equal(layer.bias.data[:8], 0.0)

    def test_state_integrates_over_time(self, rng):
        # a constant non-zero input must produce evolving hidden states
        layer = Lstm(2, 4, "l", rng)
        x = np.ones((1, 6, 2), dtype=np.float32)
        out = layer.forward(x)
        steps = [out[0, t] for t in range(6)]
        assert not np.allclose(steps[0], steps[-1])

    def test_parameter_count(self, rng):
        layer = Lstm(10, 20, "l", rng)
        expected = 10 * 80 + 20 * 80 + 80
        assert sum(p.size for p in layer.parameters()) == expected


class TestTakeLast:
    def test_selects_final_step(self):
        layer = TakeLast()
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        np.testing.assert_array_equal(layer.forward(x), x[:, -1, :])

    def test_backward_routes_to_final_step(self):
        layer = TakeLast()
        x = np.zeros((2, 3, 4), dtype=np.float32)
        layer.forward(x)
        dx = layer.backward(np.ones((2, 4), dtype=np.float32))
        assert dx[:, -1, :].sum() == 8.0
        assert dx[:, :-1, :].sum() == 0.0
