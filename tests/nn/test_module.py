"""Tests for Parameter / Module / Sequential plumbing."""

import numpy as np

from repro.nn import Dense, ReLU, Sequential
from repro.nn.loss import accuracy, softmax_cross_entropy, top_k_accuracy
from repro.nn.module import Parameter


class TestParameter:
    def test_grad_initialized_to_zero(self):
        p = Parameter("w", np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert p.grad.sum() == 0.0

    def test_zero_grad(self):
        p = Parameter("w", np.ones(4))
        p.grad += 5.0
        p.zero_grad()
        assert p.grad.sum() == 0.0

    def test_data_cast_to_float32(self):
        p = Parameter("w", np.ones(3, dtype=np.float64))
        assert p.data.dtype == np.float32


class TestSequential:
    def test_collects_parameters_in_order(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Dense(4, 8, "a", rng), ReLU(), Dense(8, 2, "b", rng)
        )
        names = [p.name for p in model.parameters()]
        assert names == ["a.W", "a.b", "b.W", "b.b"]

    def test_parameter_count(self):
        rng = np.random.default_rng(0)
        model = Sequential(Dense(4, 8, "a", rng))
        assert model.parameter_count() == 4 * 8 + 8

    def test_forward_backward_chain(self):
        rng = np.random.default_rng(0)
        model = Sequential(
            Dense(4, 8, "a", rng), ReLU(), Dense(8, 2, "b", rng)
        )
        x = rng.normal(size=(3, 4)).astype(np.float32)
        out = model.forward(x)
        assert out.shape == (3, 2)
        dx = model.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert any(p.grad.any() for p in model.parameters())

    def test_zero_grad_clears_all(self):
        rng = np.random.default_rng(0)
        model = Sequential(Dense(4, 2, "a", rng))
        x = rng.normal(size=(3, 4)).astype(np.float32)
        model.backward_input = model.forward(x)
        model.backward(np.ones((3, 2), dtype=np.float32))
        model.zero_grad()
        assert all(not p.grad.any() for p in model.parameters())

    def test_append(self):
        model = Sequential()
        model.append(ReLU())
        assert len(model.layers) == 1


class TestLosses:
    def test_cross_entropy_value_uniform(self):
        logits = np.zeros((4, 10), dtype=np.float32)
        labels = np.array([0, 1, 2, 3])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == np.float32(np.log(10)).item() or abs(
            loss - np.log(10)
        ) < 1e-5

    def test_cross_entropy_gradient_sums_to_zero(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 5)).astype(np.float32)
        labels = rng.integers(0, 5, size=6)
        _, dlogits = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(dlogits.sum(axis=1), 0.0, atol=1e-6)

    def test_cross_entropy_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4)).astype(np.float64)
        labels = np.array([1, 0, 3])
        _, dlogits = softmax_cross_entropy(logits, labels)
        eps = 1e-5
        for i in range(3):
            for j in range(4):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric = (
                    softmax_cross_entropy(plus, labels)[0]
                    - softmax_cross_entropy(minus, labels)[0]
                ) / (2 * eps)
                assert dlogits[i, j] == np.float32(numeric) or abs(
                    dlogits[i, j] - numeric
                ) < 1e-4

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]], dtype=np.float32)
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 1])) == 0.5

    def test_top_k_accuracy(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]], dtype=np.float32)
        assert top_k_accuracy(logits, np.array([2]), k=3) == 1.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0
