"""Shared test configuration.

PYTHONHASHSEED: the engines' bit-identity guarantees must not depend
on dict/set iteration order, and the CI parity jobs pin
``PYTHONHASHSEED=0`` to prove it.  Setting the variable here cannot
re-seed *this* interpreter (CPython reads it once at startup), but it
is inherited by every process the suite spawns — in particular the
process engine's spawn-context rank workers — so parent and children
hash identically even when the parent was launched unseeded.  Tests
that compare against a subprocess therefore see one deterministic
ordering on both sides.
"""

import os

os.environ.setdefault("PYTHONHASHSEED", "0")
