"""Restart reconciliation in-process, runner entry point, serve CLI."""

import os
import signal
import subprocess
import sys
import threading
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.serve import JobSpec, JobState, JobStore, ServeDaemon
from repro.serve.runner import main as runner_main

from .conftest import SLOW_SPEC, TINY_SPEC, drive_to_terminal


def seeded_store(tmp_path, spec=TINY_SPEC, **fields):
    store = JobStore(tmp_path / "root")
    record = store.submit(JobSpec.from_dict(spec))
    if fields:
        store.update(record.job_id, **fields)
    return store, record.job_id


class TestRescan:
    def test_dead_pid_requeues_and_resumes(self, tmp_path):
        # a pid that is long gone: settle must requeue, and the next
        # admission runs the job to completion
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        store, job_id = seeded_store(
            tmp_path, state=JobState.RUNNING, pid=probe.pid, restarts=0
        )
        with ServeDaemon(store.root, max_ranks=2) as daemon:
            record = daemon.store.get(job_id)
            assert record.state == JobState.QUEUED
            assert record.restarts == 1
            final = drive_to_terminal(daemon, job_id)
        assert final.state == JobState.SUCCEEDED

    def test_recycled_pid_is_not_killed(self, tmp_path):
        # our own (alive) pid recorded against the job: the cmdline
        # check must recognise it is not a runner and leave it alone
        store, job_id = seeded_store(
            tmp_path, state=JobState.RUNNING, pid=os.getpid()
        )
        with ServeDaemon(store.root, max_ranks=2) as daemon:
            assert daemon.store.get(job_id).state == JobState.QUEUED

    def test_live_orphan_runner_is_killed_before_requeue(self, tmp_path):
        store, job_id = seeded_store(tmp_path, SLOW_SPEC)
        # double-fork so the runner is reparented to init, exactly like
        # a runner whose daemon was SIGKILLed (and so the zombie is not
        # ours to reap)
        launcher = subprocess.run(
            [sys.executable, "-c",
             "import subprocess, sys\n"
             "child = subprocess.Popen(\n"
             "    [sys.executable, '-m', 'repro.serve.runner',\n"
             "     sys.argv[1]],\n"
             "    stdout=subprocess.DEVNULL,\n"
             "    stderr=subprocess.STDOUT)\n"
             "print(child.pid)",
             str(store.job_dir(job_id))],
            capture_output=True, text=True, check=True, timeout=30,
        )
        orphan_pid = int(launcher.stdout)
        store.update(job_id, state=JobState.RUNNING, pid=orphan_pid)
        try:
            with ServeDaemon(store.root, max_ranks=2) as daemon:
                # rescan SIGKILLed the verified orphan and requeued
                with pytest.raises(ProcessLookupError):
                    os.kill(orphan_pid, 0)
                assert daemon.store.get(job_id).state == JobState.QUEUED
        finally:
            try:
                os.kill(orphan_pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    def test_exhausted_restarts_evict(self, tmp_path):
        store, job_id = seeded_store(
            tmp_path, state=JobState.RUNNING, pid=None, restarts=3
        )
        with ServeDaemon(store.root, max_ranks=2) as daemon:
            record = daemon.store.get(job_id)
        assert record.state == JobState.EVICTED
        assert "without writing a result" in record.error

    def test_cancel_requested_while_queued_finalised(self, tmp_path):
        store, job_id = seeded_store(tmp_path, cancel_requested=True)
        with ServeDaemon(store.root, max_ranks=2) as daemon:
            assert daemon.store.get(job_id).state == JobState.CANCELLED

    def test_existing_result_is_honoured_over_requeue(self, tmp_path):
        store, job_id = seeded_store(
            tmp_path, state=JobState.RUNNING, pid=None
        )
        from repro.serve import write_json_atomic

        write_json_atomic(
            store.result_path(job_id),
            {"state": "succeeded", "digest": "cafe"},
        )
        with ServeDaemon(store.root, max_ranks=2) as daemon:
            record = daemon.store.get(job_id)
        assert record.state == JobState.SUCCEEDED
        assert record.result["digest"] == "cafe"


class TestRunnerMain:
    @pytest.fixture(autouse=True)
    def restore_sigterm(self):
        previous = signal.getsignal(signal.SIGTERM)
        yield
        signal.signal(signal.SIGTERM, previous)

    def test_main_trains_job_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_DAEMON_PID", raising=False)
        store, job_id = seeded_store(tmp_path)
        assert runner_main([str(store.job_dir(job_id))]) == 0
        assert store.read_result(job_id)["state"] == "succeeded"

    def test_main_usage_error(self, capsys):
        assert runner_main([]) == 2
        assert "usage" in capsys.readouterr().err


class TestServeCli:
    @pytest.fixture(autouse=True)
    def restore_signals(self):
        previous = [
            (signum, signal.getsignal(signum))
            for signum in (signal.SIGTERM, signal.SIGINT)
        ]
        yield
        for signum, handler in previous:
            signal.signal(signum, handler)

    def test_drain_runs_seeded_store_to_terminal(self, tmp_path, capsys):
        store, job_id = seeded_store(tmp_path)
        code = cli_main([
            "serve", "--root", str(store.root), "--port", "0",
            "--max-ranks", "2", "--poll-interval", "0.01", "--drain",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "serving on http://" in output
        assert "shut down cleanly" in output
        assert store.read_result(job_id)["state"] == "succeeded"

    def test_bad_max_ranks_exits_2(self, tmp_path, capsys):
        code = cli_main([
            "serve", "--root", str(tmp_path / "root"), "--max-ranks", "0",
        ])
        assert code == 2
        assert "max_ranks" in capsys.readouterr().err

    def test_unknown_queue_rejected_by_argparse(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "serve", "--root", str(tmp_path / "root"),
                "--queue", "lifo",
            ])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestFollowStream:
    def test_follow_streams_until_terminal(self, api):
        daemon, base = api
        record = daemon.submit(SLOW_SPEC)
        lines = []
        done = threading.Event()

        def follow():
            url = base + f"/jobs/{record.job_id}/metrics?follow=1"
            with urllib.request.urlopen(url, timeout=120) as stream:
                for raw in stream:
                    lines.append(raw)
            done.set()

        thread = threading.Thread(target=follow, daemon=True)
        thread.start()
        drive_to_terminal(daemon, record.job_id)
        assert done.wait(timeout=60), "follow stream never closed"
        thread.join(timeout=10)
        # every epoch line plus the phase totals arrived live
        assert len(lines) == SLOW_SPEC["epochs"] + 1
