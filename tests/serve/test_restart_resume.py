"""Daemon crash recovery: SIGKILL mid-flight, restart, resume, digests.

The acceptance bar for the serve subsystem: a daemon killed with
SIGKILL while jobs are running must, on restart, finish every job with
a ``History.digest()`` equal to the job's uninterrupted single-run
counterpart, and at least one interrupted job must provably resume
from an on-disk checkpoint rather than restart from scratch.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import JobSpec, JobState, JobStore, TERMINAL_STATES
from repro.serve.runner import run_job

from .conftest import SLOW_SPEC, TINY_SPEC, http_json

SRC = Path(__file__).resolve().parents[2] / "src"

#: (spec, priority) batch mixing sizes and priorities; the slow jobs
#: are the ones the SIGKILL will interrupt mid-flight
BATCH = [
    (SLOW_SPEC, 5),
    ({**SLOW_SPEC, "world_size": 2}, 1),
    (TINY_SPEC, 0),
    ({**TINY_SPEC, "world_size": 2}, 3),
    (TINY_SPEC, 9),
    (SLOW_SPEC, 0),
]


def reference_digest(spec, tmp_path, tag):
    """Digest of an uninterrupted in-process run of ``spec``."""
    store = JobStore(tmp_path / f"ref-{tag}")
    record = store.submit(JobSpec.from_dict(spec))
    assert run_job(store.job_dir(record.job_id)) == 0
    return store.read_result(record.job_id)["digest"]


def start_daemon(root, *extra):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--root", str(root),
         "--port", "0", "--max-ranks", "2",
         "--poll-interval", "0.02", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": str(SRC)},
    )
    banner = process.stdout.readline()
    assert "serving on http://" in banner, banner
    port = int(banner.split("http://", 1)[1].split("/")[0]
               .rsplit(":", 1)[1].split()[0].rstrip(")"))
    return process, port


def wait_for(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"{message} not reached within {timeout}s")


@pytest.mark.slow
def test_sigkill_restart_resumes_bit_identically(tmp_path):
    references = {}
    for index, (spec, _) in enumerate(BATCH):
        key = json.dumps(spec, sort_keys=True)
        if key not in references:
            references[key] = reference_digest(spec, tmp_path, index)

    root = tmp_path / "root"
    process, port = start_daemon(root)
    base = f"http://127.0.0.1:{port}"
    try:
        job_ids = []
        for spec, priority in BATCH:
            code, body = http_json(
                base + "/jobs", {"spec": spec, "priority": priority}
            )
            assert code == 201
            job_ids.append(body["job_id"])

        # observe the store read-only from this process: kill once a
        # slow job is mid-flight with at least one checkpoint on disk
        slow_ids = [
            job_id for job_id, (spec, _) in zip(job_ids, BATCH)
            if spec["epochs"] == SLOW_SPEC["epochs"]
        ]

        def slow_job_mid_flight():
            store = JobStore(root)
            for job_id in slow_ids:
                record = store.get(job_id)
                if record.state != JobState.RUNNING:
                    continue
                if any(store.checkpoint_dir(job_id).glob("ckpt-*.npz")):
                    return True
            return False

        wait_for(slow_job_mid_flight, message="slow job mid-flight")
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)

    # orphaned runners notice the dead daemon via getppid() and exit
    # on their own, without writing a result
    def no_runners_left():
        return not any(
            "repro.serve.runner" in path.read_bytes().decode(
                errors="replace")
            for path in Path("/proc").glob("[0-9]*/cmdline")
            if path.is_file()
        )

    wait_for(no_runners_left, timeout=30, message="orphan runner exit")

    # restart in drain mode: rescan requeues the interrupted jobs and
    # the daemon exits once everything is terminal
    drained, _ = start_daemon(root, "--drain")
    output = drained.stdout.read()
    assert drained.wait(timeout=300) == 0, output
    assert "shut down cleanly" in output

    store = JobStore(root)
    records = {job_id: store.get(job_id) for job_id in job_ids}
    assert all(r.state in TERMINAL_STATES for r in records.values())
    assert all(
        r.state == JobState.SUCCEEDED for r in records.values()
    ), {job_id: (r.state, r.error) for job_id, r in records.items()}

    for job_id, (spec, _) in zip(job_ids, BATCH):
        expected = references[json.dumps(spec, sort_keys=True)]
        assert records[job_id].result["digest"] == expected, job_id

    resumed = [
        job_id for job_id, record in records.items()
        if record.result["resumed_from_step"] is not None
        and record.result["resumed_from_step"] > 0
    ]
    assert resumed, "no job resumed from a checkpoint after the kill"
    assert any(records[job_id].restarts >= 1 for job_id in resumed)
