"""Queue ordering, admission control, and registry error conventions."""

import pytest

from repro.serve import (
    QUEUE_NAMES,
    SCHEDULER_NAMES,
    JobRecord,
    JobSpec,
    make_queue,
    make_scheduler,
)

from .conftest import TINY_SPEC


def job(seq, priority=0, world_size=1):
    spec = JobSpec.from_dict({**TINY_SPEC, "world_size": world_size})
    return JobRecord(job_id=f"job-{seq:06d}", seq=seq,
                     priority=priority, spec=spec)


class TestRegistries:
    def test_queue_names_registered(self):
        for name in QUEUE_NAMES:
            assert make_queue(name).name == name

    def test_scheduler_names_registered(self):
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name).name == name

    def test_unknown_queue_value_error_with_choices(self):
        with pytest.raises(ValueError, match="unknown queue 'lifo'"):
            make_queue("lifo")
        with pytest.raises(ValueError, match=r"'priority', 'fifo'"):
            make_queue("lifo")

    def test_unknown_scheduler_value_error_with_choices(self):
        with pytest.raises(ValueError, match="unknown scheduler 'edf'"):
            make_scheduler("edf")
        with pytest.raises(ValueError, match=r"'first-fit', 'strict'"):
            make_scheduler("edf")


class TestQueueOrder:
    def test_priority_queue_orders_by_priority_then_fifo(self):
        records = [job(0, 1), job(1, 5), job(2, 5), job(3, 0)]
        ordered = make_queue("priority").order(records)
        assert [r.seq for r in ordered] == [1, 2, 0, 3]

    def test_fifo_queue_ignores_priority(self):
        records = [job(2, 9), job(0, 0), job(1, 5)]
        ordered = make_queue("fifo").order(records)
        assert [r.seq for r in ordered] == [0, 1, 2]


class TestAdmission:
    def test_first_fit_packs_around_wide_head_of_line(self):
        # head needs 4 ranks but only 2 are free: first-fit admits the
        # small jobs behind it, strict admits nothing
        records = [job(0, world_size=4), job(1), job(2), job(3)]
        first_fit = make_scheduler("first-fit").admit(records, 2)
        assert [r.seq for r in first_fit] == [1, 2]
        strict = make_scheduler("strict").admit(records, 2)
        assert strict == []

    def test_budget_is_ranks_not_jobs(self):
        records = [job(0, world_size=2), job(1, world_size=2), job(2)]
        admitted = make_scheduler("first-fit").admit(records, 3)
        assert [r.seq for r in admitted] == [0, 2]

    def test_exact_fit_consumes_all_ranks(self):
        records = [job(0, world_size=2), job(1, world_size=1)]
        for name in SCHEDULER_NAMES:
            admitted = make_scheduler(name).admit(records, 3)
            assert [r.seq for r in admitted] == [0, 1]

    def test_no_free_ranks_admits_nothing(self):
        for name in SCHEDULER_NAMES:
            assert make_scheduler(name).admit([job(0)], 0) == []
