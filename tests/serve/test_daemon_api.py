"""In-process daemon: lifecycle, admission, cancellation, REST API."""

import json

import pytest

from repro.serve import JobSpec, JobState, ServeDaemon
from repro.serve.runner import run_job

from .conftest import (
    SLOW_SPEC,
    TINY_SPEC,
    drive_to_terminal,
    drive_until,
    http_json,
)


class TestDaemonLifecycle:
    def test_job_runs_to_succeeded_with_digest(self, daemon):
        record = daemon.submit(TINY_SPEC)
        assert record.state == JobState.QUEUED
        final = drive_to_terminal(daemon, record.job_id)
        assert final.state == JobState.SUCCEEDED
        assert final.result["digest"]
        assert final.result["epochs_trained"] == TINY_SPEC["epochs"]
        assert final.result["resumed_from_step"] is None
        lines = [
            json.loads(line)
            for line in daemon.store.metrics_path(record.job_id)
            .read_text().splitlines()
        ]
        assert [line["type"] for line in lines] == [
            "epoch", "phase_totals"
        ]
        assert lines[0]["epoch"] == 0

    def test_admission_respects_rank_budget(self, daemon):
        wide = daemon.submit({**SLOW_SPEC, "world_size": 2})
        narrow = daemon.submit(TINY_SPEC)
        daemon.step()
        assert daemon.store.get(wide.job_id).state == JobState.RUNNING
        # the pool (max_ranks=2) is full: the narrow job must wait
        assert daemon.store.get(narrow.job_id).state == JobState.QUEUED
        assert daemon.running_ranks() == 2
        drive_to_terminal(daemon, narrow.job_id)
        assert daemon.store.get(narrow.job_id).state == JobState.SUCCEEDED

    def test_priority_wins_over_fifo(self, daemon):
        low = daemon.submit(TINY_SPEC, priority=0)
        high = daemon.submit({**TINY_SPEC, "world_size": 2}, priority=9)
        daemon.step()
        assert daemon.store.get(high.job_id).state == JobState.RUNNING
        assert daemon.store.get(low.job_id).state == JobState.QUEUED

    def test_oversized_world_size_rejected_at_submit(self, daemon):
        with pytest.raises(ValueError, match="exceeds the pool"):
            daemon.submit({**TINY_SPEC, "world_size": 64})

    def test_config_error_surfaces_as_failed_with_traceback(self, daemon):
        # passes spec validation, but TrainingConfig (built in the
        # runner) rejects batch_size < world_size
        record = daemon.submit(
            {**TINY_SPEC, "world_size": 2, "batch_size": 1}
        )
        final = drive_to_terminal(daemon, record.job_id)
        assert final.state == JobState.FAILED
        assert "batch_size" in final.result["traceback"]

    def test_timeout_evicts_running_job(self, daemon):
        record = daemon.submit({**SLOW_SPEC, "timeout_s": 0.2})
        final = drive_to_terminal(daemon, record.job_id)
        assert final.state == JobState.EVICTED
        assert "timeout_s" in final.error

    def test_cancel_while_queued_never_runs(self, daemon):
        blocker = daemon.submit({**SLOW_SPEC, "world_size": 2})
        queued = daemon.submit(TINY_SPEC)
        daemon.step()
        cancelled = daemon.cancel(queued.job_id)
        assert cancelled.state == JobState.CANCELLED
        drive_to_terminal(daemon, blocker.job_id)
        final = daemon.store.get(queued.job_id)
        assert final.state == JobState.CANCELLED
        assert final.started_at is None and final.pid is None

    def test_cancel_while_running_stops_at_step_boundary(self, daemon):
        record = daemon.submit(SLOW_SPEC)
        # wait until the runner has streamed at least one epoch, so the
        # SIGTERM is guaranteed to hit a process that is mid-training
        # (not one still importing, where the default handler wins)
        drive_until(
            daemon,
            lambda: daemon.store.metrics_path(record.job_id).exists(),
        )
        daemon.cancel(record.job_id)
        final = drive_to_terminal(daemon, record.job_id)
        assert final.state == JobState.CANCELLED
        # the runner stopped cooperatively and reported itself
        assert final.result["state"] == "cancelled"

    def test_cancel_is_idempotent_and_unknown_raises(self, daemon):
        record = daemon.submit(TINY_SPEC)
        daemon.cancel(record.job_id)
        again = daemon.cancel(record.job_id)
        assert again.state == JobState.CANCELLED
        with pytest.raises(KeyError):
            daemon.cancel("job-424242")

    def test_drain_mode_returns_once_all_terminal(self, tmp_path):
        with ServeDaemon(tmp_path / "root", max_ranks=2,
                         poll_interval=0.01) as daemon:
            a = daemon.submit(TINY_SPEC)
            b = daemon.submit(TINY_SPEC)
            daemon.serve_forever(drain=True)
            states = {
                daemon.store.get(r.job_id).state for r in (a, b)
            }
        assert states == {JobState.SUCCEEDED}

    def test_constructor_validates_knobs(self, tmp_path):
        with pytest.raises(ValueError, match="max_ranks must be >= 1"):
            ServeDaemon(tmp_path / "a", max_ranks=0)
        with pytest.raises(ValueError, match="unknown queue"):
            ServeDaemon(tmp_path / "b", queue="lifo")
        with pytest.raises(ValueError, match="unknown scheduler"):
            ServeDaemon(tmp_path / "c", scheduler="edf")


class TestRunnerInProcess:
    def test_run_job_writes_result_and_metrics(self, tmp_path):
        from repro.serve import JobStore

        store = JobStore(tmp_path / "root")
        record = store.submit(JobSpec.from_dict(TINY_SPEC))
        assert run_job(store.job_dir(record.job_id)) == 0
        result = store.read_result(record.job_id)
        assert result["state"] == "succeeded"
        assert result["digest"]
        assert store.metrics_path(record.job_id).exists()

    def test_run_job_without_record_fails_cleanly(self, tmp_path):
        assert run_job(tmp_path) == 2

    def test_cooperative_cancel_flag(self, tmp_path):
        from repro.serve import JobStore

        store = JobStore(tmp_path / "root")
        record = store.submit(JobSpec.from_dict(SLOW_SPEC))
        exit_code = run_job(
            store.job_dir(record.job_id),
            cancel_flag={"cancel": True},
        )
        assert exit_code == 1
        assert store.read_result(record.job_id)["state"] == "cancelled"


class TestRestApi:
    def test_submit_status_list_cancel_session(self, api):
        daemon, base = api
        code, record = http_json(
            base + "/jobs",
            {"spec": TINY_SPEC, "priority": 2},
        )
        assert code == 201
        job_id = record["job_id"]
        assert record["state"] == "queued"

        code, status = http_json(base + f"/jobs/{job_id}")
        assert code == 200 and status["priority"] == 2

        drive_to_terminal(daemon, job_id)
        code, status = http_json(base + f"/jobs/{job_id}")
        assert status["state"] == "succeeded"
        assert status["result"]["digest"]

        code, listing = http_json(base + "/jobs?state=succeeded")
        assert [j["job_id"] for j in listing["jobs"]] == [job_id]

        code, cancelled = http_json(
            base + f"/jobs/{job_id}/cancel", method="POST"
        )
        # cancelling a terminal job is an idempotent no-op
        assert code == 200 and cancelled["state"] == "succeeded"

    def test_healthz_reports_pool_and_counts(self, api):
        daemon, base = api
        code, health = http_json(base + "/healthz")
        assert code == 200
        assert health["ok"] and health["max_ranks"] == 2
        assert health["queue"] == "priority"
        assert health["scheduler"] == "first-fit"

    def test_metrics_endpoint_streams_ndjson(self, api):
        daemon, base = api
        _, record = http_json(base + "/jobs", {"spec": TINY_SPEC})
        drive_to_terminal(daemon, record["job_id"])
        import urllib.request

        with urllib.request.urlopen(
            base + f"/jobs/{record['job_id']}/metrics"
        ) as response:
            assert response.headers["Content-Type"] == (
                "application/x-ndjson"
            )
            lines = response.read().decode().splitlines()
        assert json.loads(lines[0])["type"] == "epoch"
        assert json.loads(lines[-1])["type"] == "phase_totals"

    def test_trace_roundtrip(self, api):
        daemon, base = api
        _, record = http_json(
            base + "/jobs", {"spec": {**TINY_SPEC, "trace": True}}
        )
        code, body = http_json(base + f"/jobs/{record['job_id']}/trace")
        assert code == 404  # not finished yet
        drive_to_terminal(daemon, record["job_id"])
        code, trace = http_json(base + f"/jobs/{record['job_id']}/trace")
        assert code == 200
        assert trace["traceEvents"]

    def test_error_statuses(self, api):
        daemon, base = api
        code, body = http_json(base + "/jobs/job-424242")
        assert code == 404 and "unknown job" in body["error"]
        code, body = http_json(base + "/nope")
        assert code == 404
        code, body = http_json(
            base + "/jobs", {"spec": {**TINY_SPEC, "gpus": 2}}
        )
        assert code == 400 and "unknown spec fields" in body["error"]
        code, body = http_json(base + "/jobs", {"priority": 1})
        assert code == 400 and "spec" in body["error"]
        code, body = http_json(
            base + "/jobs", {"spec": {**TINY_SPEC, "world_size": 99}}
        )
        assert code == 400 and "max_ranks" in body["error"]
