"""Shared helpers for the serve-layer tests: tiny specs, HTTP client."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import TERMINAL_STATES, ServeDaemon

#: a job small enough to finish in well under a second
TINY_SPEC = {
    "model": "alexnet",
    "scheme": "32bit",
    "world_size": 1,
    "batch_size": 16,
    "epochs": 1,
    "train_samples": 16,
    "test_samples": 8,
    "image_size": 8,
}

#: a job long enough to be observably mid-flight (many checkpointed
#: steps), used by the cancel / kill / resume tests
SLOW_SPEC = {
    "model": "alexnet",
    "scheme": "qsgd4",
    "world_size": 1,
    "batch_size": 16,
    "epochs": 30,
    "train_samples": 64,
    "test_samples": 16,
    "image_size": 8,
}


def http_json(url, payload=None, method=None):
    """One JSON request; returns (status_code, parsed body)."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def drive_until(daemon, predicate, timeout=60.0, interval=0.02):
    """Tick ``daemon.step()`` until ``predicate()`` or fail the test."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        daemon.step()
        if predicate():
            return
        time.sleep(interval)
    pytest.fail(f"condition not reached within {timeout}s")


def drive_to_terminal(daemon, job_id, timeout=60.0):
    drive_until(
        daemon,
        lambda: daemon.store.get(job_id).state in TERMINAL_STATES,
        timeout=timeout,
    )
    return daemon.store.get(job_id)


@pytest.fixture
def daemon(tmp_path):
    with ServeDaemon(tmp_path / "root", max_ranks=2) as instance:
        yield instance


@pytest.fixture
def api(daemon):
    host, port = daemon.start_api()
    return daemon, f"http://{host}:{port}"
