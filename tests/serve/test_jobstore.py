"""Job store: atomic writes, rescan, and state-transition persistence."""

import json

import pytest

from repro.serve import (
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobState,
    JobStore,
    read_json,
    write_json_atomic,
)

from .conftest import TINY_SPEC


def make_store(tmp_path):
    return JobStore(tmp_path / "root")


class TestAtomicity:
    def test_write_leaves_no_tmp_files(self, tmp_path):
        store = make_store(tmp_path)
        record = store.submit(JobSpec.from_dict(TINY_SPEC))
        files = sorted(
            p.name for p in store.job_dir(record.job_id).iterdir()
        )
        assert files == ["record.json"]

    def test_torn_tmp_file_is_ignored_and_swept(self, tmp_path):
        store = make_store(tmp_path)
        record = store.submit(JobSpec.from_dict(TINY_SPEC))
        # a writer SIGKILLed mid-write leaves a torn tmp next to the
        # last good record; rescan must read the record and sweep the
        # leftover
        torn = store.job_dir(record.job_id) / ".record.json.tmp999"
        torn.write_text('{"state": "half-writ')
        rescanned = JobStore(store.root)
        assert rescanned.get(record.job_id).state == JobState.QUEUED
        assert rescanned.sweep_tmp() == 1
        assert not torn.exists()

    def test_torn_record_is_skipped_on_rescan(self, tmp_path):
        store = make_store(tmp_path)
        keep = store.submit(JobSpec.from_dict(TINY_SPEC))
        broken = store.jobs_dir / "job-999999"
        broken.mkdir()
        (broken / "record.json").write_text('{"job_id": "job-9')
        rescanned = JobStore(store.root)
        assert [r.job_id for r in rescanned.list()] == [keep.job_id]

    def test_read_json_missing_and_torn(self, tmp_path):
        assert read_json(tmp_path / "absent.json") is None
        torn = tmp_path / "torn.json"
        torn.write_text("{")
        assert read_json(torn) is None

    def test_write_json_atomic_roundtrip(self, tmp_path):
        path = write_json_atomic(tmp_path / "deep" / "result.json",
                                 {"state": "succeeded", "digest": "abc"})
        assert json.loads(path.read_text())["digest"] == "abc"


class TestRescan:
    def test_restart_rescan_preserves_order_and_seq(self, tmp_path):
        store = make_store(tmp_path)
        submitted = [
            store.submit(JobSpec.from_dict(TINY_SPEC), priority=p)
            for p in (0, 5, 1)
        ]
        rescanned = JobStore(store.root)
        assert [r.job_id for r in rescanned.list()] == [
            r.job_id for r in submitted
        ]
        assert [r.priority for r in rescanned.list()] == [0, 5, 1]
        # the seq counter continues after the highest persisted seq,
        # so post-restart submissions keep FIFO ordering
        fresh = rescanned.submit(JobSpec.from_dict(TINY_SPEC))
        assert fresh.seq == submitted[-1].seq + 1

    def test_update_persists_across_reload(self, tmp_path):
        store = make_store(tmp_path)
        record = store.submit(JobSpec.from_dict(TINY_SPEC))
        store.update(record.job_id, state=JobState.RUNNING, pid=4321)
        rescanned = JobStore(store.root)
        found = rescanned.get(record.job_id)
        assert (found.state, found.pid) == (JobState.RUNNING, 4321)

    def test_unknown_record_field_rejected(self, tmp_path):
        store = make_store(tmp_path)
        record = store.submit(JobSpec.from_dict(TINY_SPEC))
        with pytest.raises(AttributeError, match="no field"):
            store.update(record.job_id, bogus=1)


class TestTransitions:
    def test_cancelled_while_queued_vs_running(self, tmp_path):
        store = make_store(tmp_path)
        queued = store.submit(JobSpec.from_dict(TINY_SPEC))
        running = store.submit(JobSpec.from_dict(TINY_SPEC))
        store.update(running.job_id, state=JobState.RUNNING, pid=1234)
        # queued -> cancelled is immediate and terminal
        store.update(
            queued.job_id,
            state=JobState.CANCELLED,
            cancel_requested=True,
            finished_at=1.0,
        )
        # running -> cancel is a *request*; the job stays running (and
        # occupies its ranks) until the runner stops
        store.update(running.job_id, cancel_requested=True)
        assert store.get(queued.job_id).terminal
        live = store.get(running.job_id)
        assert live.state == JobState.RUNNING and not live.terminal
        assert live.cancel_requested

    def test_terminal_states_are_exactly_the_documented_four(self):
        assert TERMINAL_STATES == {
            JobState.SUCCEEDED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.EVICTED,
        }

    def test_record_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        record = store.submit(JobSpec.from_dict(TINY_SPEC), priority=7)
        clone = JobRecord.from_dict(record.to_dict())
        assert clone == record

    def test_counts(self, tmp_path):
        store = make_store(tmp_path)
        a = store.submit(JobSpec.from_dict(TINY_SPEC))
        store.submit(JobSpec.from_dict(TINY_SPEC))
        store.update(a.job_id, state=JobState.SUCCEEDED)
        assert store.counts() == {"succeeded": 1, "queued": 1}

    def test_spec_rejects_unknown_fields_by_name(self):
        with pytest.raises(ValueError, match="unknown spec fields: gpus"):
            JobSpec.from_dict({**TINY_SPEC, "gpus": 4})

    def test_spec_validates_model_and_sizes(self):
        with pytest.raises(ValueError, match="unknown model"):
            JobSpec.from_dict({**TINY_SPEC, "model": "gpt5"})
        with pytest.raises(ValueError, match="epochs must be >= 1"):
            JobSpec.from_dict({**TINY_SPEC, "epochs": 0})
        with pytest.raises(ValueError, match="timeout_s must be positive"):
            JobSpec.from_dict({**TINY_SPEC, "timeout_s": -1})
