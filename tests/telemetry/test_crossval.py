"""Measured-vs-simulated cross-validation of phase breakdowns."""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.nn import Dense, Sequential
from repro.telemetry import PhaseBreakdown, Tracer, cross_validate

FEATURES = 32
CLASSES = 4


def measured_breakdown(scheme, exchange, world_size=2):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(48, FEATURES)).astype(np.float32)
    y = rng.integers(0, CLASSES, size=48).astype(np.int64)
    tracer = Tracer()
    config = TrainingConfig(
        scheme=scheme,
        exchange=exchange,
        world_size=world_size,
        batch_size=16,
        lr=0.01,
        seed=0,
        tracer=tracer,
    )
    model = Sequential(Dense(FEATURES, CLASSES, "fc", rng))
    with ParallelTrainer(model, config) as trainer:
        history = trainer.fit(x, y, x, y, epochs=1)
    assert not history.failed
    return PhaseBreakdown.from_history(history)


@pytest.mark.parametrize("exchange", ["mpi", "nccl"])
def test_cross_validate_live_cell(exchange):
    world_size = 4
    breakdown = measured_breakdown("qsgd4", exchange, world_size)
    validation = cross_validate(
        breakdown,
        scheme="qsgd4",
        exchange=exchange,
        world_size=world_size,
        network="AlexNet",
    )
    assert validation.exchange == exchange
    assert validation.predicted_makespan_seconds > 0.0
    phases = [row.phase for row in validation.rows]
    assert phases == ["compute", "quantize", "communicate"]
    assert sum(r.measured_fraction for r in validation.rows) == (
        pytest.approx(1.0)
    )
    assert sum(r.simulated_fraction for r in validation.rows) == (
        pytest.approx(1.0)
    )
    for row in validation.rows:
        assert -1.0 <= row.fraction_gap <= 1.0
    report = validation.report()
    assert "cross-validation" in report
    assert "predicted exchange makespan" in report


def test_mpi_makespan_uses_discrete_event_timeline():
    # the MPI prediction comes from the pipeline timeline, which
    # accounts overlap — it must undercut the serialized phase sum
    breakdown = PhaseBreakdown(
        label="synthetic", wall_seconds=1.0, phase_seconds={"compute": 1.0}
    )
    mpi = cross_validate(
        breakdown, scheme="qsgd4", exchange="mpi", world_size=8
    )
    serialized = (
        mpi.simulated.quantize_seconds + mpi.simulated.comm_seconds
    )
    assert mpi.predicted_makespan_seconds != pytest.approx(serialized)

    nccl = cross_validate(
        breakdown, scheme="qsgd4", exchange="nccl", world_size=8
    )
    assert nccl.predicted_makespan_seconds == pytest.approx(
        nccl.simulated.quantize_seconds + nccl.simulated.comm_seconds
    )


def test_gap_gate_and_tolerance_report():
    from repro.telemetry.crossval import DEFAULT_FRACTION_GAP_TOLERANCE

    breakdown = PhaseBreakdown(
        label="synthetic", wall_seconds=1.0, phase_seconds={"compute": 1.0}
    )
    validation = cross_validate(
        breakdown, scheme="qsgd4", exchange="nccl", world_size=8
    )
    assert validation.max_fraction_gap == max(
        abs(row.fraction_gap) for row in validation.rows
    )
    assert validation.passes(tolerance=1.0)
    assert not validation.passes(
        tolerance=validation.max_fraction_gap / 2
    )
    assert validation.passes() == (
        validation.max_fraction_gap <= DEFAULT_FRACTION_GAP_TOLERANCE
    )
    assert "max phase-share gap" in validation.report()
