"""Unit tests for the tracer, null tracer, and typed counters."""

import threading
import time

from repro.telemetry import NULL_TRACER, Counters, NullTracer, Tracer
from repro.telemetry.tracer import _NULL_SPAN, COORDINATOR


class TestTracer:
    def test_span_records_event(self):
        tracer = Tracer()
        with tracer.span("compute", 0):
            time.sleep(0.001)
        events = tracer.events()
        assert len(events) == 1
        event = events[0]
        assert event.name == "compute"
        assert event.track == 0
        assert event.duration_ns > 0
        assert event.seconds >= 0.001

    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("compute", 1):
            with tracer.span("encode", 1):
                pass
        names = [e.name for e in tracer.events()]
        # inner span completes (and records) first
        assert names == ["encode", "compute"]

    def test_default_track_is_coordinator(self):
        tracer = Tracer()
        with tracer.span("barrier"):
            pass
        assert tracer.events()[0].track == COORDINATOR

    def test_phase_seconds_aggregates_per_track(self):
        tracer = Tracer()
        with tracer.span("compute", 0):
            pass
        with tracer.span("compute", 1):
            pass
        with tracer.span("encode", 0):
            pass
        assert set(tracer.phase_seconds()) == {"compute", "encode"}
        assert set(tracer.phase_seconds(track=1)) == {"compute"}
        assert tracer.tracks() == [0, 1]

    def test_span_records_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("compute", 0):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer.events()) == 1

    def test_concurrent_recording_is_thread_safe(self):
        tracer = Tracer()
        spans_per_thread = 200

        def record(track):
            for _ in range(spans_per_thread):
                with tracer.span("compute", track):
                    pass

        threads = [
            threading.Thread(target=record, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.events()) == 4 * spans_per_thread
        assert tracer.tracks() == [0, 1, 2, 3]

    def test_clear_resets_events_and_counters(self):
        tracer = Tracer()
        with tracer.span("compute", 0):
            pass
        tracer.counters.count_encode(10)
        tracer.clear()
        assert tracer.events() == []
        assert tracer.counters.encode_calls == 0


class TestNullTracer:
    def test_is_disabled_and_shares_one_span(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.counter_sink is None
        span_a = NULL_TRACER.span("compute", 0)
        span_b = NULL_TRACER.span("encode", 3)
        assert span_a is span_b is _NULL_SPAN
        with span_a:
            pass
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.phase_seconds() == {}

    def test_fresh_instance_matches_singleton(self):
        tracer = NullTracer()
        assert tracer.span("compute") is _NULL_SPAN
        tracer.clear()  # no-op, must not raise


class TestCounters:
    def test_wire_accounting(self):
        counters = Counters()
        counters.count_wire(0, 1, 100)
        counters.count_wire(1, 0, 50)
        counters.count_wire(0, 2, 25)
        assert counters.wire_bytes_total == 175
        assert counters.bytes_sent(0) == 125
        assert counters.bytes_received(0) == 50
        assert counters.bytes_received(2) == 25

    def test_codec_and_wait_counters(self):
        counters = Counters()
        counters.count_encode(64)
        counters.count_encode(64)
        counters.count_decode(64)
        counters.add_barrier_wait(0.5)
        counters.add_straggler_stall(0.25)
        snapshot = counters.to_dict()
        assert snapshot["encode_calls"] == 2
        assert snapshot["decode_calls"] == 1
        assert snapshot["encoded_bytes"] == 128
        assert snapshot["barrier_wait_seconds"] == 0.5
        assert snapshot["straggler_stall_seconds"] == 0.25
