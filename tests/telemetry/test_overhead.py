"""Overhead guard: the NullTracer path is free enough to ignore.

Instrumentation went into the steady-state hot path (engines and
exchanges), so these tests pin the disabled-tracing cost: the shared
null span must stay a trivial context manager whose total per-step
cost is under 2% of the measured step time, and the traced call sites
must not add steady-state allocations to the zero-allocation
workspace path.
"""

import time
import tracemalloc

import numpy as np

from repro.core.algorithm import SynchronousStep
from repro.core.config import TrainingConfig
from repro.telemetry import NULL_TRACER

WORLD_SIZE = 4

#: AlexNet-like shapes, scaled down from benchmarks/bench_hotpath.py
PARAM_SHAPES = {
    "conv1": (32, 75),
    "fc1": (64, 512),
    "fc2": (10, 64),
}


class _Param:
    def __init__(self, name, shape):
        self.name = name
        self.shape = shape
        self.size = int(np.prod(shape))
        self.kind = "param"


def build_step() -> SynchronousStep:
    config = TrainingConfig(
        scheme="qsgd4",
        exchange="nccl",
        world_size=WORLD_SIZE,
        batch_size=16,
        seed=0,
    )
    return SynchronousStep(
        config, [_Param(n, s) for n, s in PARAM_SHAPES.items()]
    )


def make_grads():
    rngs = [np.random.default_rng(100 + r) for r in range(WORLD_SIZE)]
    return {
        name: [
            rngs[r].normal(size=shape).astype(np.float32)
            for r in range(WORLD_SIZE)
        ]
        for name, shape in PARAM_SHAPES.items()
    }


def run_steps(step, grads, n):
    for _ in range(n):
        for name in PARAM_SHAPES:
            step.aggregate(name, grads[name])


def test_untraced_step_uses_null_tracer():
    step = build_step()
    assert step.tracer is NULL_TRACER
    assert step.exchange.tracer is NULL_TRACER
    assert step.exchange.traffic.counters is None


def test_null_span_cost_is_under_two_percent_of_step_time():
    step = build_step()
    grads = make_grads()
    run_steps(step, grads, 3)  # warm the workspace arena

    timed_steps = 20
    t0 = time.perf_counter()
    run_steps(step, grads, timed_steps)
    step_seconds = (time.perf_counter() - t0) / timed_steps

    # cost of one disabled instrumentation point, measured directly
    span = NULL_TRACER.span
    iterations = 100_000
    t0 = time.perf_counter()
    for _ in range(iterations):
        with span("encode", 0):
            pass
    per_span = (time.perf_counter() - t0) / iterations

    # instrumentation points one step crosses: per parameter, the NCCL
    # path opens an encode and a decode span per rank, plus a counter
    # None-check alongside each — bound generously at twice that
    spans_per_step = 2 * 2 * WORLD_SIZE * len(PARAM_SHAPES)
    overhead = per_span * spans_per_step
    assert overhead < 0.02 * step_seconds, (
        f"null tracing costs {overhead * 1e6:.1f}us of a "
        f"{step_seconds * 1e6:.1f}us step "
        f"({overhead / step_seconds:.2%} > 2%)"
    )


def test_null_instrumentation_points_allocate_nothing():
    # the exact operations the hot path performs per instrumentation
    # point when tracing is off: open/close the shared null span and
    # check the counter sink for None — zero allocations, measured
    span = NULL_TRACER.span
    sink = NULL_TRACER.counter_sink
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    for _ in range(10_000):
        with span("encode", 3):
            pass
        if sink is not None:  # pragma: no cover - sink is None
            sink.count_encode(0)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # a constant few bytes of loop machinery is fine; any per-call
    # allocation (e.g. a fresh span object) would show as >= 280 KB
    assert after - before < 512


def _steady_state_alloc_per_step(steps: int = 10) -> float:
    step = build_step()
    grads = make_grads()
    run_steps(step, grads, 5)  # arenas reach steady state first
    tracemalloc.start()
    tracemalloc.reset_peak()
    before, _ = tracemalloc.get_traced_memory()
    run_steps(step, grads, steps)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return max(0, peak - before) / steps


def test_null_traced_hot_path_allocation_stays_at_baseline():
    # the workspace hot path's only steady-state allocations are the
    # pre-existing LinkTraffic transfer records plus, under the
    # compiled kernel backends, transient ctypes argument objects
    # (~KBs/step, vs ~MBs on the allocating path); disabled tracing
    # must not add to them — a span object per encode/decode per rank
    # would add tens of KB/step and show up immediately here
    per_step = _steady_state_alloc_per_step()
    assert per_step < 32_768, f"{per_step:.0f} B/step allocated"
