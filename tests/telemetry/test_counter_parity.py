"""Traced counters agree with the exchange's own traffic accounting.

The tracer's wire-byte counters are fed from
:meth:`repro.comm.message.LinkTraffic.record` itself, so parity with
``History.comm_bytes`` is structural — these tests pin it across the
scheme x exchange x engine grid, together with the codec-call
invariant (every encoded message is decoded exactly once).
"""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.nn import Dense, Sequential
from repro.telemetry import Tracer

SCHEMES = ("32bit", "qsgd4", "1bit")
EXCHANGES = ("mpi", "nccl", "alltoall")
ENGINES = ("sequential", "threaded")

FEATURES = 64
CLASSES = 4


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, FEATURES)).astype(np.float32)
    y = rng.integers(0, CLASSES, size=64).astype(np.int64)
    return x, y


def linear_model(seed=1):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(FEATURES, CLASSES, "fc", rng))


def traced_run(dataset, scheme, exchange, engine, world_size=2, epochs=2):
    x, y = dataset
    tracer = Tracer()
    config = TrainingConfig(
        scheme=scheme,
        exchange=exchange,
        engine=engine,
        world_size=world_size,
        batch_size=16,
        lr=0.01,
        seed=0,
        tracer=tracer,
    )
    with ParallelTrainer(linear_model(), config) as trainer:
        history = trainer.fit(x, y, x, y, epochs=epochs)
    return tracer, history


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("exchange", EXCHANGES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_wire_bytes_match_history(dataset, scheme, exchange, engine):
    tracer, history = traced_run(dataset, scheme, exchange, engine)
    assert not history.failed
    counters = tracer.counters
    # traffic is reset per epoch, counters accumulate across the run:
    # their total must equal the sum of the per-epoch byte records
    assert counters.wire_bytes_total == history.total_comm_bytes
    assert counters.wire_bytes_total > 0
    # every encoded message crosses the exchange and is decoded once
    assert counters.encode_calls == counters.decode_calls
    assert counters.encoded_bytes == counters.decoded_bytes
    if exchange != "nccl" or scheme != "32bit":
        # the full-precision NCCL ring sums without a codec round-trip;
        # every other cell runs encode/decode kernels on the live path
        assert counters.encode_calls > 0


@pytest.mark.parametrize("engine", ENGINES)
def test_alltoall_wire_is_fanout_of_encoded_bytes(dataset, engine):
    # every encoded message goes to all K peers; the self-link is
    # skipped, so wire bytes are exactly (K-1) x encoded bytes
    world_size = 3
    tracer, history = traced_run(
        dataset, "qsgd4", "alltoall", engine, world_size=world_size
    )
    assert not history.failed
    counters = tracer.counters
    assert counters.encoded_bytes > 0
    assert (
        counters.wire_bytes_total
        == counters.encoded_bytes * (world_size - 1)
    )


def test_per_rank_wire_split_covers_total(dataset):
    tracer, _history = traced_run(dataset, "qsgd4", "mpi", "sequential")
    counters = tracer.counters
    sent = sum(counters.bytes_sent(r) for r in range(2))
    received = sum(counters.bytes_received(r) for r in range(2))
    assert sent == counters.wire_bytes_total
    assert received == counters.wire_bytes_total


def test_epoch_phase_seconds_populated_when_traced(dataset):
    tracer, history = traced_run(dataset, "qsgd4", "mpi", "sequential")
    for metrics in history.epochs:
        assert metrics.compute_seconds is not None
        assert metrics.compute_seconds > 0.0
        assert metrics.encode_seconds > 0.0
        assert metrics.decode_seconds > 0.0
    totals = history.phase_totals()
    assert totals["compute"] == pytest.approx(
        sum(m.compute_seconds for m in history.epochs)
    )
    # sequential engine, free wire: phases partition the step, so the
    # traced busy time can never exceed the measured wall time
    wall = sum(m.wall_seconds for m in history.epochs)
    assert sum(totals.values()) <= wall


def test_untraced_run_leaves_phase_fields_none(dataset):
    x, y = dataset
    config = TrainingConfig(
        scheme="qsgd4", exchange="mpi", world_size=2, batch_size=16,
        lr=0.01, seed=0,
    )
    with ParallelTrainer(linear_model(), config) as trainer:
        history = trainer.fit(x, y, x, y, epochs=1)
    assert history.epochs[0].compute_seconds is None
    assert history.phase_totals() == {
        name: 0.0
        for name in ("compute", "encode", "transfer", "decode", "barrier")
    }
    assert "compute_seconds" not in history.to_dict()["epochs"][0]
