"""Tracing is observation-only: traced runs are bit-identical.

The tentpole invariant of the telemetry subsystem — no instrumentation
point touches gradient data, RNG streams, or exchange ordering, so
enabling the tracer changes nothing about the trajectory.
"""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.nn import Dense, Sequential
from repro.telemetry import Tracer

FEATURES = 32
CLASSES = 4


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(48, FEATURES)).astype(np.float32)
    y = rng.integers(0, CLASSES, size=48).astype(np.int64)
    return x, y


def run(dataset, scheme, exchange, engine, tracer):
    x, y = dataset
    rng = np.random.default_rng(3)
    model = Sequential(Dense(FEATURES, CLASSES, "fc", rng))
    config = TrainingConfig(
        scheme=scheme,
        exchange=exchange,
        engine=engine,
        world_size=2,
        batch_size=16,
        lr=0.05,
        seed=0,
        tracer=tracer,
    )
    with ParallelTrainer(model, config) as trainer:
        history = trainer.fit(x, y, x, y, epochs=2)
        params = [p.data.copy() for p in trainer.parameters]
    return history, params


@pytest.mark.parametrize(
    "scheme,exchange,engine",
    [
        ("qsgd4", "mpi", "sequential"),
        ("qsgd4", "nccl", "threaded"),
        ("1bit", "mpi", "threaded"),
        ("1bit*", "alltoall", "sequential"),
        ("32bit", "nccl", "sequential"),
    ],
)
def test_traced_run_is_bit_identical(dataset, scheme, exchange, engine):
    baseline_history, baseline = run(dataset, scheme, exchange, engine, None)
    tracer = Tracer()
    traced_history, traced = run(dataset, scheme, exchange, engine, tracer)

    assert len(tracer.events()) > 0  # tracing actually happened
    for expected, got in zip(baseline, traced):
        np.testing.assert_array_equal(expected, got)
    assert baseline_history.series("train_loss") == (
        traced_history.series("train_loss")
    )
    assert baseline_history.series("comm_bytes") == (
        traced_history.series("comm_bytes")
    )
