"""Chrome-trace export schema and phase-breakdown report tests."""

import json

import pytest

from repro.core import EpochMetrics, History
from repro.telemetry import PhaseBreakdown, Tracer, write_chrome_trace
from repro.telemetry.export import chrome_trace
from repro.telemetry.tracer import COORDINATOR


def traced_tracer():
    tracer = Tracer()
    with tracer.span("compute", 0):
        with tracer.span("encode", 0):
            pass
    with tracer.span("compute", 1):
        pass
    with tracer.span("barrier", COORDINATOR):
        pass
    tracer.counters.count_wire(0, 1, 42)
    return tracer


class TestChromeTrace:
    def test_schema(self):
        doc = chrome_trace(traced_tracer())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 4
        # one thread_name metadata record per track (rank 0, 1, coord)
        assert len(metadata) == 3
        for event in complete:
            assert event["cat"] == "phase"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 0
            assert event["tid"] >= 0

    def test_coordinator_track_remapped_after_ranks(self):
        doc = chrome_trace(traced_tracer())
        names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert names == {"rank 0": 0, "rank 1": 1, "coordinator": 2}

    def test_timestamps_relative_to_first_span(self):
        doc = chrome_trace(traced_tracer())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0.0

    def test_counters_embedded(self):
        doc = chrome_trace(traced_tracer())
        assert doc["otherData"]["counters"]["wire_bytes_total"] == 42

    def test_kernel_backend_stamped(self):
        from repro.quantization import kernels

        doc = chrome_trace(traced_tracer())
        assert doc["otherData"]["kernel_backend"] == kernels.backend_name()
        assert (
            doc["otherData"]["counters"]["kernel_backend"]
            == kernels.backend_name()
        )

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_tracer(), str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_empty_tracer_exports(self):
        doc = chrome_trace(Tracer())
        assert doc["traceEvents"] == []


class TestPhaseBreakdown:
    def test_rows_sum_to_wall_time(self):
        breakdown = PhaseBreakdown(
            label="cell",
            wall_seconds=10.0,
            phase_seconds={"compute": 6.0, "encode": 1.5, "decode": 0.5},
        )
        rows = dict(breakdown.rows())
        assert rows["other"] == pytest.approx(2.0)
        assert breakdown.total_seconds == pytest.approx(10.0)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_overlapped_phases_clamp_other_at_zero(self):
        # threaded engine: traced busy time can exceed wall time
        breakdown = PhaseBreakdown(
            label="cell", wall_seconds=1.0, phase_seconds={"compute": 4.0}
        )
        assert breakdown.other_seconds == 0.0
        assert breakdown.total_seconds == pytest.approx(4.0)

    def test_from_tracer(self):
        breakdown = PhaseBreakdown.from_tracer(
            traced_tracer(), wall_seconds=1.0, label="cell"
        )
        assert breakdown.phase_seconds["compute"] > 0.0
        assert breakdown.phase_seconds["transfer"] == 0.0
        assert "phase breakdown [cell]" in breakdown.report()

    def test_from_history_uses_phase_totals(self):
        history = History(label="qsgd4/mpi/2gpu")
        history.append(
            EpochMetrics(
                epoch=0,
                train_loss=1.0,
                train_accuracy=0.5,
                test_accuracy=0.5,
                comm_bytes=100,
                wall_seconds=2.0,
                compute_seconds=1.0,
                encode_seconds=0.25,
            )
        )
        history.append(
            EpochMetrics(
                epoch=1,
                train_loss=0.9,
                train_accuracy=0.6,
                test_accuracy=0.6,
                comm_bytes=100,
                wall_seconds=2.0,
                compute_seconds=1.0,
                encode_seconds=0.25,
            )
        )
        breakdown = PhaseBreakdown.from_history(history)
        assert breakdown.label == "qsgd4/mpi/2gpu"
        assert breakdown.wall_seconds == pytest.approx(4.0)
        assert breakdown.phase_seconds["compute"] == pytest.approx(2.0)
        assert breakdown.phase_seconds["encode"] == pytest.approx(0.5)
