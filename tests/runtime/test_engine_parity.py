"""Bit-identity of the threaded/process and sequential execution engines.

The keystone guarantee of the runtime: for every scheme × exchange ×
world-size combination, running the rank workers concurrently — as
threads sharing the interpreter or as spawned OS processes exchanging
through shared memory — must produce *exactly* the parameter
trajectory of the sequential rank loop — same losses, same test
accuracies, same bytes on the wire, bit-identical weights.  Any
nondeterminism in the barrier, bucketing, RNG streams, reduction
order, or (for the process engine) the spawn/pickle boundary breaks
this.
"""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.data import make_image_dataset
from repro.models import tiny_alexnet, tiny_resnet


@pytest.fixture(scope="module")
def dataset():
    return make_image_dataset(
        num_classes=4,
        train_samples=64,
        test_samples=32,
        image_size=8,
        noise=0.8,
        seed=0,
    )


def run(engine, dataset, *, scheme, exchange, world_size, model=tiny_alexnet,
        epochs=2, comm_bucket_bytes=1 << 12, policy="static"):
    config = TrainingConfig(
        scheme=scheme,
        policy=policy,
        exchange=exchange,
        world_size=world_size,
        batch_size=16,
        lr=0.01,
        seed=0,
        engine=engine,
        comm_bucket_bytes=comm_bucket_bytes,
    )
    with ParallelTrainer(
        model(num_classes=4, image_size=8, seed=1)
        if model is tiny_alexnet
        else model(num_classes=4, seed=1),
        config,
    ) as trainer:
        history = trainer.fit(
            dataset.train_x,
            dataset.train_y,
            dataset.test_x,
            dataset.test_y,
            epochs=epochs,
        )
        weights = {p.name: p.data.copy() for p in trainer.parameters}
    return history, weights


def assert_identical(run_a, run_b):
    history_a, weights_a = run_a
    history_b, weights_b = run_b
    for attribute in ("train_loss", "test_accuracy", "comm_bytes"):
        assert history_a.series(attribute) == history_b.series(attribute), (
            f"{attribute} series diverged"
        )
    for name, data in weights_a.items():
        assert np.array_equal(data, weights_b[name]), (
            f"parameter {name} not bit-identical"
        )


#: the engines that must reproduce the sequential trajectory bit for bit
CONCURRENT_ENGINES = ["threaded", "process"]


class TestEngineParity:
    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    @pytest.mark.parametrize("world_size", [1, 2, 4])
    @pytest.mark.parametrize("exchange", ["mpi", "nccl"])
    @pytest.mark.parametrize(
        "scheme",
        ["32bit", "1bit", "qsgd4", "terngrad", "dettmers8", "dettmers8c"],
    )
    def test_matches_sequential(
        self, dataset, scheme, exchange, world_size, engine
    ):
        assert_identical(
            run(
                "sequential",
                dataset,
                scheme=scheme,
                exchange=exchange,
                world_size=world_size,
            ),
            run(
                engine,
                dataset,
                scheme=scheme,
                exchange=exchange,
                world_size=world_size,
            ),
        )

    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    def test_parity_with_batchnorm_model(self, dataset, engine):
        # BN keeps running statistics per replica; parity must survive
        # stateful layers as well as dropout (the alexnet cases)
        assert_identical(
            run(
                "sequential",
                dataset,
                scheme="qsgd4",
                exchange="mpi",
                world_size=2,
                model=tiny_resnet,
            ),
            run(
                engine,
                dataset,
                scheme="qsgd4",
                exchange="mpi",
                world_size=2,
                model=tiny_resnet,
            ),
        )

    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    def test_parity_with_tiny_buckets(self, dataset, engine):
        # one parameter per bucket maximizes overlap scheduling churn
        # (and, for the process engine, arena region count); the
        # exchange order (and RNG stream) must not care
        assert_identical(
            run(
                "sequential",
                dataset,
                scheme="qsgd4",
                exchange="mpi",
                world_size=2,
                comm_bucket_bytes=1,
            ),
            run(
                engine,
                dataset,
                scheme="qsgd4",
                exchange="mpi",
                world_size=2,
                comm_bucket_bytes=1,
            ),
        )

    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    @pytest.mark.parametrize("exchange", ["mpi", "nccl"])
    def test_parity_with_adaptive_policy(self, dataset, exchange, engine):
        # the adaptive policy routes different layers through different
        # codecs on the same wire; the per-layer assignment table must
        # be derived identically inside every engine's workers
        assert_identical(
            run(
                "sequential",
                dataset,
                scheme="qsgd4",
                exchange=exchange,
                world_size=4,
                policy="adaptive",
            ),
            run(
                engine,
                dataset,
                scheme="qsgd4",
                exchange=exchange,
                world_size=4,
                policy="adaptive",
            ),
        )

    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    def test_parity_with_unequal_shards(self, dataset, engine):
        # 64 training samples, batch 16, world 3: every step leaves
        # one rank a short shard; weighting must match exactly
        assert_identical(
            run(
                "sequential",
                dataset,
                scheme="32bit",
                exchange="mpi",
                world_size=3,
            ),
            run(
                engine,
                dataset,
                scheme="32bit",
                exchange="mpi",
                world_size=3,
            ),
        )

    def test_replicas_stay_bit_identical(self, dataset):
        config = TrainingConfig(
            scheme="qsgd4",
            world_size=4,
            batch_size=16,
            lr=0.01,
            seed=0,
            engine="threaded",
        )
        with ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        ) as trainer:
            trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=1,
            )
            reference = trainer.engine.workers[0]
            for worker in trainer.engine.workers[1:]:
                for ref_param, param in zip(
                    reference.parameters, worker.parameters
                ):
                    assert np.array_equal(ref_param.data, param.data), (
                        f"rank {worker.rank} diverged on {param.name}"
                    )
