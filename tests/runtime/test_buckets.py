"""Tests for gradient bucketing and the readiness tracker."""

import threading
import time

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.runtime import BarrierTimeout, BucketReadiness, build_buckets


def params(*sizes):
    return [
        Parameter(f"p{i}", np.zeros(size, dtype=np.float32))
        for i, size in enumerate(sizes)
    ]


class TestBuildBuckets:
    def test_reverse_order_coalescing(self):
        # cap of 40 bytes = 10 floats; reverse order is p3, p2, p1, p0
        buckets = build_buckets(params(100, 4, 4, 4), cap_bytes=40)
        assert [b.names for b in buckets] == [
            ("p3", "p2"),
            ("p1",),
            ("p0",),
        ]
        assert buckets[0].index == 0

    def test_every_parameter_in_exactly_one_bucket(self):
        inventory = params(7, 3, 900, 1, 1, 50)
        buckets = build_buckets(inventory, cap_bytes=64)
        names = [name for b in buckets for name in b.names]
        assert sorted(names) == sorted(p.name for p in inventory)
        assert len(names) == len(set(names))

    def test_oversized_parameter_gets_own_bucket(self):
        buckets = build_buckets(params(1000, 2), cap_bytes=64)
        assert buckets[0].names == ("p1",)
        assert buckets[1].names == ("p0",)
        assert buckets[1].nbytes == 4000

    def test_single_bucket_when_under_cap(self):
        buckets = build_buckets(params(2, 2, 2), cap_bytes=1 << 20)
        assert len(buckets) == 1
        assert buckets[0].names == ("p2", "p1", "p0")

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError, match="cap_bytes"):
            build_buckets(params(4), cap_bytes=0)


class TestBucketReadiness:
    def test_ready_only_when_all_ranks_delivered(self):
        buckets = build_buckets(params(4, 4), cap_bytes=4)
        tracker = BucketReadiness(buckets, world_size=2)
        tracker.mark_ready(0, ["p1"])
        with pytest.raises(BarrierTimeout) as excinfo:
            tracker.wait(0, timeout=0.05)
        assert excinfo.value.missing == (1,)
        tracker.mark_ready(1, ["p1"])
        assert tracker.wait(0, timeout=1.0) == frozenset()

    def test_duplicate_notifications_are_idempotent(self):
        buckets = build_buckets(params(4, 4), cap_bytes=1 << 20)
        tracker = BucketReadiness(buckets, world_size=2)
        for _ in range(5):
            tracker.mark_ready(0, ["p0", "p1"])
        with pytest.raises(BarrierTimeout):
            tracker.wait(0, timeout=0.05)

    def test_dead_rank_wakes_waiter_immediately(self):
        buckets = build_buckets(params(4), cap_bytes=1 << 20)
        tracker = BucketReadiness(buckets, world_size=2)

        def die_soon():
            time.sleep(0.05)
            tracker.mark_dead(1)

        threading.Thread(target=die_soon).start()
        start = time.monotonic()
        dead = tracker.wait(0, timeout=30.0)
        assert dead == frozenset({1})
        assert time.monotonic() - start < 5.0

    def test_cross_thread_readiness(self):
        buckets = build_buckets(params(4, 4, 4), cap_bytes=4)
        tracker = BucketReadiness(buckets, world_size=2)

        def worker(rank):
            for name in ("p2", "p1", "p0"):  # backward order
                time.sleep(0.01)
                tracker.mark_ready(rank, [name])

        threads = [
            threading.Thread(target=worker, args=(rank,)) for rank in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for index in range(3):
            assert tracker.wait(index, timeout=5.0) == frozenset()
        for thread in threads:
            thread.join(timeout=5)
