"""Elastic fault tolerance: retry with backoff, eviction, degradation.

Three layers under test, each with its bit-identity contract:

* a transiently-failing step is retried and the run's trajectory is
  *exactly* the no-fault trajectory (the retry rewinds the collective
  snapshot and every per-rank module RNG stream);
* a persistently-failing rank is evicted and both engines continue on
  the survivors with identical numerics;
* evicting the last rank before any step ran equals a fresh run at the
  smaller world size, and uneven reshards reweight the gradient mean
  exactly.
"""

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.data import make_image_dataset
from repro.models import tiny_alexnet
from repro.runtime import RetryPolicy, StepBarrier, TopologyChange
from repro.runtime.barrier import BarrierTimeout
from repro.telemetry import Tracer

ENGINES = ("sequential", "threaded")


@pytest.fixture(scope="module")
def dataset():
    return make_image_dataset(
        num_classes=4,
        train_samples=54,
        test_samples=24,
        image_size=8,
        noise=0.8,
        seed=3,
    )


def run(dataset, engine, *, epochs=2, world_size=3, batch_size=18,
        trace=False, barrier_timeout=10.0, **kw):
    config = TrainingConfig(
        scheme="1bit",
        exchange="mpi",
        world_size=world_size,
        batch_size=batch_size,
        lr=0.05,
        seed=7,
        engine=engine,
        barrier_timeout=barrier_timeout,
        tracer=Tracer() if trace else None,
        **kw,
    )
    with ParallelTrainer(
        tiny_alexnet(num_classes=4, image_size=8, seed=1), config
    ) as trainer:
        history = trainer.fit(
            dataset.train_x,
            dataset.train_y,
            dataset.test_x,
            dataset.test_y,
            epochs=epochs,
        )
        counters = trainer.engine.tracer.counter_sink
        weights = {
            p.name: p.data.copy()
            for p in trainer.engine.reference_worker.parameters
        }
    return history, counters, weights


def rows(history):
    return [
        (m.epoch, m.train_loss, m.train_accuracy, m.test_accuracy,
         m.comm_bytes)
        for m in history.epochs
    ]


class TestRetryPolicy:
    def test_disabled_by_default(self):
        assert not RetryPolicy().enabled
        assert RetryPolicy(max_retries=1).enabled

    def test_backoff_doubles_and_caps(self):
        state = RetryPolicy(
            max_retries=5, base_delay=0.1, max_delay=0.3, jitter=0.0
        ).make_state()
        delays = [state.backoff_delay(a) for a in range(4)]
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.3),
            pytest.approx(0.3),
        ]

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(max_retries=2, base_delay=0.1, jitter=0.5)
        a = [policy.make_state().backoff_delay(i) for i in range(2)]
        b = [policy.make_state().backoff_delay(i) for i in range(2)]
        assert a == b
        assert all(0.0 < d for d in a)

    def test_from_config(self):
        config = TrainingConfig(
            batch_size=8,
            max_retries=3,
            retry_backoff=0.2,
            seed=11,
        )
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 3
        assert policy.base_delay == 0.2
        assert policy.seed == 11

    def test_config_validates_resilience_knobs(self):
        with pytest.raises(ValueError, match="max_retries"):
            TrainingConfig(batch_size=8, max_retries=-1)
        with pytest.raises(ValueError, match="min_world_size"):
            TrainingConfig(batch_size=8, world_size=2, min_world_size=3)


class TestTopologyChange:
    def test_round_trips_through_dict(self):
        change = TopologyChange(
            step=7, rank=1, kind="crash", survivors=(0, 2), retries=2
        )
        assert TopologyChange.from_dict(change.to_dict()) == change

    def test_serializes_with_history(self):
        from repro.core import History

        history = History(label="x")
        history.topology_changes.append(
            TopologyChange(step=1, rank=0, kind="timeout", survivors=(1,))
        )
        restored = History.from_dict(history.to_dict())
        assert restored.topology_changes == history.topology_changes


class TestBarrierDeregister:
    def test_deregistered_party_no_longer_expected(self):
        barrier = StepBarrier(3, timeout=0.2)
        barrier.deregister(2)
        # the remaining two complete the rendezvous alone
        import threading

        results = []

        def waiter():
            results.append(barrier.wait(1))

        thread = threading.Thread(target=waiter)
        thread.start()
        barrier.wait(0)
        thread.join(timeout=2.0)
        assert results == [0]

    def test_deregistered_party_cannot_block_rendezvous(self):
        barrier = StepBarrier(2, timeout=0.2)
        barrier.deregister(1)
        with pytest.raises(BarrierTimeout):
            barrier.wait(1)

    def test_cannot_deregister_last_party(self):
        barrier = StepBarrier(2)
        barrier.deregister(1)
        with pytest.raises(ValueError, match="last barrier party"):
            barrier.deregister(0)


class TestTransientRetry:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_retried_step_leaves_trajectory_unchanged(
        self, dataset, engine
    ):
        reference, _, ref_weights = run(dataset, engine)
        assert not reference.failed
        history, counters, weights = run(
            dataset,
            engine,
            trace=True,
            crash_rank=1,
            crash_step=2,
            crash_transient=True,
            max_retries=2,
            retry_backoff=0.0,
        )
        assert not history.failed
        assert not history.topology_changes
        assert counters.retries_total == 1
        assert counters.retries(1) == 1
        assert counters.retries(0) == 0
        assert history.digest() == reference.digest()
        for name, data in ref_weights.items():
            assert np.array_equal(data, weights[name])

    def test_retries_exhausted_fails_fast_without_degradation(
        self, dataset
    ):
        history, counters, _ = run(
            dataset,
            "sequential",
            trace=True,
            crash_rank=1,
            crash_step=2,
            max_retries=2,
            retry_backoff=0.0,
        )
        assert history.failed
        (failure,) = history.failures
        assert failure.kind == "crash" and failure.rank == 1
        assert counters.retries_total == 2

    def test_default_config_keeps_fail_fast_contract(self, dataset):
        for engine in ENGINES:
            history, _, _ = run(
                dataset, engine, crash_rank=1, crash_step=2
            )
            assert history.failed
            (failure,) = history.failures
            assert failure.kind == "crash"
            assert failure.rank == 1
            assert failure.step == 2


class TestEviction:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_exhausted_rank_is_evicted_and_run_completes(
        self, dataset, engine
    ):
        history, counters, _ = run(
            dataset,
            engine,
            trace=True,
            crash_rank=1,
            crash_step=2,
            max_retries=1,
            retry_backoff=0.0,
            allow_degraded=True,
        )
        assert not history.failed
        (change,) = history.topology_changes
        assert change.rank == 1
        assert change.step == 2
        assert change.kind == "crash"
        assert change.survivors == (0, 2)
        assert change.retries == 1
        assert counters.evicted_ranks == [1]
        assert counters.retries_total == 1
        assert len(history.epochs) == 2

    def test_engines_agree_after_eviction(self, dataset):
        results = {
            engine: run(
                dataset,
                engine,
                crash_rank=1,
                crash_step=2,
                max_retries=1,
                retry_backoff=0.0,
                allow_degraded=True,
            )
            for engine in ENGINES
        }
        seq_history, _, seq_weights = results["sequential"]
        thr_history, _, thr_weights = results["threaded"]
        assert seq_history.digest() == thr_history.digest()
        for name, data in seq_weights.items():
            assert np.array_equal(data, thr_weights[name])

    def test_rank0_eviction_keeps_reference_replica_valid(self, dataset):
        history, _, _ = run(
            dataset,
            "threaded",
            epochs=1,
            crash_rank=0,
            crash_step=0,
            max_retries=0,
            allow_degraded=True,
        )
        assert not history.failed
        assert history.topology_changes[0].rank == 0
        assert np.isfinite(history.epochs[-1].test_accuracy)

    def test_min_world_size_blocks_eviction(self, dataset):
        history, _, _ = run(
            dataset,
            "sequential",
            world_size=2,
            batch_size=18,
            crash_rank=1,
            crash_step=0,
            max_retries=0,
            allow_degraded=True,
            min_world_size=2,
        )
        assert history.failed
        assert not history.topology_changes

    def test_straggler_beyond_timeout_evicted_as_timeout(self, dataset):
        history, _, _ = run(
            dataset,
            "threaded",
            epochs=1,
            barrier_timeout=0.3,
            straggler_ranks=(1,),
            straggler_delay=5.0,
            max_retries=0,
            allow_degraded=True,
        )
        assert not history.failed
        (change,) = history.topology_changes
        assert change.rank == 1
        assert change.kind == "timeout"
        assert change.survivors == (0, 2)


class TestDegradedNumerics:
    def test_evicting_last_rank_equals_fresh_smaller_world(self, dataset):
        # survivors 0,1 keep their rank-seeded RNG streams and get the
        # same even reshard a fresh K=2 run computes, so the degraded
        # continuation must be bit-equal to starting at K=2
        fresh, _, fresh_weights = run(
            dataset, "sequential", world_size=2, batch_size=18
        )
        assert not fresh.failed
        for engine in ENGINES:
            degraded, _, weights = run(
                dataset,
                engine,
                world_size=3,
                batch_size=18,
                crash_rank=2,
                crash_step=0,
                max_retries=0,
                allow_degraded=True,
            )
            assert not degraded.failed
            assert degraded.topology_changes[0].survivors == (0, 1)
            assert rows(degraded) == rows(fresh), engine
            for name, data in fresh_weights.items():
                assert np.array_equal(data, weights[name]), (engine, name)

    def test_uneven_reshard_scales_match_exact_global_mean(self, dataset):
        # batch 17 over 2 survivors shards 9/8; the per-rank scale must
        # be n_r * K_live / N so the aggregated mean is sum(n_r g_r)/N
        config = TrainingConfig(
            scheme="32bit",
            world_size=3,
            batch_size=17,
            lr=0.05,
            seed=7,
            engine="sequential",
            crash_rank=1,
            crash_step=0,
            max_retries=0,
            allow_degraded=True,
        )
        with ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        ) as trainer:
            x = dataset.train_x[:17]
            y = dataset.train_y[:17]
            trainer.train_step(x, y)
            engine = trainer.engine
            assert engine.live_ranks == [0, 2]
            shards = engine._shard(x, y)
            sizes = {r: shards[r][0].shape[0] for r in engine.live_ranks}
            assert sorted(sizes.values()) == [8, 9]
            scales = engine._grad_scales(shards)
            for rank in engine.live_ranks:
                expected = sizes[rank] * len(engine.live_ranks) / 17
                assert scales.get(rank, 1.0) == pytest.approx(
                    expected, abs=1e-12
                )

    def test_full_topology_has_no_scales(self, dataset):
        config = TrainingConfig(
            scheme="32bit", world_size=3, batch_size=17, seed=7
        )
        with ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1), config
        ) as trainer:
            shards = trainer.engine._shard(
                dataset.train_x[:17], dataset.train_y[:17]
            )
            # uneven shards, but the full world divides by K exactly as
            # the historical trajectory did — no reweighting
            assert trainer.engine._grad_scales(shards) == {}

    def test_uneven_degraded_run_keeps_engine_parity(self, dataset):
        results = {}
        for engine in ENGINES:
            history, _, weights = run(
                dataset,
                engine,
                world_size=3,
                batch_size=17,
                crash_rank=1,
                crash_step=1,
                max_retries=0,
                allow_degraded=True,
            )
            assert not history.failed
            results[engine] = (history, weights)
        seq_history, seq_weights = results["sequential"]
        thr_history, thr_weights = results["threaded"]
        assert seq_history.digest() == thr_history.digest()
        for name, data in seq_weights.items():
            assert np.array_equal(data, thr_weights[name])


class TestHistoryDigest:
    def make_history(self, loss=1.0):
        from repro.core import EpochMetrics, History

        history = History(label="cell")
        history.append(
            EpochMetrics(
                epoch=0,
                train_loss=loss,
                train_accuracy=0.5,
                test_accuracy=0.25,
                comm_bytes=128,
                wall_seconds=1.0,
            )
        )
        return history

    def test_stable_across_wall_time(self):
        a = self.make_history()
        b = self.make_history()
        b.epochs[0].wall_seconds = 99.0
        assert a.digest() == b.digest()

    def test_sensitive_to_trajectory(self):
        assert (
            self.make_history(1.0).digest()
            != self.make_history(1.0 + 1e-12).digest()
        )

    def test_sensitive_to_label(self):
        from repro.core import History

        assert History(label="a").digest() != History(label="b").digest()
