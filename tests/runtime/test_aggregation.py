"""Periodic synchronization: gradient accumulation and local SGD.

The aggregation tier trades synchronization frequency for wire
traffic: with ``aggregation_frequency=N`` each rank runs N micro-steps
per round and the quantized exchange happens once per round.  Two
contracts pin the tier down:

* **N=1 is the identity.**  The default frequency takes the exact
  pre-aggregation code path — every existing trajectory is reproduced
  bit for bit (covered here indirectly via engine parity at N>1 and
  directly by the CI reference-digest job).
* **N>1 is engine-invariant and crash-safe.**  Sequential, threaded
  and process engines agree bit for bit mid-round and at round
  boundaries; a checkpoint taken mid-round (accumulators part-filled,
  or local-SGD replicas diverged) resumes onto the uninterrupted
  trajectory; wire bytes scale down by exactly N when the step count
  divides the round length.
"""

import numpy as np
import pytest

from repro.core import (
    CheckpointPolicy,
    ParallelTrainer,
    SynchronousStep,
    TrainingConfig,
    latest_checkpoint,
)
from repro.data import make_image_dataset
from repro.models import tiny_alexnet
from repro.nn.module import Parameter
from repro.telemetry import Tracer


@pytest.fixture(scope="module")
def dataset():
    return make_image_dataset(
        num_classes=4,
        train_samples=64,
        test_samples=32,
        image_size=8,
        noise=0.8,
        seed=0,
    )


def make_config(**kw):
    defaults = dict(
        scheme="qsgd4",
        exchange="nccl",
        world_size=2,
        batch_size=16,
        lr=0.05,
        seed=3,
        engine="sequential",
    )
    defaults.update(kw)
    return TrainingConfig(**defaults)


def run(dataset, *, epochs=2, **kw):
    with ParallelTrainer(
        tiny_alexnet(num_classes=4, image_size=8, seed=1), make_config(**kw)
    ) as trainer:
        history = trainer.fit(
            dataset.train_x,
            dataset.train_y,
            dataset.test_x,
            dataset.test_y,
            epochs=epochs,
        )
        weights = {
            p.name: p.data.copy()
            for p in trainer.engine.reference_worker.parameters
        }
    return history, weights


def assert_identical(run_a, run_b):
    history_a, weights_a = run_a
    history_b, weights_b = run_b
    for attribute in ("train_loss", "test_accuracy", "comm_bytes"):
        assert history_a.series(attribute) == history_b.series(attribute), (
            f"{attribute} series diverged"
        )
    for name, data in weights_a.items():
        assert np.array_equal(data, weights_b[name]), (
            f"parameter {name} not bit-identical"
        )


CONCURRENT_ENGINES = ["threaded", "process"]


class TestEngineParityWithAggregation:
    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    @pytest.mark.parametrize("frequency", [2, 4, 8])
    def test_accumulation_matches_sequential(
        self, dataset, engine, frequency
    ):
        kw = dict(aggregation_frequency=frequency)
        assert_identical(
            run(dataset, engine="sequential", **kw),
            run(dataset, engine=engine, **kw),
        )

    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    @pytest.mark.parametrize(
        "scheme", ["terngrad", "dettmers8", "dettmers8c"]
    )
    def test_new_schemes_aggregate_engine_invariant(
        self, dataset, engine, scheme
    ):
        # the extension codecs must honor the same N=4 accumulation
        # contract as the original zoo, at both world sizes the CI
        # digest grid pins (N here is aggregation frequency; world
        # size 1 exercises the self-exchange fast path)
        for world_size in (1, 4):
            kw = dict(
                scheme=scheme,
                aggregation_frequency=4,
                world_size=world_size,
            )
            assert_identical(
                run(dataset, engine="sequential", **kw),
                run(dataset, engine=engine, **kw),
            )

    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    def test_local_sgd_matches_sequential(self, dataset, engine):
        # diverged replicas + delta exchange: the concurrent engines
        # must land on the sequential averaged parameters exactly
        kw = dict(
            scheme="1bit",
            exchange="mpi",
            sync_mode="local_sgd",
            momentum=0.0,
            aggregation_frequency=4,
        )
        assert_identical(
            run(dataset, engine="sequential", **kw),
            run(dataset, engine=engine, **kw),
        )

    @pytest.mark.parametrize("engine", CONCURRENT_ENGINES)
    def test_partial_final_round_is_engine_invariant(self, dataset, engine):
        # 8 steps with frequency 3: the run ends two micro-steps into
        # a round, leaving unflushed accumulators — engines must agree
        # on the partial state's trajectory too
        kw = dict(aggregation_frequency=3)
        assert_identical(
            run(dataset, engine="sequential", **kw),
            run(dataset, engine=engine, **kw),
        )


class TestWireTraffic:
    def test_wire_bytes_scale_down_by_exactly_n(self, dataset):
        # 8 steps, frequency 8: one exchange instead of eight.  Wire
        # bytes per exchange depend only on shapes and codecs, so the
        # ratio is exact, not approximate.
        n1, _ = run(dataset, aggregation_frequency=1)
        n8, _ = run(dataset, aggregation_frequency=8)
        total_n1 = sum(n1.series("comm_bytes"))
        total_n8 = sum(n8.series("comm_bytes"))
        assert total_n8 > 0
        assert total_n1 == 8 * total_n8

    def test_skipped_rounds_counted(self, dataset):
        tracer = Tracer()
        run(dataset, aggregation_frequency=4, tracer=tracer)
        counters = tracer.counter_sink
        # 8 steps / frequency 4 = 2 flushes, 6 skipped micro-steps
        assert counters.rounds_skipped == 6
        assert counters.wire_bytes_saved > 0

    def test_no_skips_at_default_frequency(self, dataset):
        tracer = Tracer()
        run(dataset, tracer=tracer)
        assert tracer.counter_sink.rounds_skipped == 0
        assert tracer.counter_sink.wire_bytes_saved == 0


class TestMidRoundCheckpoint:
    @pytest.mark.parametrize("engine", ["sequential", "threaded", "process"])
    def test_mid_round_resume_matches_uninterrupted(
        self, dataset, tmp_path, engine
    ):
        # frequency 3, 4 steps/epoch: every per-step checkpoint in
        # epoch 0 except step 2 lands mid-round with live accumulators
        kw = dict(engine=engine, aggregation_frequency=3)
        reference = run(dataset, epochs=2, **kw)
        with ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1),
            make_config(**kw),
        ) as trainer:
            trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=1,
                checkpoint=CheckpointPolicy(
                    directory=tmp_path, every_steps=1
                ),
            )
        path = latest_checkpoint(tmp_path)
        with ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1),
            make_config(**kw),
        ) as trainer:
            resumed_history = trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=2,
                resume_from=path,
            )
            resumed_weights = {
                p.name: p.data.copy()
                for p in trainer.engine.reference_worker.parameters
            }
        assert_identical(reference, (resumed_history, resumed_weights))

    def test_local_sgd_mid_round_saves_per_rank_replicas(
        self, dataset, tmp_path
    ):
        # mid-round under local SGD the replicas have diverged; the
        # checkpoint must carry each rank's parameters, and resuming
        # must land back on the uninterrupted trajectory
        kw = dict(
            scheme="1bit",
            exchange="mpi",
            sync_mode="local_sgd",
            momentum=0.0,
            aggregation_frequency=3,
        )
        reference = run(dataset, epochs=2, **kw)
        with ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1),
            make_config(**kw),
        ) as trainer:
            trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=1,
                checkpoint=CheckpointPolicy(
                    directory=tmp_path, every_steps=1
                ),
            )
            # 4 steps ran; position 4 % 3 = 1 → replicas diverged
            assert trainer.step_engine.round_position == 1
            replicas = trainer.engine.workers
            diverged = any(
                not np.array_equal(a.data, b.data)
                for a, b in zip(
                    replicas[0].parameters, replicas[1].parameters
                )
            )
            assert diverged, "replicas did not diverge mid-round"
        path = latest_checkpoint(tmp_path)
        with ParallelTrainer(
            tiny_alexnet(num_classes=4, image_size=8, seed=1),
            make_config(**kw),
        ) as trainer:
            resumed_history = trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=2,
                resume_from=path,
            )
            resumed_weights = {
                p.name: p.data.copy()
                for p in trainer.engine.reference_worker.parameters
            }
        assert_identical(reference, (resumed_history, resumed_weights))


class TestEvictionMidRound:
    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_rank_eviction_mid_round_completes(self, dataset, engine):
        # rank 1 dies at step 1 (mid-round at frequency 4); the run
        # must evict it, drop its accumulators, and finish
        history, _ = run(
            dataset,
            engine=engine,
            world_size=3,
            aggregation_frequency=4,
            crash_rank=1,
            crash_step=1,
            max_retries=1,
            retry_backoff=0.0,
            allow_degraded=True,
        )
        assert len(history.epochs) == 2

    def test_engines_agree_after_mid_round_eviction(self, dataset):
        kw = dict(
            world_size=3,
            aggregation_frequency=4,
            crash_rank=1,
            crash_step=1,
            max_retries=1,
            retry_backoff=0.0,
            allow_degraded=True,
        )
        assert_identical(
            run(dataset, engine="sequential", **kw),
            run(dataset, engine="threaded", **kw),
        )


class TestSynchronousStepAccumulation:
    def make_step(self, **kw):
        rng = np.random.default_rng(0)
        params = [
            Parameter("W", rng.normal(size=(64, 64)).astype(np.float32))
        ]
        defaults = dict(
            scheme="32bit", world_size=2, batch_size=4,
            aggregation_frequency=4,
        )
        defaults.update(kw)
        return SynchronousStep(TrainingConfig(**defaults), params)

    def test_accumulate_then_aggregate_is_grand_mean(self):
        step = self.make_step()
        rng = np.random.default_rng(1)
        micro = [
            [
                rng.normal(size=(64, 64)).astype(np.float32)
                for _ in range(2)
            ]
            for _ in range(4)
        ]
        for grads in micro[:-1]:
            step.accumulate("W", grads)
            step.advance_round()
        result = step.aggregate("W", micro[-1])
        step.advance_round()
        expected = sum(
            g.astype(np.float64) for grads in micro for g in grads
        ) / (2 * 4)
        np.testing.assert_allclose(result, expected, rtol=1e-5, atol=1e-5)
        assert step.round_position == 0

    def test_accumulators_zeroed_after_flush(self):
        step = self.make_step()
        grads = [
            np.ones((64, 64), dtype=np.float32),
            np.ones((64, 64), dtype=np.float32),
        ]
        step.accumulate("W", grads)
        step.aggregate("W", grads)
        for rank_acc in step._accumulators:
            assert not np.any(rank_acc["W"])

    def test_round_position_wraps(self):
        step = self.make_step()
        positions = []
        for _ in range(6):
            positions.append(step.round_position)
            step.advance_round()
        assert positions == [0, 1, 2, 3, 0, 1]
        # sync fires exactly on the round's last micro-step
        step2 = self.make_step()
        fires = []
        for _ in range(8):
            fires.append(step2.sync_this_step)
            step2.advance_round()
        assert fires == [False, False, False, True] * 2
