"""Straggler and crash injection: failures surface, nothing hangs."""

import time

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.nn import Dense, Sequential
from repro.runtime import FaultPlan, InjectedCrash, WorkerFailureError


def dataset(n=64, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 8)).astype(np.float32)
    y = rng.integers(0, 4, size=n).astype(np.int64)
    return x, y


def linear_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(8, 4, "fc", rng))


def make_trainer(**config_kwargs):
    config = TrainingConfig(
        scheme="32bit", batch_size=16, lr=0.01, **config_kwargs
    )
    return ParallelTrainer(linear_model(), config)


class TestFaultPlan:
    def test_inactive_by_default(self):
        assert not FaultPlan().active

    def test_straggler_delay_targets_ranks(self):
        plan = FaultPlan(straggler_ranks=(1,), straggler_delay=0.25)
        assert plan.active
        assert plan.delay_for(1, step=3) == 0.25
        assert plan.delay_for(0, step=3) == 0.0

    def test_crash_targets_one_step(self):
        plan = FaultPlan(crash_rank=2, crash_step=5)
        assert plan.should_crash(2, 5)
        assert not plan.should_crash(2, 4)
        assert not plan.should_crash(1, 5)
        with pytest.raises(InjectedCrash, match="rank 2 at step 5"):
            plan.inject(2, 5)

    def test_config_round_trip(self):
        config = TrainingConfig(
            batch_size=8,
            world_size=2,
            straggler_ranks=(0,),
            straggler_delay=0.1,
            crash_rank=1,
            crash_step=7,
        )
        plan = FaultPlan.from_config(config)
        assert plan.straggler_ranks == (0,)
        assert plan.crash_rank == 1
        assert plan.crash_step == 7

    def test_config_validates_fault_ranks(self):
        with pytest.raises(ValueError, match="crash_rank"):
            TrainingConfig(batch_size=8, world_size=2, crash_rank=2)
        with pytest.raises(ValueError, match="straggler rank"):
            TrainingConfig(
                batch_size=8, world_size=2, straggler_ranks=(5,)
            )


class TestCrashInjection:
    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_crash_surfaces_as_structured_failure(self, engine):
        x, y = dataset()
        trainer = make_trainer(
            world_size=2,
            engine=engine,
            crash_rank=1,
            crash_step=2,
            barrier_timeout=5.0,
        )
        with trainer:
            start = time.monotonic()
            history = trainer.fit(x, y, x, y, epochs=3)
            elapsed = time.monotonic() - start
        # the barrier/readiness rendezvous detects the dead rank well
        # before the timeout would run out — no hang
        assert elapsed < 5.0
        assert history.failed
        (failure,) = history.failures
        assert failure.kind == "crash"
        assert failure.rank == 1
        assert failure.step == 2
        # the epoch containing the crash is not recorded
        assert len(history.epochs) == 0

    def test_failed_engine_refuses_further_steps(self):
        x, y = dataset()
        trainer = make_trainer(
            world_size=2, engine="threaded", crash_rank=0, crash_step=0
        )
        with trainer:
            history = trainer.fit(x, y, x, y, epochs=1)
            assert history.failed
            with pytest.raises(WorkerFailureError):
                trainer.train_step(x[:16], y[:16])

    def test_failure_serializes_with_history(self):
        from repro.core import History

        x, y = dataset()
        trainer = make_trainer(
            world_size=2, engine="threaded", crash_rank=1, crash_step=0
        )
        with trainer:
            history = trainer.fit(x, y, x, y, epochs=1)
        record = history.to_dict()
        assert record["failures"][0]["kind"] == "crash"
        restored = History.from_dict(record)
        assert restored.failures == history.failures


class TestStragglerInjection:
    def test_slow_rank_beyond_timeout_is_reported(self):
        x, y = dataset(n=16)
        trainer = make_trainer(
            world_size=2,
            engine="threaded",
            straggler_ranks=(1,),
            straggler_delay=1.0,
            barrier_timeout=0.1,
        )
        with trainer:
            history = trainer.fit(x, y, x, y, epochs=1)
        assert history.failed
        (failure,) = history.failures
        assert failure.kind == "timeout"
        assert failure.rank == 1

    def test_tolerated_straggler_slows_but_completes(self):
        x, y = dataset(n=32)
        delay = 0.05
        trainer = make_trainer(
            world_size=2,
            engine="threaded",
            straggler_ranks=(0,),
            straggler_delay=delay,
            barrier_timeout=10.0,
        )
        with trainer:
            start = time.monotonic()
            history = trainer.fit(x, y, x, y, epochs=1)
            elapsed = time.monotonic() - start
        assert not history.failed
        assert len(history.epochs) == 1
        # two steps of 32/16, each gated on the injected delay
        assert elapsed >= 2 * delay

    def test_sequential_engine_also_pays_the_delay(self):
        x, y = dataset(n=16)
        trainer = make_trainer(
            world_size=2,
            engine="sequential",
            straggler_ranks=(1,),
            straggler_delay=0.05,
        )
        with trainer:
            start = time.monotonic()
            history = trainer.fit(x, y, x, y, epochs=1)
            elapsed = time.monotonic() - start
        assert not history.failed
        assert elapsed >= 0.05
