"""Link pacing: payload accounting and wall-clock semantics."""

import time

import numpy as np
import pytest

from repro.core import ParallelTrainer, TrainingConfig
from repro.nn import Dense, Sequential


def dataset(n=32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 8)).astype(np.float32)
    y = rng.integers(0, 4, size=n).astype(np.int64)
    return x, y


def linear_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(8, 4, "fc", rng))


def make_trainer(**config_kwargs):
    config = TrainingConfig(
        scheme="32bit", batch_size=16, lr=0.01, **config_kwargs
    )
    return ParallelTrainer(linear_model(), config)


class TestPayloadAccounting:
    def test_bucket_payloads_cover_all_parameters(self):
        with make_trainer(world_size=2, link_gbps=1.0) as trainer:
            engine = trainer.engine
            expected = sum(
                engine.step_engine.payload_nbytes(p.name, p.data.shape)
                for p in engine.workers[0].parameters
            )
            assert expected > 0
            assert engine.per_rank_payload_nbytes == expected
            assert (
                sum(engine.bucket_tx_nbytes.values()) == expected
            )

    def test_quantized_payload_smaller_than_fullprec(self):
        payloads = {}
        for scheme in ("32bit", "qsgd4"):
            config = TrainingConfig(
                scheme=scheme,
                batch_size=16,
                world_size=2,
                # force quantization of every matrix
                passthrough_coverage=1.0,
            )
            rng = np.random.default_rng(0)
            model = Sequential(Dense(256, 64, "fc", rng))
            with ParallelTrainer(model, config) as trainer:
                payloads[scheme] = (
                    trainer.engine.per_rank_payload_nbytes
                )
        assert payloads["qsgd4"] < payloads["32bit"] / 4

    def test_single_rank_never_paced(self):
        with make_trainer(world_size=1, link_gbps=0.001) as trainer:
            assert trainer.engine._link_bytes_per_s is None


class TestPacedWallClock:
    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_paced_step_completes_and_is_exact(self, engine):
        x, y = dataset()
        with make_trainer(world_size=2, engine=engine) as reference:
            loss_free, acc_free = reference.train_step(x[:16], y[:16])
        with make_trainer(
            world_size=2, engine=engine, link_gbps=1.0
        ) as trainer:
            loss, acc = trainer.train_step(x[:16], y[:16])
        # pacing is pure wall-clock; the numbers cannot move
        assert loss == loss_free
        assert acc == acc_free

    def test_sequential_engine_pays_wire_time_serially(self):
        x, y = dataset(n=16)
        with make_trainer(world_size=2) as probe:
            payload = probe.engine.per_rank_payload_nbytes
        # rate such that each rank's upload takes 25 ms
        link_gbps = 8.0 * payload / 0.025 / 1e9
        with make_trainer(world_size=2, link_gbps=link_gbps) as trainer:
            start = time.perf_counter()
            trainer.train_step(x, y)
            elapsed = time.perf_counter() - start
        assert elapsed >= 2 * 0.025
