"""Tests for the reusable step barrier."""

import threading
import time

import pytest

from repro.runtime import BarrierTimeout, StepBarrier


class TestRendezvous:
    def test_single_party_never_blocks(self):
        barrier = StepBarrier(1)
        assert barrier.wait(0) == 0
        assert barrier.wait(0) == 1

    def test_two_parties_meet(self):
        barrier = StepBarrier(2)
        generations = []

        def other():
            generations.append(barrier.wait(1))

        thread = threading.Thread(target=other)
        thread.start()
        generations.append(barrier.wait(0))
        thread.join(timeout=5)
        assert generations == [0, 0]

    def test_reusable_across_generations(self):
        barrier = StepBarrier(2)
        seen = []

        def worker():
            for _ in range(5):
                seen.append(barrier.wait(1))

        thread = threading.Thread(target=worker)
        thread.start()
        for _ in range(5):
            barrier.wait(0)
        thread.join(timeout=5)
        assert seen == [0, 1, 2, 3, 4]

    def test_rejects_bad_party(self):
        barrier = StepBarrier(2)
        with pytest.raises(ValueError, match="party"):
            barrier.wait(2)

    def test_rejects_bad_parties(self):
        with pytest.raises(ValueError, match="parties"):
            StepBarrier(0)


class TestTimeoutDetection:
    def test_timeout_names_missing_parties(self):
        barrier = StepBarrier(3, timeout=0.05)
        with pytest.raises(BarrierTimeout) as excinfo:
            barrier.wait(1)
        assert excinfo.value.missing == (0, 2)
        assert "0, 2" in str(excinfo.value)

    def test_break_wakes_other_waiters(self):
        barrier = StepBarrier(3)
        errors = []

        def patient():
            try:
                barrier.wait(0, timeout=30.0)
            except BarrierTimeout as exc:
                errors.append(exc)

        thread = threading.Thread(target=patient)
        thread.start()
        time.sleep(0.05)
        with pytest.raises(BarrierTimeout):
            barrier.wait(1, timeout=0.05)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert len(errors) == 1
        assert errors[0].missing == (2,)

    def test_broken_barrier_raises_immediately(self):
        barrier = StepBarrier(2, timeout=0.01)
        with pytest.raises(BarrierTimeout):
            barrier.wait(0)
        start = time.monotonic()
        with pytest.raises(BarrierTimeout):
            barrier.wait(1, timeout=30.0)
        assert time.monotonic() - start < 1.0

    def test_reset_restores_service(self):
        barrier = StepBarrier(1, timeout=0.01)
        barrier._missing_at_break = (0,)  # simulate a break
        barrier.reset()
        assert barrier.wait(0) >= 0
