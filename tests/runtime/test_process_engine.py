"""Tests for the process-per-rank engine and its shared-memory plumbing.

Covers the arena layout, the cross-process step barrier (against fake
worker handles, so death and silence are deterministic), the full
scheme x exchange bit-identity grid against the sequential engine, and
the resilience/telemetry integration points: kill -> retry, eviction,
fail-fast latching, merged per-rank trace tracks, lr scheduling, and
restoring state onto a live engine.
"""

import os

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointPolicy, TrainingCheckpoint
from repro.core.config import TrainingConfig
from repro.core.trainer import ParallelTrainer
from repro.data import make_image_dataset
from repro.models import tiny_alexnet
from repro.runtime import GradientArena, ProcessStepBarrier, arena_slots
from repro.runtime.buckets import GradientBucket
from repro.telemetry import Tracer

# -- shared-memory arena ----------------------------------------------------

SLOTS = [("w", (3, 4)), ("b", (4,)), ("scalar", ()), ("empty", (0,))]


class TestArenaSlots:
    def test_layout_follows_bucket_plan_order(self):
        buckets = [
            GradientBucket(0, ("fc2.b", "fc2.w"), 80),
            GradientBucket(1, ("fc1.w",), 64),
        ]
        shapes = {"fc1.w": (4, 4), "fc2.w": (4, 4), "fc2.b": (4,)}
        assert arena_slots(buckets, shapes) == [
            ("fc2.b", (4,)),
            ("fc2.w", (4, 4)),
            ("fc1.w", (4, 4)),
        ]


class TestGradientArena:
    def test_regions_are_aligned_and_sized(self):
        arena = GradientArena.create(SLOTS, world_size=3)
        try:
            assert arena.region_nbytes % 64 == 0
            assert arena.region_nbytes >= (12 + 4 + 1 + 0) * 4
            assert arena.total_nbytes == arena.region_nbytes * 4
        finally:
            arena.close()

    def test_created_arena_is_zero_filled(self):
        # views pin the mapping, so they must be dropped before close
        arena = GradientArena.create(SLOTS, world_size=2)
        try:
            dirty = [
                bool(view.any())
                for rank in range(2)
                for view in arena.rank_views(rank).values()
            ]
            dirty += [bool(v.any()) for v in arena.mean_views().values()]
            assert not any(dirty)
        finally:
            arena.close()

    def test_views_are_zero_copy_and_regions_disjoint(self):
        arena = GradientArena.create(SLOTS, world_size=2)
        try:
            arena.rank_views(0)["w"][...] = 1.0
            arena.rank_views(1)["w"][...] = 2.0
            arena.mean_views()["w"][...] = 3.0
            # fresh views over the same buffer observe the writes
            assert (arena.rank_views(0)["w"] == 1.0).all()
            assert (arena.rank_views(1)["w"] == 2.0).all()
            assert (arena.mean_views()["w"] == 3.0).all()
            # and the other parameters in each region stay untouched
            assert not arena.rank_views(0)["b"].any()
            shapes = {
                name: view.shape
                for name, view in arena.rank_views(0).items()
            }
            assert shapes == {
                "w": (3, 4), "b": (4,), "scalar": (), "empty": (0,)
            }
        finally:
            arena.close()

    def test_rank_bounds_are_checked(self):
        arena = GradientArena.create(SLOTS, world_size=2)
        try:
            with pytest.raises(ValueError, match="rank"):
                arena.rank_views(2)
            with pytest.raises(ValueError, match="rank"):
                arena.rank_views(-1)
        finally:
            arena.close()

    def test_close_is_idempotent_and_owner_unlinks(self):
        arena = GradientArena.create(SLOTS, world_size=1)
        name = arena.name
        arena.close()
        arena.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# -- cross-process step barrier ---------------------------------------------


class _FakeProc:
    """A stand-in worker: a sentinel pipe fd plus an aliveness flag."""

    def __init__(self):
        self.sentinel, self._death_fd = os.pipe()
        self._alive = True

    def is_alive(self):
        return self._alive

    def die(self):
        # closing the write end makes the sentinel fd readable (EOF),
        # exactly how a real process sentinel fires on exit
        self._alive = False
        os.close(self._death_fd)
        self._death_fd = None

    def close(self):
        os.close(self.sentinel)
        if self._death_fd is not None:
            os.close(self._death_fd)


@pytest.fixture()
def fake_world():
    import multiprocessing

    conns, remotes, procs = {}, {}, {}
    for rank in range(3):
        conns[rank], remotes[rank] = multiprocessing.Pipe()
        procs[rank] = _FakeProc()
    yield conns, remotes, procs
    for rank in range(3):
        conns[rank].close()
        if not remotes[rank].closed:
            remotes[rank].close()
        procs[rank].close()


class TestProcessStepBarrier:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout"):
            ProcessStepBarrier(0.0)

    def test_all_ranks_arrive(self, fake_world):
        conns, remotes, procs = fake_world
        for rank in range(3):
            remotes[rank].send(("grads", rank))
        outcome = ProcessStepBarrier(5.0).gather(conns, procs, {0, 1, 2})
        assert outcome.complete
        assert outcome.messages == {r: ("grads", r) for r in range(3)}

    def test_dead_rank_is_reported_immediately(self, fake_world):
        conns, remotes, procs = fake_world
        remotes[0].send(("grads", 0))
        remotes[2].send(("grads", 2))
        procs[1].die()
        outcome = ProcessStepBarrier(5.0).gather(conns, procs, {0, 1, 2})
        assert outcome.dead == (1,)
        assert outcome.missing == ()
        assert sorted(outcome.messages) == [0, 2]

    def test_buffered_last_message_wins_over_death(self, fake_world):
        conns, remotes, procs = fake_world
        remotes[0].send(("grads", "last words"))
        procs[0].die()
        outcome = ProcessStepBarrier(5.0).gather(conns, procs, {0})
        assert outcome.complete
        assert outcome.messages == {0: ("grads", "last words")}

    def test_silent_rank_is_named_at_the_deadline(self, fake_world):
        conns, remotes, procs = fake_world
        remotes[0].send(("grads", 0))
        outcome = ProcessStepBarrier(0.2).gather(conns, procs, {0, 1})
        assert outcome.missing == (1,)
        assert outcome.dead == ()
        assert sorted(outcome.messages) == [0]

    def test_non_pending_ranks_are_ignored(self, fake_world):
        conns, remotes, procs = fake_world
        remotes[0].send(("grads", 0))
        remotes[1].send(("stale", 1))
        outcome = ProcessStepBarrier(5.0).gather(conns, procs, {0})
        assert outcome.complete
        assert outcome.messages == {0: ("grads", 0)}
        # rank 1's message stays queued for whoever asks for it
        assert conns[1].poll(0)


# -- training-level behavior ------------------------------------------------


@pytest.fixture(scope="module")
def dataset():
    return make_image_dataset(
        num_classes=4,
        train_samples=32,
        test_samples=16,
        image_size=8,
        noise=0.8,
        seed=0,
    )


def run(engine, dataset, *, epochs=1, tracer=None, **overrides):
    config = TrainingConfig(
        scheme=overrides.pop("scheme", "1bit"),
        exchange=overrides.pop("exchange", "mpi"),
        world_size=overrides.pop("world_size", 2),
        batch_size=16,
        lr=0.05,
        seed=3,
        engine=engine,
        barrier_timeout=overrides.pop("barrier_timeout", 30.0),
        tracer=tracer,
        **overrides,
    )
    model = tiny_alexnet(num_classes=4, image_size=8, seed=1)
    with ParallelTrainer(model, config) as trainer:
        history = trainer.fit(
            dataset.train_x,
            dataset.train_y,
            dataset.test_x,
            dataset.test_y,
            epochs=epochs,
        )
        weights = [p.data.copy() for p in trainer.parameters]
    return history, weights


_REFERENCE = {}


def sequential_reference(dataset, **kw):
    key = tuple(sorted(kw.items()))
    if key not in _REFERENCE:
        _REFERENCE[key] = run("sequential", dataset, **kw)
    return _REFERENCE[key]


def assert_bit_identical(got, want):
    history, weights = got
    ref_history, ref_weights = want
    assert history.digest() == ref_history.digest()
    for array, ref in zip(weights, ref_weights):
        assert np.array_equal(array, ref)


class TestProcessEngineParityGrid:
    """Full scheme x exchange grid: process == sequential, bit for bit."""

    @pytest.mark.parametrize("exchange", ["mpi", "nccl", "alltoall"])
    @pytest.mark.parametrize(
        "scheme",
        ["32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2", "1bit*", "1bit"],
    )
    def test_matches_sequential(self, dataset, scheme, exchange):
        got = run("process", dataset, scheme=scheme, exchange=exchange)
        want = sequential_reference(
            dataset, scheme=scheme, exchange=exchange
        )
        assert_bit_identical(got, want)

    def test_lr_schedule_propagates_to_workers(self, dataset):
        got = run("process", dataset, epochs=3, lr_decay=0.8)
        want = sequential_reference(dataset, epochs=3, lr_decay=0.8)
        assert_bit_identical(got, want)


class TestProcessEngineResilience:
    def test_killed_worker_retries_to_identical_digest(self, dataset):
        want = sequential_reference(dataset, epochs=2)
        got = run(
            "process",
            dataset,
            epochs=2,
            kill_points=((1, 1),),
            max_retries=2,
            retry_backoff=0.0,
        )
        assert not got[0].failed
        assert_bit_identical(got, want)

    def test_in_process_engines_degrade_kills_to_crashes(self, dataset):
        # sequential/threaded cannot SIGKILL themselves; the same kill
        # point must surface as an injected crash with identical recovery
        want = sequential_reference(dataset, epochs=2)
        got = run(
            "sequential",
            dataset,
            epochs=2,
            kill_points=((1, 1),),
            max_retries=2,
            retry_backoff=0.0,
        )
        assert_bit_identical(got, want)

    def test_eviction_reshards_survivors(self, dataset):
        kwargs = dict(
            epochs=2,
            kill_points=((1, 1),),
            max_retries=0,
            allow_degraded=True,
            min_world_size=1,
        )
        history, _ = got = run("process", dataset, **kwargs)
        assert not history.failed
        (change,) = history.topology_changes
        assert change.rank == 1 and change.step == 1
        assert change.survivors == (0,)
        assert_bit_identical(got, sequential_reference(dataset, **kwargs))

    def test_fail_fast_latches_worker_failure(self, dataset):
        history, _ = run("process", dataset, kill_points=((1, 1),))
        assert history.failed
        (failure,) = history.failures
        assert failure.kind == "crash"
        assert failure.rank == 1

    def test_worker_error_propagates_with_original_type(self):
        # a real compute error (divergence) in a worker process must
        # reach the caller as the original exception, exactly like the
        # in-process engines — not a retryable failure and not a hang
        from repro.nn import Dense, Sequential

        rng = np.random.default_rng(0)
        x = rng.normal(size=(32, 8)).astype(np.float32)
        y = rng.integers(0, 4, size=32).astype(np.int64)
        x[3, 2] = np.nan  # a broken reader's corrupted feature
        config = TrainingConfig(
            scheme="32bit",
            exchange="mpi",
            world_size=2,
            batch_size=32,
            lr=0.05,
            seed=3,
            engine="process",
            barrier_timeout=30.0,
        )
        model = Sequential(Dense(8, 4, "fc", np.random.default_rng(0)))
        with ParallelTrainer(model, config) as trainer:
            with pytest.raises(FloatingPointError, match="diverged"):
                trainer.train_epoch(x, y)

    def test_straggler_timeout_latches_and_drains(self, dataset):
        # rank 1 outsleeps the barrier on every attempt: the step must
        # surface a timeout failure after retries, and the straggler's
        # late (stale) message must be drained between attempts so the
        # retry does not mistake it for its own arrival
        from repro.runtime.faults import WorkerFailureError

        config = TrainingConfig(
            scheme="1bit",
            exchange="mpi",
            world_size=2,
            batch_size=16,
            lr=0.05,
            seed=3,
            engine="process",
            barrier_timeout=0.5,
            straggler_ranks=(1,),
            straggler_delay=0.7,
            max_retries=1,
            retry_backoff=0.0,
        )
        model = tiny_alexnet(num_classes=4, image_size=8, seed=1)
        with ParallelTrainer(model, config) as trainer:
            history = trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=1,
            )
            assert history.failed
            (failure,) = history.failures
            assert failure.kind == "timeout"
            assert failure.rank == 1
            # the failure is latched: further stepping refuses fast
            with pytest.raises(WorkerFailureError):
                trainer.engine.train_step(
                    dataset.train_x[:16], dataset.train_y[:16]
                )

    def test_rank_lost_after_apply_is_committed_and_evicts(self, dataset):
        # a rank that delivers its gradients but dies before confirming
        # the update is a *committed* failure: the survivors already
        # applied the step, so the engine must never rewind or retry —
        # it evicts the lost rank, counts the step as done, and keeps
        # training degraded.  SIGSTOP freezes the rank while it waits
        # for the apply verdict (so it cannot race ahead), and SIGKILL
        # right before the end-of-step rendezvous makes its death
        # deterministic at exactly that barrier.
        import signal

        config = TrainingConfig(
            scheme="1bit",
            exchange="mpi",
            world_size=2,
            batch_size=16,
            lr=0.05,
            seed=3,
            engine="process",
            barrier_timeout=30.0,
            allow_degraded=True,
            min_world_size=1,
            max_retries=2,
            retry_backoff=0.0,
        )
        model = tiny_alexnet(num_classes=4, image_size=8, seed=1)
        with ParallelTrainer(model, config) as trainer:
            engine = trainer.engine
            classify = engine._classify_grads
            gather = engine._barrier.gather
            gathers = {"count": 0}

            def classify_and_freeze(step, outcome):
                payloads = classify(step, outcome)
                if step == 1:
                    os.kill(engine._procs[1].pid, signal.SIGSTOP)
                return payloads

            def gather_and_kill(conns, procs, pending):
                gathers["count"] += 1
                if gathers["count"] == 4:  # step 1's end-of-step barrier
                    proc = engine._procs[1]
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.join()
                return gather(conns, procs, pending)

            engine._classify_grads = classify_and_freeze
            engine._barrier.gather = gather_and_kill
            history = trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=2,
            )
            weights = [p.data.copy() for p in trainer.parameters]
        assert not history.failed
        (change,) = history.topology_changes
        assert change.rank == 1
        assert change.step == 1
        assert change.kind == "crash"
        assert change.survivors == (0,)
        assert all(np.all(np.isfinite(w)) for w in weights)


class TestProcessEngineTelemetry:
    def test_worker_spans_merge_into_per_rank_tracks(self, dataset):
        tracer = Tracer()
        got = run("process", dataset, tracer=tracer)
        # observation must not perturb the trajectory
        assert_bit_identical(got, sequential_reference(dataset))
        tracks = tracer.tracks()
        assert {-1, 0, 1} <= set(tracks)
        for rank in (0, 1):
            phases = tracer.phase_seconds(track=rank)
            assert phases.get("compute", 0.0) > 0.0


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_STRESS"),
    reason="stress test is nightly-only; set REPRO_STRESS=1 to run",
)
class TestProcessEngineKillStress:
    """50 steps under random SIGKILL fire: recovery must stay exact.

    Nightly-only (slow): every kill costs a respawn, and the point of
    the test is volume — enough kills spread over enough steps that
    respawn/replay races which a single-kill test cannot see get a
    chance to fire.  Timeout-bounded twice over: every rendezvous is
    capped by ``barrier_timeout``, and the test asserts its own wall
    clock so a hang fails instead of eating the nightly job.
    """

    def test_digest_equal_recovery_under_random_kills(self, dataset):
        import time

        world_size = 2
        epochs = 25  # 32 samples / batch 16 -> 2 steps/epoch = 50 steps
        rng = np.random.default_rng(2024)
        steps = sorted(
            int(s) for s in rng.choice(50, size=6, replace=False)
        )
        kill_points = tuple(
            (int(rng.integers(world_size)), step) for step in steps
        )
        want = sequential_reference(
            dataset, epochs=epochs, world_size=world_size
        )
        start = time.perf_counter()
        history, weights = got = run(
            "process",
            dataset,
            epochs=epochs,
            world_size=world_size,
            kill_points=kill_points,
            max_retries=3,
            retry_backoff=0.0,
        )
        elapsed = time.perf_counter() - start
        assert not history.failed
        assert_bit_identical(got, want)
        assert elapsed < 240.0, f"stress run took {elapsed:.0f}s"


class TestProcessEngineRestore:
    def test_restore_onto_live_engine_stops_and_respawns(
        self, dataset, tmp_path
    ):
        want = sequential_reference(dataset, epochs=3)
        config = TrainingConfig(
            scheme="1bit",
            exchange="mpi",
            world_size=2,
            batch_size=16,
            lr=0.05,
            seed=3,
            engine="process",
            barrier_timeout=30.0,
        )
        model = tiny_alexnet(num_classes=4, image_size=8, seed=1)
        with ParallelTrainer(model, config) as trainer:
            trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=1,
                checkpoint=CheckpointPolicy(
                    directory=str(tmp_path), every_steps=1
                ),
            )
            # the engine's workers are live; restoring must stop them
            # and respawn from the restored shadow state (mid-epoch:
            # step 1 of the 2-step epoch 0)
            checkpoint = TrainingCheckpoint.load(
                str(tmp_path / "ckpt-00000001.npz")
            )
            assert checkpoint.epoch == 0 and checkpoint.batches_done == 1
            history = trainer.fit(
                dataset.train_x,
                dataset.train_y,
                dataset.test_x,
                dataset.test_y,
                epochs=3,
                resume_from=checkpoint,
            )
            weights = [p.data.copy() for p in trainer.parameters]
        assert_bit_identical((history, weights), want)
