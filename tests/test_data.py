"""Tests for the synthetic datasets and loaders."""

import numpy as np
import pytest

from repro.data import (
    DATASET_STATS,
    iterate_minibatches,
    make_image_dataset,
    make_sequence_dataset,
    split_among_ranks,
)


class TestPaperDatasetStats:
    """The Figure 1 statistics table kept as reference data."""

    def test_imagenet_row(self):
        row = DATASET_STATS["ImageNet"]
        assert row["train_samples"] == 1_281_167
        assert row["classes"] == 1000
        assert row["task"] == "Image"

    def test_cifar_row(self):
        row = DATASET_STATS["CIFAR-10"]
        assert row["train_samples"] == 50_000
        assert row["validation_samples"] == 10_000

    def test_an4_row(self):
        row = DATASET_STATS["AN4"]
        assert row["train_samples"] == 948
        assert row["validation_samples"] == 130
        assert row["task"] == "Speech"


class TestImageDataset:
    def test_shapes_and_dtypes(self):
        ds = make_image_dataset(
            num_classes=4, train_samples=64, test_samples=32, image_size=8
        )
        assert ds.train_x.shape == (64, 3, 8, 8)
        assert ds.train_x.dtype == np.float32
        assert ds.train_y.dtype == np.int64
        assert ds.test_x.shape == (32, 3, 8, 8)
        assert len(ds) == 64

    def test_labels_in_range(self):
        ds = make_image_dataset(num_classes=4, train_samples=200)
        assert ds.train_y.min() >= 0
        assert ds.train_y.max() < 4

    def test_deterministic_by_seed(self):
        a = make_image_dataset(seed=3)
        b = make_image_dataset(seed=3)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_different_seeds_differ(self):
        a = make_image_dataset(seed=3)
        b = make_image_dataset(seed=4)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_classes_are_separable_but_not_trivially(self):
        # a nearest-prototype classifier should beat chance but noise
        # keeps the problem non-trivial
        ds = make_image_dataset(
            num_classes=4, train_samples=400, test_samples=200, noise=1.0,
            seed=0,
        )
        prototypes = np.stack(
            [
                ds.train_x[ds.train_y == c].mean(axis=0)
                for c in range(4)
            ]
        )
        flat_test = ds.test_x.reshape(len(ds.test_x), -1)
        flat_proto = prototypes.reshape(4, -1)
        dists = ((flat_test[:, None] - flat_proto[None]) ** 2).sum(-1)
        acc = (dists.argmin(1) == ds.test_y).mean()
        assert 0.5 < acc <= 1.0

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            make_image_dataset(class_correlation=1.0)


class TestSequenceDataset:
    def test_shapes(self):
        ds = make_sequence_dataset(
            num_classes=3, train_samples=48, test_samples=24, seq_len=10,
            features=6,
        )
        assert ds.train_x.shape == (48, 10, 6)
        assert ds.seq_shape == (10, 6)

    def test_deterministic_by_seed(self):
        a = make_sequence_dataset(seed=1)
        b = make_sequence_dataset(seed=1)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_labels_in_range(self):
        ds = make_sequence_dataset(num_classes=5)
        assert set(np.unique(ds.train_y)) <= set(range(5))


class TestLoader:
    def test_batches_cover_dataset(self):
        x = np.arange(10, dtype=np.float32).reshape(10, 1)
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, 3):
            assert bx.shape[0] == by.shape[0]
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(10))

    def test_drop_last(self):
        x = np.zeros((10, 1), dtype=np.float32)
        y = np.zeros(10, dtype=np.int64)
        batches = list(iterate_minibatches(x, y, 3, drop_last=True))
        assert all(b[0].shape[0] == 3 for b in batches)
        assert len(batches) == 3

    def test_shuffling_uses_rng(self):
        x = np.arange(10, dtype=np.float32).reshape(10, 1)
        y = np.arange(10)
        rng = np.random.default_rng(0)
        first = next(iterate_minibatches(x, y, 10, rng=rng))[1]
        assert not np.array_equal(first, np.arange(10))
        assert sorted(first.tolist()) == list(range(10))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(4), 2))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((3, 1)), np.zeros(3), 0))


class TestSharding:
    def test_shards_partition_batch(self):
        x = np.arange(10, dtype=np.float32).reshape(10, 1)
        y = np.arange(10)
        shards = split_among_ranks(x, y, 4)
        assert len(shards) == 4
        recovered = sorted(
            label for _, sy in shards for label in sy.tolist()
        )
        assert recovered == list(range(10))

    def test_shard_sizes_balanced(self):
        x = np.zeros((10, 1), dtype=np.float32)
        y = np.zeros(10, dtype=np.int64)
        sizes = [sx.shape[0] for sx, _ in split_among_ranks(x, y, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            split_among_ranks(np.zeros((4, 1)), np.zeros(4), 0)
