"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "fig16-right" in out

    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out
        assert "62.4M" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "p2.16xlarge" in out
        assert "$14.4/h" in out

    def test_run_simulator_experiment(self, capsys):
        assert main(["run", "fig16-right"]) == 0
        assert "asymptote" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_calibration_passes_threshold(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "overall mean |error|" in out

    def test_calibration_verbose_lists_cells(self, capsys):
        assert main(["calibration", "-v"]) == 0
        assert "AlexNet" in capsys.readouterr().out

    def test_insights_all_hold(self, capsys):
        assert main(["insights"]) == 0
        out = capsys.readouterr().out
        assert out.count("HOLDS") == 5
        assert "DIVERGES" not in out

    def test_compression_report(self, capsys):
        assert main(["compression"]) == 0
        out = capsys.readouterr().out
        assert "Wire bits per gradient element" in out
        assert "ResNet152" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrainCommand:
    ARGS = [
        "train",
        "--epochs", "1",
        "--train-samples", "32",
        "--test-samples", "16",
        "--batch-size", "16",
    ]

    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_train_runs_with_both_engines(self, capsys, engine):
        assert main(self.ARGS + ["--engine", engine]) == 0
        out = capsys.readouterr().out
        assert "final test accuracy" in out
        assert engine in out

    def test_train_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--engine", "warp-drive"])

    def test_injected_crash_reported_and_nonzero_exit(self, capsys):
        code = main(
            self.ARGS
            + [
                "--engine", "threaded",
                "--world-size", "2",
                "--crash-rank", "1",
                "--crash-step", "0",
                "--barrier-timeout", "5",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "rank 1 crash at step 0" in err

    def test_train_with_aggregation_frequency(self, capsys):
        code = main(
            self.ARGS
            + ["--world-size", "2", "--aggregation-frequency", "2"]
        )
        assert code == 0
        assert "final test accuracy" in capsys.readouterr().out

    def test_local_sgd_with_zero_momentum_runs(self, capsys):
        code = main(
            self.ARGS
            + [
                "--world-size", "2",
                "--aggregation-frequency", "2",
                "--sync-mode", "local_sgd",
                "--momentum", "0",
            ]
        )
        assert code == 0
        assert "final test accuracy" in capsys.readouterr().out

    def test_zero_aggregation_frequency_rejected(self, capsys):
        code = main(self.ARGS + ["--aggregation-frequency", "0"])
        assert code == 2
        assert "aggregation_frequency" in capsys.readouterr().err

    def test_unknown_sync_mode_error_lists_choices(self, capsys):
        code = main(self.ARGS + ["--sync-mode", "gossip"])
        assert code == 2
        err = capsys.readouterr().err
        assert "allreduce" in err
        assert "local_sgd" in err

    def test_local_sgd_with_default_momentum_rejected(self, capsys):
        code = main(self.ARGS + ["--sync-mode", "local_sgd"])
        assert code == 2
        assert "momentum" in capsys.readouterr().err

    def test_bad_kill_point_rejected(self, capsys):
        code = main(self.ARGS + ["--kill-point", "nonsense"])
        assert code == 2
        assert "RANK:STEP" in capsys.readouterr().err

    def test_transient_crash_retried_to_success(self, capsys):
        code = main(
            self.ARGS
            + [
                "--world-size", "2",
                "--crash-rank", "1",
                "--crash-step", "1",
                "--crash-transient",
                "--max-retries", "2",
                "--retry-backoff", "0",
            ]
        )
        assert code == 0
        assert "final test accuracy" in capsys.readouterr().out

    def test_degraded_run_reports_eviction(self, capsys):
        code = main(
            self.ARGS
            + [
                "--world-size", "3",
                "--batch-size", "18",
                "--crash-rank", "1",
                "--crash-step", "0",
                "--max-retries", "0",
                "--retry-backoff", "0",
                "--allow-degraded",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DEGRADED: rank 1 evicted at step 0" in out
        assert "continuing on ranks [0,2]" in out


class TestResumeCommand:
    def digest_of(self, out):
        import re

        return re.search(r"history digest: ([0-9a-f]{64})", out).group(1)

    def train_args(self, *extra):
        return [
            "train",
            "--scheme", "1bit",
            "--epochs", "2",
            "--train-samples", "32",
            "--test-samples", "16",
            "--batch-size", "16",
            "--world-size", "2",
            "--seed", "3",
            *extra,
        ]

    def test_crash_checkpoint_resume_is_bit_identical(
        self, capsys, tmp_path
    ):
        # the CI resilience job in miniature: uninterrupted reference,
        # a run killed mid-epoch, and a resume that must converge to
        # the exact same history digest
        assert main(self.train_args()) == 0
        reference = self.digest_of(capsys.readouterr().out)

        code = main(
            self.train_args(
                "--crash-rank", "1",
                "--crash-step", "3",
                "--checkpoint-dir", str(tmp_path),
                "--checkpoint-every-steps", "1",
            )
        )
        assert code == 1
        capsys.readouterr()

        assert main(["resume", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "resuming" in out
        assert self.digest_of(out) == reference

    def test_resume_can_switch_engine(self, capsys, tmp_path):
        assert main(self.train_args()) == 0
        reference = self.digest_of(capsys.readouterr().out)
        assert main(
            self.train_args(
                "--epochs", "1", "--checkpoint-dir", str(tmp_path)
            )
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "resume", str(tmp_path),
                "--epochs", "2",
                "--engine", "threaded",
            ]
        )
        assert code == 0
        assert self.digest_of(capsys.readouterr().out) == reference

    def test_resume_empty_directory_rejected(self, capsys, tmp_path):
        assert main(["resume", str(tmp_path)]) == 2
        assert "no ckpt-*.npz" in capsys.readouterr().err


class TestTrace:
    def args(self, tmp_path, *extra):
        return [
            "trace",
            "--scheme", "qsgd",
            "--bits", "4",
            "--gpus", "2",
            "--train-samples", "32",
            "--test-samples", "16",
            "--output", str(tmp_path / "trace.json"),
            *extra,
        ]

    def test_trace_writes_chrome_json_and_breakdown(self, capsys, tmp_path):
        import json

        assert main(self.args(tmp_path, "--exchange", "nccl")) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "wire bytes:" in out
        doc = json.loads((tmp_path / "trace.json").read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete
        assert {"compute", "encode", "decode"} <= {
            e["name"] for e in complete
        }
        # one track per rank
        assert {e["tid"] for e in complete} == {0, 1}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_trace_breakdown_rows_sum_to_wall(self, capsys, tmp_path):
        import re

        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        rows = dict(
            re.findall(r"^  (\w+) +([\d.]+) s", out, flags=re.MULTILINE)
        )
        wall = float(re.search(r"wall ([\d.]+) s", out).group(1))
        total = sum(
            float(v) for k, v in rows.items() if k != "total"
        )
        # phases + "other" partition the wall time (5% printing slack)
        assert abs(total - wall) <= 0.05 * wall + 1e-3

    def test_trace_crossval_reports_both_exchanges(self, capsys, tmp_path):
        for exchange in ("mpi", "nccl"):
            assert main(
                self.args(tmp_path, "--exchange", exchange, "--crossval")
            ) == 0
            out = capsys.readouterr().out
            assert "cross-validation" in out
            assert "predicted exchange makespan" in out

    def test_trace_rejects_bits_without_qsgd(self, capsys, tmp_path):
        code = main(
            self.args(tmp_path)[:1]
            + ["--scheme", "1bit", "--bits", "4"]
        )
        assert code == 2
        assert "--bits only applies" in capsys.readouterr().err

    def test_trace_requires_bits_for_qsgd(self, capsys, tmp_path):
        code = main(["trace", "--scheme", "qsgd"])
        assert code == 2
        assert "requires --bits" in capsys.readouterr().err


class TestFabricCommand:
    def test_single_cell_reports_makespan(self, capsys):
        assert main([
            "fabric", "--ranks", "16", "--pattern", "ring",
            "--elements", "200000",
        ]) == 0
        out = capsys.readouterr().out
        assert "ring/qsgd4" in out
        assert "ms makespan" in out
        assert "hot link" in out

    def test_auto_select_prints_candidates(self, capsys):
        assert main([
            "fabric", "--ranks", "16", "--elements", "1000",
        ]) == 0
        out = capsys.readouterr().out
        assert "auto-selected" in out
        assert "candidates:" in out

    def test_network_sizes_the_payload(self, capsys):
        assert main([
            "fabric", "--ranks", "16", "--pattern", "tree",
            "--network", "AlexNet",
        ]) == 0
        assert "ms makespan" in capsys.readouterr().out

    def test_fault_injection_reports_degradation(self, capsys):
        assert main([
            "fabric", "--ranks", "16", "--pattern", "ring",
            "--elements", "100000", "--fail-link", "host1:leaf0",
        ]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "evicted (link)" in out

    def test_trace_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "fabric.json"
        assert main([
            "fabric", "--ranks", "8", "--pattern", "tree",
            "--elements", "1000", "--trace", str(path),
        ]) == 0
        assert "trace written" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["otherData"]["pattern"] == "tree"

    def test_bad_fail_link_format(self, capsys):
        assert main(["fabric", "--fail-link", "leaf0spine1"]) == 2
        assert "SRC:DST" in capsys.readouterr().err

    def test_recover_at_requires_fail_link(self, capsys):
        assert main(["fabric", "--recover-at", "0.5"]) == 2
        assert "--recover-at requires --fail-link" in (
            capsys.readouterr().err
        )

    def test_sweep_covers_every_pattern(self, capsys):
        assert main([
            "fabric", "--sweep", "--sweep-ranks", "8", "16",
        ]) == 0
        out = capsys.readouterr().out
        for pattern in ("ring", "tree", "butterfly", "hierarchical"):
            assert pattern in out

    def test_crossval_gate_passes(self, capsys):
        assert main(["fabric", "--crossval"]) == 0
        out = capsys.readouterr().out
        assert "fabric crossval: PASS" in out
        assert "max phase-share gap" in out
