"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "fig16-right" in out

    def test_networks(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out
        assert "62.4M" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "p2.16xlarge" in out
        assert "$14.4/h" in out

    def test_run_simulator_experiment(self, capsys):
        assert main(["run", "fig16-right"]) == 0
        assert "asymptote" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_calibration_passes_threshold(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "overall mean |error|" in out

    def test_calibration_verbose_lists_cells(self, capsys):
        assert main(["calibration", "-v"]) == 0
        assert "AlexNet" in capsys.readouterr().out

    def test_insights_all_hold(self, capsys):
        assert main(["insights"]) == 0
        out = capsys.readouterr().out
        assert out.count("HOLDS") == 5
        assert "DIVERGES" not in out

    def test_compression_report(self, capsys):
        assert main(["compression"]) == 0
        out = capsys.readouterr().out
        assert "Wire bits per gradient element" in out
        assert "ResNet152" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrainCommand:
    ARGS = [
        "train",
        "--epochs", "1",
        "--train-samples", "32",
        "--test-samples", "16",
        "--batch-size", "16",
    ]

    @pytest.mark.parametrize("engine", ["sequential", "threaded"])
    def test_train_runs_with_both_engines(self, capsys, engine):
        assert main(self.ARGS + ["--engine", engine]) == 0
        out = capsys.readouterr().out
        assert "final test accuracy" in out
        assert engine in out

    def test_train_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--engine", "warp-drive"])

    def test_injected_crash_reported_and_nonzero_exit(self, capsys):
        code = main(
            self.ARGS
            + [
                "--engine", "threaded",
                "--world-size", "2",
                "--crash-rank", "1",
                "--crash-step", "0",
                "--barrier-timeout", "5",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "rank 1 crash at step 0" in err
