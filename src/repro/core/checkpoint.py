"""Deterministic checkpoint/resume of full training state.

A :class:`TrainingCheckpoint` captures *everything* a bit-identical
continuation needs — model parameters, optimizer momentum, the data
shuffle RNG, every per-rank module RNG stream (dropout masks), the
shared quantization RNG, per-rank error-feedback residuals, any
aggregator-side exchange state (the MPI path's broadcast residuals),
the live topology after evictions, and the partially-completed epoch's
running metrics.  Resuming a run from a checkpoint taken at step N and
training to the end produces exactly the trajectory of the
uninterrupted run, byte for byte, for every scheme × exchange × engine
cell — the checkpoint test-grid asserts this.

Files are single ``.npz`` archives: one JSON metadata blob plus one
array entry per tensor, written to a temporary file in the target
directory and atomically renamed into place (``os.replace``), so a
crash mid-save can never leave a torn checkpoint behind.
"""

from __future__ import annotations

import copy
import json
import os
import re
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from ..runtime.worker import collect_module_rngs
from .config import TrainingConfig
from .metrics import History

__all__ = [
    "CheckpointPolicy",
    "TrainingCheckpoint",
    "checkpoint_steps",
    "latest_checkpoint",
    "save_checkpoint",
]

#: checkpoint file-format version
FORMAT_VERSION = 1

#: config fields that define the numeric trajectory; a checkpoint only
#: restores into a trainer whose config matches on all of them.  The
#: engine is deliberately absent (sequential and threaded runs are
#: bit-identical, so resuming on the other engine is legal), as are the
#: workspace switch and every fault/retry/telemetry knob.
IDENTITY_FIELDS = (
    "scheme",
    "bucket_size",
    "exchange",
    "world_size",
    "batch_size",
    "lr",
    "lr_decay",
    "momentum",
    "weight_decay",
    "seed",
    "requantize_broadcast",
    "passthrough_coverage",
    "norm",
    "variant",
    "policy",
    "quantize_kinds",
    "comm_bucket_bytes",
    "aggregation_frequency",
    "sync_mode",
)

_CKPT_NAME = re.compile(r"^ckpt-(\d+)\.npz$")


def config_to_dict(config: TrainingConfig) -> dict:
    """JSON-friendly config record (the tracer handle is dropped)."""
    record = {}
    for f in fields(config):
        if f.name == "tracer":
            continue
        value = getattr(config, f.name)
        if isinstance(value, tuple):
            value = list(value)
        record[f.name] = value
    return record


def config_from_dict(record: dict) -> TrainingConfig:
    """Rebuild a :class:`TrainingConfig` from :func:`config_to_dict`."""
    kwargs = dict(record)
    known = {f.name for f in fields(TrainingConfig)}
    kwargs = {k: v for k, v in kwargs.items() if k in known}
    for key in ("straggler_ranks", "quantize_kinds"):
        if kwargs.get(key) is not None:
            kwargs[key] = tuple(kwargs[key])
    if kwargs.get("kill_points") is not None:
        # nested pairs serialize as lists-of-lists
        kwargs["kill_points"] = tuple(
            tuple(point) for point in kwargs["kill_points"]
        )
    return TrainingConfig(**kwargs)


@dataclass(frozen=True)
class CheckpointPolicy:
    """When and where the trainer writes checkpoints.

    Attributes:
        directory: target directory (created on first save).
        every_steps: save after every N global steps (``None`` = only
            at epoch boundaries).
        every_epochs: save at the end of every N epochs (``None``
            disables epoch-boundary saves).
        keep: most-recent checkpoints retained; older files are pruned
            after each save.  ``None`` keeps everything.
        extra: opaque JSON-serializable dict stored verbatim in every
            checkpoint's metadata — the CLI records how to rebuild the
            model and dataset here, so ``repro resume`` needs nothing
            but the checkpoint file.
    """

    directory: str | os.PathLike
    every_steps: int | None = None
    every_epochs: int | None = 1
    keep: int | None = 3
    extra: dict | None = None

    def __post_init__(self) -> None:
        if self.every_steps is not None and self.every_steps < 1:
            raise ValueError(
                f"every_steps must be >= 1, got {self.every_steps}"
            )
        if self.every_epochs is not None and self.every_epochs < 1:
            raise ValueError(
                f"every_epochs must be >= 1, got {self.every_epochs}"
            )
        if self.keep is not None and self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")


class TrainingCheckpoint:
    """One captured training state: a metadata dict plus named arrays."""

    def __init__(self, meta: dict, arrays: dict[str, np.ndarray]):
        self.meta = meta
        self.arrays = arrays

    # -- convenient accessors ---------------------------------------------
    @property
    def step(self) -> int:
        """Global step index the resumed run continues from."""
        return int(self.meta["step"])

    @property
    def epoch(self) -> int:
        """Epoch the resumed run continues in (0-based)."""
        return int(self.meta["epoch"])

    @property
    def batches_done(self) -> int:
        """Batches of that epoch already trained (0 = epoch boundary)."""
        return int(self.meta["batches_done"])

    @property
    def config(self) -> TrainingConfig:
        return config_from_dict(self.meta["config"])

    @property
    def history(self) -> History:
        return History.from_dict(self.meta["history"])

    # -- capture ----------------------------------------------------------
    @classmethod
    def capture(
        cls,
        trainer,
        *,
        epoch: int,
        batches_done: int,
        shuffle_state: dict,
        partial_losses: list[float] = (),
        partial_accuracies: list[float] = (),
        history: History | None = None,
        extra: dict | None = None,
    ) -> "TrainingCheckpoint":
        """Snapshot a :class:`~repro.core.trainer.ParallelTrainer`.

        ``shuffle_state`` must be the shuffle-RNG state from which the
        *current* epoch's permutation is (re)drawn: the pre-epoch
        snapshot when mid-epoch, the current state at an epoch
        boundary.  The resumed run restores it, re-draws the same
        permutation, and skips the first ``batches_done`` batches.
        """
        engine = trainer.engine
        step_engine = engine.step_engine
        reference = engine.reference_worker
        arrays: dict[str, np.ndarray] = {}

        param_names = [p.name for p in reference.parameters]
        for i, param in enumerate(reference.parameters):
            arrays[f"param{i}"] = np.array(param.data, copy=True)

        # mid-round local SGD is the one state where live replicas have
        # legitimately diverged: capture every rank's parameters (keyed
        # by live-rank position) so resume rebuilds each replica exactly
        per_rank_params = (
            step_engine.local_updates and step_engine.round_position != 0
        )
        if per_rank_params:
            for position, rank in enumerate(engine.live_ranks):
                for i, param in enumerate(
                    engine.workers[rank].parameters
                ):
                    arrays[f"param{i}r{position}"] = np.array(
                        param.data, copy=True
                    )

        velocity = reference.optimizer._velocity
        velocity_names = sorted(velocity)
        for i, name in enumerate(velocity_names):
            arrays[f"vel{i}"] = np.array(velocity[name], copy=True)

        # per-rank error-feedback residuals, keyed by *original* rank id
        residual_index: list[list] = []
        for position, rank in enumerate(engine.live_ranks):
            for name, residual in step_engine._residuals[position].items():
                arrays[f"res{len(residual_index)}"] = np.array(
                    residual, copy=True
                )
                residual_index.append([rank, name])

        exchange_keys = []
        for key, array in step_engine.exchange.state_dict().items():
            arrays[f"exch{len(exchange_keys)}"] = np.array(array, copy=True)
            exchange_keys.append(key)

        # periodic-synchronization round state: the position inside the
        # current round plus the per-rank gradient accumulators and the
        # local-SGD round base, so a mid-round resume replays the rest
        # of the round bit-identically
        accumulator_index: list[list] = []
        for position, rank in enumerate(engine.live_ranks):
            for name, acc in step_engine._accumulators[position].items():
                arrays[f"acc{len(accumulator_index)}"] = np.array(
                    acc, copy=True
                )
                accumulator_index.append([rank, name])
        round_base_names = sorted(step_engine._round_base)
        for i, name in enumerate(round_base_names):
            arrays[f"rb{i}"] = np.array(
                step_engine._round_base[name], copy=True
            )

        module_rngs = {
            str(rank): [
                copy.deepcopy(gen.bit_generator.state)
                for gen in collect_module_rngs(engine.workers[rank].model)
            ]
            for rank in engine.live_ranks
        }

        meta = {
            "version": FORMAT_VERSION,
            "step": int(engine._step_index),
            "epoch": int(epoch),
            "batches_done": int(batches_done),
            "config": config_to_dict(trainer.config),
            "history": (history or History(trainer.config.label)).to_dict(),
            "live_ranks": list(engine.live_ranks),
            "shuffle_state": copy.deepcopy(shuffle_state),
            "quant_state": copy.deepcopy(
                step_engine.rng.bit_generator.state
            ),
            "module_rngs": module_rngs,
            "partial_losses": [float(v) for v in partial_losses],
            "partial_accuracies": [float(v) for v in partial_accuracies],
            "partial_comm_bytes": int(step_engine.comm_bytes),
            "param_names": param_names,
            "velocity_names": velocity_names,
            "residuals": residual_index,
            "exchange_keys": exchange_keys,
            "round_position": int(step_engine.round_position),
            "accumulators": accumulator_index,
            "round_base_names": round_base_names,
            "per_rank_params": bool(per_rank_params),
            # the adaptive policy's frozen per-layer scheme table; the
            # resume path restores it verbatim instead of trusting a
            # re-derivation, so the carried decisions — not the
            # derivation code — define the resumed trajectory
            "policy_assignments": dict(
                getattr(step_engine.policy, "assignments", None) or {}
            ),
            "extra": dict(extra) if extra else {},
        }
        return cls(meta, arrays)

    # -- restore ----------------------------------------------------------
    def restore(self, trainer) -> None:
        """Load this checkpoint's state into a freshly-built trainer.

        The trainer's config must match the checkpoint's on every
        trajectory-defining field (:data:`IDENTITY_FIELDS`); fault,
        retry, engine, and telemetry knobs may differ — so a resumed
        run can, for example, drop the crash injection that killed the
        original.
        """
        # round-trip the saved record through the dataclass so fields
        # added after the checkpoint was written compare at their
        # defaults instead of as missing keys
        current = config_to_dict(trainer.config)
        saved = config_to_dict(self.config)
        mismatches = [
            name
            for name in IDENTITY_FIELDS
            if current.get(name) != saved.get(name)
        ]
        if mismatches:
            raise ValueError(
                "checkpoint was taken under a different config; "
                f"mismatched fields: {', '.join(mismatches)}"
            )

        engine = trainer.engine
        engine.restore_topology([int(r) for r in self.meta["live_ranks"]])
        step_engine = engine.step_engine

        param_names = self.meta["param_names"]
        velocity_names = self.meta["velocity_names"]
        per_rank_params = bool(self.meta.get("per_rank_params"))
        for position, rank in enumerate(engine.live_ranks):
            worker = engine.workers[rank]
            for i, name in enumerate(param_names):
                param = worker.param_by_name[name]
                key = (
                    f"param{i}r{position}" if per_rank_params
                    else f"param{i}"
                )
                saved = self.arrays[key]
                if param.data.shape != saved.shape:
                    raise ValueError(
                        f"parameter {name!r} shape {param.data.shape} != "
                        f"checkpointed {saved.shape}"
                    )
                param.data[...] = saved
            worker.optimizer._velocity = {
                name: np.array(self.arrays[f"vel{i}"], copy=True)
                for i, name in enumerate(velocity_names)
            }
            generators = collect_module_rngs(worker.model)
            states = self.meta["module_rngs"][str(rank)]
            if len(generators) != len(states):
                raise ValueError(
                    f"rank {rank} has {len(generators)} module RNGs, "
                    f"checkpoint recorded {len(states)}"
                )
            for gen, state in zip(generators, states):
                gen.bit_generator.state = copy.deepcopy(state)

        step_engine.rng.bit_generator.state = copy.deepcopy(
            self.meta["quant_state"]
        )
        carried = self.meta.get("policy_assignments")
        if carried and hasattr(step_engine.policy, "assignments"):
            # checkpoint-carried bit-width decisions override the fresh
            # derivation (they should agree — the derivation is a pure
            # function of the identity fields — but the saved table is
            # authoritative for the resumed trajectory)
            step_engine.policy.assignments = {
                str(name): str(scheme)
                for name, scheme in carried.items()
            }
        position_of = {
            rank: position for position, rank in enumerate(engine.live_ranks)
        }
        residuals: list[dict[str, np.ndarray]] = [
            {} for _ in engine.live_ranks
        ]
        for i, (rank, name) in enumerate(self.meta["residuals"]):
            residuals[position_of[int(rank)]][name] = np.array(
                self.arrays[f"res{i}"], copy=True
            )
        step_engine._residuals = residuals
        step_engine._round_position = int(self.meta.get("round_position", 0))
        accumulators: list[dict[str, np.ndarray]] = [
            {} for _ in engine.live_ranks
        ]
        for i, (rank, name) in enumerate(self.meta.get("accumulators", [])):
            accumulators[position_of[int(rank)]][name] = np.array(
                self.arrays[f"acc{i}"], copy=True
            )
        step_engine._accumulators = accumulators
        step_engine._round_base = {
            name: np.array(self.arrays[f"rb{i}"], copy=True)
            for i, name in enumerate(self.meta.get("round_base_names", []))
        }
        step_engine.exchange.load_state_dict(
            {
                key: np.array(self.arrays[f"exch{i}"], copy=True)
                for i, key in enumerate(self.meta["exchange_keys"])
            }
        )
        engine._step_index = self.step
        # let the engine resync any state held outside the coordinator
        # (the process engine respawns its workers from the replicas)
        engine.on_state_restored()

    # -- disk -------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> Path:
        """Write atomically: temp file in the target dir, then rename."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.tmp{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    __meta__=np.array(json.dumps(self.meta)),
                    **self.arrays,
                )
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on failed save
                tmp.unlink()
        return path

    @classmethod
    def load(cls, path: str | os.PathLike) -> "TrainingCheckpoint":
        with np.load(Path(path), allow_pickle=False) as archive:
            meta = json.loads(str(archive["__meta__"][()]))
            if meta.get("version") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint version {meta.get('version')}"
                    f" (expected {FORMAT_VERSION})"
                )
            arrays = {
                key: archive[key] for key in archive.files if key != "__meta__"
            }
        return cls(meta, arrays)


def checkpoint_steps(
    directory: str | os.PathLike,
) -> list[tuple[int, Path]]:
    """Every ``ckpt-<step>.npz`` under ``directory``, ordered by step.

    The ordering is *numeric* on the parsed step — never lexicographic
    on the filename — so an unpadded ``ckpt-100.npz`` sorts after
    ``ckpt-99.npz`` (lexicographically ``"ckpt-100" < "ckpt-99"``).
    The trainer writes zero-padded names, where the two orders happen
    to agree, but discovery must not depend on that: checkpoints
    renamed or written by other tooling resume correctly too.  Both
    ``latest_checkpoint`` (the ``repro resume`` directory path and the
    serve daemon's per-job resume) and the retention pruning in
    :func:`save_checkpoint` share this helper.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        (int(match.group(1)), entry)
        for entry in directory.iterdir()
        if (match := _CKPT_NAME.match(entry.name))
    ]
    found.sort(key=lambda pair: pair[0])
    return found


def latest_checkpoint(directory: str | os.PathLike) -> Path | None:
    """Highest-step ``ckpt-*.npz`` under ``directory`` (or ``None``)."""
    found = checkpoint_steps(directory)
    return found[-1][1] if found else None


def save_checkpoint(
    trainer,
    policy: CheckpointPolicy,
    *,
    epoch: int,
    batches_done: int,
    shuffle_state: dict,
    partial_losses: list[float] = (),
    partial_accuracies: list[float] = (),
    history: History | None = None,
) -> Path:
    """Capture, write ``ckpt-<step>.npz`` under the policy dir, prune."""
    ckpt = TrainingCheckpoint.capture(
        trainer,
        epoch=epoch,
        batches_done=batches_done,
        shuffle_state=shuffle_state,
        partial_losses=partial_losses,
        partial_accuracies=partial_accuracies,
        history=history,
        extra=policy.extra,
    )
    directory = Path(policy.directory)
    path = ckpt.save(directory / f"ckpt-{ckpt.step:08d}.npz")
    if policy.keep is not None:
        for _, stale in checkpoint_steps(directory)[: -policy.keep]:
            stale.unlink()
    return path
