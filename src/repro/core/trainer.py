"""Data-parallel trainer driving the numpy substrate.

One model instance is shared by all simulated ranks: synchronous SGD
keeps replicas bit-identical (every rank applies the same aggregated
update), so only the per-rank state that genuinely differs — data
shards, gradients, and error-feedback residuals — is kept per rank.
Tests verify the replica-consistency invariant directly on the
exchange layer.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..data.loader import iterate_minibatches, split_among_ranks
from ..nn.loss import accuracy, softmax_cross_entropy
from ..nn.module import Module
from ..optim import Sgd, exponential_decay
from .algorithm import SynchronousStep
from .config import TrainingConfig
from .metrics import EpochMetrics, History

__all__ = ["ParallelTrainer"]

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]


class ParallelTrainer:
    """Synchronous multi-rank training of one model."""

    def __init__(
        self,
        model: Module,
        config: TrainingConfig,
        loss_fn: LossFn = softmax_cross_entropy,
    ):
        self.model = model
        self.config = config
        self.loss_fn = loss_fn
        self.parameters = model.parameters()
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.step_engine = SynchronousStep(config, self.parameters)
        self.optimizer = Sgd(
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        self._shuffle_rng = np.random.default_rng(config.seed + 1)

    # -- single synchronous iteration ------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One global minibatch: returns (mean loss, mean accuracy)."""
        shards = split_among_ranks(x, y, self.config.world_size)
        rank_grads: list[dict[str, np.ndarray]] = []
        losses = []
        accuracies = []
        for shard_x, shard_y in shards:
            if shard_x.shape[0] == 0:
                rank_grads.append(
                    {p.name: np.zeros_like(p.data) for p in self.parameters}
                )
                continue
            self.model.zero_grad()
            logits = self.model.forward(shard_x, training=True)
            loss, dlogits = self.loss_fn(logits, shard_y)
            if not np.isfinite(loss):
                raise FloatingPointError(
                    f"training diverged: non-finite loss under "
                    f"{self.config.label} (lower the learning rate or "
                    "use a less aggressive quantizer)"
                )
            self.model.backward(dlogits)
            rank_grads.append(
                {p.name: p.grad.copy() for p in self.parameters}
            )
            losses.append(loss)
            accuracies.append(accuracy(logits, shard_y))

        for param in self.parameters:
            aggregated = self.step_engine.aggregate(
                param.name, [g[param.name] for g in rank_grads]
            )
            self.optimizer.apply(param, aggregated)

        if not losses:
            return float("nan"), float("nan")
        return float(np.mean(losses)), float(np.mean(accuracies))

    # -- epochs -----------------------------------------------------------
    def train_epoch(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        """One pass over the training set; returns (loss, accuracy)."""
        losses = []
        accuracies = []
        for batch_x, batch_y in iterate_minibatches(
            x, y, self.config.batch_size, rng=self._shuffle_rng
        ):
            loss, acc = self.train_step(batch_x, batch_y)
            losses.append(loss)
            accuracies.append(acc)
        if not losses:
            return float("nan"), float("nan")
        return float(np.mean(losses)), float(np.mean(accuracies))

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Test accuracy in [0, 1], batched to bound memory."""
        correct = 0
        for batch_x, batch_y in iterate_minibatches(x, y, 256):
            logits = self.model.forward(batch_x, training=False)
            correct += int((logits.argmax(axis=1) == batch_y).sum())
        return correct / x.shape[0]

    def fit(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        epochs: int,
        verbose: bool = False,
    ) -> History:
        """Train for ``epochs`` passes, recording per-epoch metrics."""
        history = History(label=self.config.label)
        for epoch in range(epochs):
            self.optimizer.lr = exponential_decay(
                self.config.lr, self.config.lr_decay, epoch
            )
            self.step_engine.reset_traffic()
            start = time.perf_counter()
            loss, train_acc = self.train_epoch(train_x, train_y)
            elapsed = time.perf_counter() - start
            test_acc = self.evaluate(test_x, test_y)
            metrics = EpochMetrics(
                epoch=epoch,
                train_loss=loss,
                train_accuracy=train_acc,
                test_accuracy=test_acc,
                comm_bytes=self.step_engine.comm_bytes,
                wall_seconds=elapsed,
            )
            history.append(metrics)
            if verbose:
                print(
                    f"[{self.config.label}] epoch {epoch:3d} "
                    f"loss={loss:.4f} train={train_acc:.3f} "
                    f"test={test_acc:.3f}"
                )
        return history
