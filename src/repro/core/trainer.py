"""Data-parallel trainer driving the numpy substrate.

The trainer owns the training loop (epochs, LR schedule, metrics) and
delegates per-step execution to a :mod:`repro.runtime` engine: the
sequential engine runs the rank workers one after another on the
calling thread, the threaded engine runs one worker thread per rank
with barrier-synchronized steps and overlapped bucketed exchange.
Each rank holds its own model replica; synchronous SGD keeps replicas
bit-identical (every rank applies the same aggregated update), and the
two engines produce bit-identical trajectories — both invariants are
asserted by tests.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..data.loader import iterate_minibatches
from ..nn.loss import softmax_cross_entropy
from ..nn.module import Module
from ..optim import exponential_decay
from ..runtime.engine import make_engine
from ..runtime.faults import WorkerFailureError
from .config import TrainingConfig
from .metrics import PHASE_NAMES, EpochMetrics, History

__all__ = ["ParallelTrainer"]

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]


class ParallelTrainer:
    """Synchronous multi-rank training of one model."""

    def __init__(
        self,
        model: Module,
        config: TrainingConfig,
        loss_fn: LossFn = softmax_cross_entropy,
    ):
        self.model = model
        self.config = config
        self.loss_fn = loss_fn
        names = [p.name for p in model.parameters()]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.engine = make_engine(model, config, loss_fn)
        # rank 0's replica *is* ``model``; its parameters reflect
        # training progress, as they did with the single-model loop
        self.parameters = self.engine.workers[0].parameters
        self._shuffle_rng = np.random.default_rng(config.seed + 1)

    # the live collective/quantization pipeline; reassignable so
    # custom codecs can be injected (see examples/custom_quantizer.py)
    @property
    def step_engine(self):
        return self.engine.step_engine

    @step_engine.setter
    def step_engine(self, value) -> None:
        self.engine.step_engine = value

    @property
    def optimizer(self):
        """Rank 0's optimizer (all replicas hold identical state)."""
        return self.engine.optimizer

    # -- single synchronous iteration ------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One global minibatch: returns (mean loss, mean accuracy).

        Shards can be unequal (and empty shards contribute no loss),
        so the returned metrics are weighted by shard size — they are
        the exact global-minibatch mean.
        """
        return self.engine.train_step(x, y)

    # -- epochs -----------------------------------------------------------
    def train_epoch(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        """One pass over the training set; returns (loss, accuracy)."""
        losses = []
        accuracies = []
        for batch_x, batch_y in iterate_minibatches(
            x, y, self.config.batch_size, rng=self._shuffle_rng
        ):
            loss, acc = self.train_step(batch_x, batch_y)
            losses.append(loss)
            accuracies.append(acc)
        if not losses:
            return float("nan"), float("nan")
        return float(np.mean(losses)), float(np.mean(accuracies))

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Test accuracy in [0, 1], batched to bound memory.

        An empty test set has no defined accuracy: returns NaN.
        """
        if x.shape[0] == 0:
            return float("nan")
        correct = 0
        for batch_x, batch_y in iterate_minibatches(x, y, 256):
            logits = self.model.forward(batch_x, training=False)
            correct += int((logits.argmax(axis=1) == batch_y).sum())
        return correct / x.shape[0]

    def fit(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        epochs: int,
        verbose: bool = False,
    ) -> History:
        """Train for ``epochs`` passes, recording per-epoch metrics.

        A rank crash or barrier timeout stops training and is recorded
        as a structured failure on the returned history rather than
        raised, so partial results stay inspectable.
        """
        history = History(label=self.config.label)
        tracer = self.engine.tracer
        for epoch in range(epochs):
            self.engine.set_lr(
                exponential_decay(self.config.lr, self.config.lr_decay, epoch)
            )
            self.step_engine.reset_traffic()
            # per-epoch phase deltas: snapshot the tracer's cumulative
            # busy seconds so each epoch records only its own share
            phase_before = tracer.phase_seconds() if tracer.enabled else None
            start = time.perf_counter()
            try:
                loss, train_acc = self.train_epoch(train_x, train_y)
            except WorkerFailureError as failure:
                history.failures.append(failure.failure)
                if verbose:
                    print(f"[{self.config.label}] stopped: {failure}")
                break
            elapsed = time.perf_counter() - start
            if phase_before is not None:
                phase_after = tracer.phase_seconds()
                phase_delta = {
                    phase: phase_after.get(phase, 0.0)
                    - phase_before.get(phase, 0.0)
                    for phase in PHASE_NAMES
                }
            else:
                phase_delta = {}
            test_acc = self.evaluate(test_x, test_y)
            metrics = EpochMetrics(
                epoch=epoch,
                train_loss=loss,
                train_accuracy=train_acc,
                test_accuracy=test_acc,
                comm_bytes=self.step_engine.comm_bytes,
                wall_seconds=elapsed,
                **{
                    f"{phase}_seconds": seconds
                    for phase, seconds in phase_delta.items()
                },
            )
            history.append(metrics)
            if verbose:
                print(
                    f"[{self.config.label}] epoch {epoch:3d} "
                    f"loss={loss:.4f} train={train_acc:.3f} "
                    f"test={test_acc:.3f}"
                )
        return history

    def close(self) -> None:
        """Shut down the execution engine (worker threads, if any)."""
        self.engine.shutdown()

    def __enter__(self) -> "ParallelTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
