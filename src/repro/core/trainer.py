"""Data-parallel trainer driving the numpy substrate.

The trainer owns the training loop (epochs, LR schedule, metrics) and
delegates per-step execution to a :mod:`repro.runtime` engine: the
sequential engine runs the rank workers one after another on the
calling thread, the threaded engine runs one worker thread per rank
with barrier-synchronized steps and overlapped bucketed exchange.
Each rank holds its own model replica; synchronous SGD keeps replicas
bit-identical (every rank applies the same aggregated update), and the
two engines produce bit-identical trajectories — both invariants are
asserted by tests.
"""

from __future__ import annotations

import copy
import os
import time
from typing import Callable

import numpy as np

from ..data.loader import iterate_minibatches
from ..nn.loss import softmax_cross_entropy
from ..nn.module import Module
from ..optim import exponential_decay
from ..quantization import kernels
from ..runtime.engine import make_engine
from ..runtime.faults import WorkerFailureError
from .checkpoint import CheckpointPolicy, TrainingCheckpoint, save_checkpoint
from .config import TrainingConfig
from .metrics import PHASE_NAMES, EpochMetrics, History

__all__ = ["ParallelTrainer", "TrainingInterrupted"]

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]
StepHook = Callable[[int, list[float], list[float]], None]
EpochHook = Callable[["EpochMetrics", "History"], None]


class TrainingInterrupted(Exception):
    """Raised out of the training loop when ``should_stop`` fires.

    A cooperative stop, not a failure: every completed step has been
    applied (and checkpointed, if a policy is active), so the run can
    be resumed bit-identically — or simply abandoned, as the serve
    daemon does for cancelled jobs.
    """


class ParallelTrainer:
    """Synchronous multi-rank training of one model."""

    def __init__(
        self,
        model: Module,
        config: TrainingConfig,
        loss_fn: LossFn = softmax_cross_entropy,
    ):
        self.model = model
        self.config = config
        self.loss_fn = loss_fn
        names = [p.name for p in model.parameters()]
        if len(set(names)) != len(names):
            raise ValueError("parameter names must be unique")
        self.engine = make_engine(model, config, loss_fn)
        # rank 0's replica *is* ``model``; its parameters reflect
        # training progress, as they did with the single-model loop
        self.parameters = self.engine.workers[0].parameters
        self._shuffle_rng = np.random.default_rng(config.seed + 1)

    # the live collective/quantization pipeline; reassignable so
    # custom codecs can be injected (see examples/custom_quantizer.py)
    @property
    def step_engine(self):
        return self.engine.step_engine

    @step_engine.setter
    def step_engine(self, value) -> None:
        self.engine.step_engine = value

    @property
    def optimizer(self):
        """Rank 0's optimizer (all replicas hold identical state)."""
        return self.engine.optimizer

    # -- single synchronous iteration ------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One global minibatch: returns (mean loss, mean accuracy).

        Shards can be unequal (and empty shards contribute no loss),
        so the returned metrics are weighted by shard size — they are
        the exact global-minibatch mean.
        """
        return self.engine.train_step(x, y)

    # -- epochs -----------------------------------------------------------
    def train_epoch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        start_batch: int = 0,
        losses: list[float] | None = None,
        accuracies: list[float] | None = None,
        on_step: StepHook | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> tuple[float, float]:
        """One pass over the training set; returns (loss, accuracy).

        ``start_batch`` skips that many leading batches of the epoch's
        permutation (a mid-epoch resume: the shuffle RNG re-draws the
        same permutation, and the already-trained batches are passed
        over).  ``losses`` / ``accuracies`` seed the running per-batch
        metric lists (the skipped batches' metrics from the
        checkpoint), and ``on_step`` is called after every trained
        batch with ``(batches_done, losses, accuracies)`` — the
        checkpoint hook.  ``should_stop`` is polled between steps;
        when it returns true the epoch raises
        :class:`TrainingInterrupted` at the next step boundary (after
        the checkpoint hook, so a stopped run is resumable from its
        last completed step).
        """
        losses = [] if losses is None else losses
        accuracies = [] if accuracies is None else accuracies
        batch_index = 0
        for batch_x, batch_y in iterate_minibatches(
            x, y, self.config.batch_size, rng=self._shuffle_rng
        ):
            batch_index += 1
            if batch_index <= start_batch:
                continue
            if should_stop is not None and should_stop():
                raise TrainingInterrupted(
                    f"stop requested before batch {batch_index}"
                )
            loss, acc = self.train_step(batch_x, batch_y)
            losses.append(loss)
            accuracies.append(acc)
            if on_step is not None:
                on_step(batch_index, losses, accuracies)
        if not losses:
            return float("nan"), float("nan")
        return float(np.mean(losses)), float(np.mean(accuracies))

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Test accuracy in [0, 1], batched to bound memory.

        Evaluates on the engine's reference replica — rank 0's model
        until rank 0 is evicted by graceful degradation, then the
        lowest surviving rank's (all live replicas are bit-identical).
        An empty test set has no defined accuracy: returns NaN.
        """
        if x.shape[0] == 0:
            return float("nan")
        model = self.engine.reference_worker.model
        correct = 0
        for batch_x, batch_y in iterate_minibatches(x, y, 256):
            logits = model.forward(batch_x, training=False)
            correct += int((logits.argmax(axis=1) == batch_y).sum())
        return correct / x.shape[0]

    def fit(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        epochs: int,
        verbose: bool = False,
        checkpoint: CheckpointPolicy | None = None,
        resume_from: TrainingCheckpoint | str | os.PathLike | None = None,
        on_epoch: EpochHook | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> History:
        """Train for ``epochs`` passes, recording per-epoch metrics.

        A rank crash or barrier timeout stops training and is recorded
        as a structured failure on the returned history rather than
        raised, so partial results stay inspectable.  Ranks evicted by
        graceful degradation are recorded as topology changes on the
        history and training continues.

        ``checkpoint`` turns on periodic checkpointing per the policy;
        ``resume_from`` (a :class:`TrainingCheckpoint` or a path to
        one) restores full training state before the first step, and
        the returned history includes the checkpointed epochs — a
        resumed run's history is bit-identical to the uninterrupted
        run's.

        ``on_epoch`` is called after every completed epoch with
        ``(metrics, history)``, once the boundary checkpoint (if any)
        has been written — the serve daemon streams NDJSON metric
        lines from it.  ``should_stop`` is polled between steps; when
        it returns true, :class:`TrainingInterrupted` propagates to
        the caller after the current step (and its checkpoint hook)
        completes, so the stopped run stays resumable.
        """
        history = History(
            label=self.config.label,
            kernel_backend=kernels.backend_name(),
        )
        start_epoch = 0
        skip_batches = 0
        carry_losses: list[float] = []
        carry_accuracies: list[float] = []
        carry_comm_bytes = 0
        prior_topology = []
        if resume_from is not None:
            if not isinstance(resume_from, TrainingCheckpoint):
                resume_from = TrainingCheckpoint.load(resume_from)
            resume_from.restore(self)
            prior = resume_from.history
            history.epochs.extend(prior.epochs)
            history.failures.extend(prior.failures)
            prior_topology = list(prior.topology_changes)
            start_epoch = resume_from.epoch
            skip_batches = resume_from.batches_done
            carry_losses = list(resume_from.meta["partial_losses"])
            carry_accuracies = list(resume_from.meta["partial_accuracies"])
            carry_comm_bytes = int(resume_from.meta["partial_comm_bytes"])
            self._shuffle_rng.bit_generator.state = copy.deepcopy(
                resume_from.meta["shuffle_state"]
            )

        def sync_topology() -> None:
            history.topology_changes = (
                prior_topology + self.engine.topology_events
            )

        tracer = self.engine.tracer
        for epoch in range(start_epoch, epochs):
            self.engine.set_lr(
                exponential_decay(self.config.lr, self.config.lr_decay, epoch)
            )
            self.step_engine.reset_traffic()
            # the state the current epoch's permutation is drawn from —
            # what a mid-epoch checkpoint must record to re-draw it
            epoch_shuffle_state = copy.deepcopy(
                self._shuffle_rng.bit_generator.state
            )
            start_batch = 0
            losses: list[float] = []
            accuracies: list[float] = []
            if epoch == start_epoch and skip_batches:
                start_batch = skip_batches
                losses = carry_losses
                accuracies = carry_accuracies
                self.step_engine.set_comm_bytes_base(carry_comm_bytes)
            on_step: StepHook | None = None
            if checkpoint is not None and checkpoint.every_steps:
                on_step = self._step_checkpointer(
                    checkpoint, epoch, epoch_shuffle_state, history,
                    sync_topology,
                )
            # per-epoch phase deltas: snapshot the tracer's cumulative
            # busy seconds so each epoch records only its own share
            phase_before = tracer.phase_seconds() if tracer.enabled else None
            start = time.perf_counter()
            try:
                loss, train_acc = self.train_epoch(
                    train_x,
                    train_y,
                    start_batch=start_batch,
                    losses=losses,
                    accuracies=accuracies,
                    on_step=on_step,
                    should_stop=should_stop,
                )
            except WorkerFailureError as failure:
                sync_topology()
                history.failures.append(failure.failure)
                if verbose:
                    print(f"[{self.config.label}] stopped: {failure}")
                break
            except TrainingInterrupted:
                sync_topology()
                raise
            elapsed = time.perf_counter() - start
            if phase_before is not None:
                phase_after = tracer.phase_seconds()
                phase_delta = {
                    phase: phase_after.get(phase, 0.0)
                    - phase_before.get(phase, 0.0)
                    for phase in PHASE_NAMES
                }
            else:
                phase_delta = {}
            test_acc = self.evaluate(test_x, test_y)
            metrics = EpochMetrics(
                epoch=epoch,
                train_loss=loss,
                train_accuracy=train_acc,
                test_accuracy=test_acc,
                comm_bytes=self.step_engine.comm_bytes,
                wall_seconds=elapsed,
                **{
                    f"{phase}_seconds": seconds
                    for phase, seconds in phase_delta.items()
                },
            )
            history.append(metrics)
            sync_topology()
            if checkpoint is not None and checkpoint.every_epochs and (
                (epoch + 1) % checkpoint.every_epochs == 0
            ):
                # boundary checkpoint: next epoch, zero batches in, and
                # the shuffle RNG exactly where the next draw happens
                save_checkpoint(
                    self,
                    checkpoint,
                    epoch=epoch + 1,
                    batches_done=0,
                    shuffle_state=copy.deepcopy(
                        self._shuffle_rng.bit_generator.state
                    ),
                    history=history,
                )
            if on_epoch is not None:
                on_epoch(metrics, history)
            if verbose:
                print(
                    f"[{self.config.label}] epoch {epoch:3d} "
                    f"loss={loss:.4f} train={train_acc:.3f} "
                    f"test={test_acc:.3f}"
                )
        sync_topology()
        return history

    def _step_checkpointer(
        self,
        policy: CheckpointPolicy,
        epoch: int,
        epoch_shuffle_state: dict,
        history: History,
        sync_topology: Callable[[], None],
    ) -> StepHook:
        """Per-batch hook saving every ``policy.every_steps`` steps."""

        def on_step(
            batches_done: int,
            losses: list[float],
            accuracies: list[float],
        ) -> None:
            if self.engine._step_index % policy.every_steps != 0:
                return
            sync_topology()
            save_checkpoint(
                self,
                policy,
                epoch=epoch,
                batches_done=batches_done,
                shuffle_state=epoch_shuffle_state,
                partial_losses=losses,
                partial_accuracies=accuracies,
                history=history,
            )

        return on_step

    def close(self) -> None:
        """Shut down the execution engine (worker threads, if any)."""
        self.engine.shutdown()

    def __enter__(self) -> "ParallelTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
