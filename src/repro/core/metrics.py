"""Metric containers for training runs."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..runtime.faults import WorkerFailure
    from ..runtime.resilience import TopologyChange

__all__ = ["EpochMetrics", "History", "PHASE_NAMES"]

#: per-phase timing fields, in the paper's breakdown-figure order
PHASE_NAMES = ("compute", "encode", "transfer", "decode", "barrier")


@dataclass
class EpochMetrics:
    """Measurements from one training epoch.

    The ``*_seconds`` phase fields are populated from the live tracer
    when :attr:`~repro.core.TrainingConfig.tracer` is set (they are the
    measured per-phase busy time of the epoch's training steps) and
    stay ``None`` on untraced runs.
    """

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    comm_bytes: int
    wall_seconds: float
    compute_seconds: float | None = None
    encode_seconds: float | None = None
    transfer_seconds: float | None = None
    decode_seconds: float | None = None
    barrier_seconds: float | None = None


@dataclass
class History:
    """Per-epoch measurements of one run, ready for figure series.

    Attributes:
        failures: structured :class:`~repro.runtime.faults.WorkerFailure`
            records for ranks that crashed or timed out; a non-empty
            list means the run stopped early.
        topology_changes: ranks evicted mid-run by graceful degradation
            (:class:`~repro.runtime.resilience.TopologyChange`); unlike
            ``failures`` these do *not* stop the run — training
            continued on the survivors.
        kernel_backend: name of the quantization kernel backend that
            was active during the run ("numba", "cext" or "numpy"),
            recorded by the trainer for provenance.  Deliberately
            excluded from :meth:`digest`: equal digests from runs whose
            ``kernel_backend`` differs is exactly the cross-backend
            bit-identity evidence the kernels CI job checks for.
    """

    label: str
    epochs: list[EpochMetrics] = field(default_factory=list)
    failures: list["WorkerFailure"] = field(default_factory=list)
    topology_changes: list["TopologyChange"] = field(default_factory=list)
    kernel_backend: str | None = None

    def append(self, metrics: EpochMetrics) -> None:
        self.epochs.append(metrics)

    @property
    def failed(self) -> bool:
        return bool(self.failures)

    @property
    def final_test_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].test_accuracy

    @property
    def best_test_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return max(m.test_accuracy for m in self.epochs)

    @property
    def total_comm_bytes(self) -> int:
        return sum(m.comm_bytes for m in self.epochs)

    def series(self, attribute: str) -> list[float]:
        """Extract one per-epoch series by attribute name."""
        return [getattr(m, attribute) for m in self.epochs]

    def phase_totals(self) -> dict[str, float]:
        """Whole-run seconds per traced phase (zeros when untraced).

        Sums the per-epoch ``*_seconds`` fields the trainer records
        when tracing is on; this is the series behind the paper's
        stacked-bar time-per-epoch breakdowns.
        """
        return {
            phase: float(
                sum(
                    getattr(m, f"{phase}_seconds") or 0.0
                    for m in self.epochs
                )
            )
            for phase in PHASE_NAMES
        }

    def epochs_to_reach(self, test_accuracy: float) -> int | None:
        """Epochs needed to first reach ``test_accuracy``.

        This is the paper's convergence-rate metric ("#iterations" in
        its measurement list): quantized runs may need more epochs to
        hit the same accuracy even when the final accuracy matches.
        Returns ``None`` if the run never reached the target.
        """
        for metrics in self.epochs:
            if metrics.test_accuracy >= test_accuracy:
                return metrics.epoch + 1
        return None

    def digest(self) -> str:
        """Content hash of the numeric training trajectory.

        Hashes every per-epoch *numeric* field — losses and accuracies
        via ``float.hex`` (exact, no formatting loss) plus the integer
        comm-byte counts — and deliberately excludes wall-clock and
        traced phase times, which legitimately differ between runs of
        the same trajectory, and run metadata such as
        :attr:`kernel_backend`, so digest equality across backends is
        meaningful.  Two runs producing the same digest took
        bit-identical per-epoch measurements; the resume CI job
        compares an interrupted-then-resumed run against an
        uninterrupted one this way, and the kernels CI job compares a
        compiled-backend run against the numpy reference.
        """
        h = hashlib.sha256()
        h.update(self.label.encode())
        for m in self.epochs:
            row = (
                f"|{m.epoch}"
                f"|{float(m.train_loss).hex()}"
                f"|{float(m.train_accuracy).hex()}"
                f"|{float(m.test_accuracy).hex()}"
                f"|{int(m.comm_bytes)}"
            )
            h.update(row.encode())
        return h.hexdigest()

    def to_dict(self) -> dict:
        """JSON-serializable run record (for EXPERIMENTS.md tooling)."""
        record = {
            "label": self.label,
            # phase fields are None on untraced runs; drop them so old
            # and new records serialize identically when tracing is off
            "epochs": [
                {k: v for k, v in vars(m).items() if v is not None}
                for m in self.epochs
            ],
        }
        if self.kernel_backend is not None:
            record["kernel_backend"] = self.kernel_backend
        if self.failures:
            record["failures"] = [f.to_dict() for f in self.failures]
        if self.topology_changes:
            record["topology_changes"] = [
                t.to_dict() for t in self.topology_changes
            ]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "History":
        """Inverse of :meth:`to_dict`."""
        from ..runtime.faults import WorkerFailure
        from ..runtime.resilience import TopologyChange

        history = cls(
            label=record["label"],
            kernel_backend=record.get("kernel_backend"),
        )
        for row in record["epochs"]:
            history.append(EpochMetrics(**row))
        for row in record.get("failures", ()):
            history.failures.append(WorkerFailure.from_dict(row))
        for row in record.get("topology_changes", ()):
            history.topology_changes.append(TopologyChange.from_dict(row))
        return history
