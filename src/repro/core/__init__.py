"""Core: synchronous data-parallel SGD with quantized communication."""

from .algorithm import SynchronousStep
from .config import TrainingConfig
from .metrics import EpochMetrics, History
from .trainer import ParallelTrainer

__all__ = [
    "SynchronousStep",
    "TrainingConfig",
    "EpochMetrics",
    "History",
    "ParallelTrainer",
]
