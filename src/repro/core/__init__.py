"""Core: synchronous data-parallel SGD with quantized communication."""

from .algorithm import SynchronousStep
from .checkpoint import (
    CheckpointPolicy,
    TrainingCheckpoint,
    latest_checkpoint,
    save_checkpoint,
)
from .config import IPC_NAMES, TrainingConfig
from .metrics import EpochMetrics, History
from .trainer import ParallelTrainer

__all__ = [
    "SynchronousStep",
    "CheckpointPolicy",
    "TrainingCheckpoint",
    "latest_checkpoint",
    "save_checkpoint",
    "TrainingConfig",
    "IPC_NAMES",
    "EpochMetrics",
    "History",
    "ParallelTrainer",
]
