"""Core: synchronous data-parallel SGD with quantized communication."""

from .algorithm import SynchronousStep
from .checkpoint import (
    CheckpointPolicy,
    TrainingCheckpoint,
    checkpoint_steps,
    latest_checkpoint,
    save_checkpoint,
)
from .config import IPC_NAMES, POLICY_NAMES, TrainingConfig
from .metrics import EpochMetrics, History
from .trainer import ParallelTrainer, TrainingInterrupted

__all__ = [
    "SynchronousStep",
    "CheckpointPolicy",
    "TrainingCheckpoint",
    "checkpoint_steps",
    "latest_checkpoint",
    "save_checkpoint",
    "TrainingConfig",
    "IPC_NAMES",
    "POLICY_NAMES",
    "EpochMetrics",
    "History",
    "ParallelTrainer",
    "TrainingInterrupted",
]
