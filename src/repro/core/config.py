"""Run configuration for data-parallel training experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm import EXCHANGE_NAMES
from ..quantization import SCHEME_NAMES
from ..runtime.engine import ENGINE_NAMES

__all__ = [
    "TrainingConfig",
    "ENGINE_NAMES",
    "IPC_NAMES",
    "POLICY_NAMES",
    "SYNC_MODE_NAMES",
]

#: gradient transports of the process engine
IPC_NAMES = ("shm",)

#: codec-routing policies: "static" routes every gradient through the
#: configured scheme (plus the small-matrix passthrough); "adaptive"
#: derives a per-layer scheme assignment from layer sizes and kinds
#: (high precision for sensitive conv/norm layers, ternary for fat fc
#: matrices) — deterministic and checkpoint-carried, so resumed runs
#: stay bit-identical
POLICY_NAMES = ("static", "adaptive")

#: periodic-synchronization variants: "allreduce" accumulates local
#: gradients and exchanges the sum once per round; "local_sgd" takes
#: local optimizer steps and averages parameters once per round
SYNC_MODE_NAMES = ("allreduce", "local_sgd")


@dataclass
class TrainingConfig:
    """Everything that identifies one cell of the paper's study grid.

    Attributes:
        scheme: quantizer name ("32bit", "1bit", "1bit*", "qsgd2"...).
        bucket_size: bucket size override; ``None`` uses the scheme's
            paper-tuned default.
        exchange: collective pattern ("mpi", "nccl", "alltoall").
        world_size: number of simulated GPUs.
        batch_size: *global* minibatch size, split across ranks.
        lr: learning rate (kept fixed across world sizes, as the paper
            tunes it once for full precision and reuses it).
        lr_decay: per-epoch multiplicative decay (1.0 = constant).
        momentum: SGD momentum.
        seed: seed for quantization randomness and shuffling.
        requantize_broadcast: whether the MPI path re-quantizes
            aggregated ranges before broadcast (CNTK behaviour).
        workspace: reuse cached encode/decode scratch buffers across
            steps (the zero-allocation hot path, with fused decode-
            accumulate in the exchanges).  Bit-identical to the
            allocating path; exists as a switch so benchmarks can
            compare the two.
        passthrough_coverage: fraction of parameters that must stay
            quantized when choosing the small-matrix threshold.
        norm / variant: QSGD scaling and level-layout options.
        engine: execution engine ("sequential" rank loop, "threaded"
            worker-per-rank, or "process" OS-process-per-rank;
            bit-identical trajectories).
        ipc: gradient transport of the process engine; "shm" (the only
            implementation) exchanges through a zero-copy
            ``multiprocessing.shared_memory`` arena.  Ignored by the
            in-process engines.
        comm_bucket_bytes: coalescing cap for the runtime's gradient
            buckets (distinct from the quantizer's ``bucket_size``,
            which is an element-count wire-format knob).
        barrier_timeout: seconds before a missing rank at a step
            barrier / bucket rendezvous is declared failed.
        link_gbps: when set, each rank's encoded gradient upload
            occupies a per-rank link of this rate in wall-clock time
            (the bandwidth term of a ring allreduce); the threaded
            engine's ranks transmit concurrently, hiding wire time
            behind backward compute, while the sequential engine pays
            every rank's wire time serially.  Pure ``time.sleep`` —
            never affects the numerics.
        straggler_ranks / straggler_delay: inject a fixed delay (s)
            at the top of these ranks' compute phase every step.
        crash_rank / crash_step: the given rank crashes at the given
            global step (``crash_step=None`` crashes every step).
        crash_transient: the injected crash fires only on the first
            attempt of its step, so a retried step succeeds (models a
            recoverable glitch); ``False`` re-fires every attempt.
        kill_points: ``(rank, step)`` pairs at which the worker is
            killed outright.  Under the process engine the rank
            SIGKILLs itself mid-step — a real process death, not an
            exception; the in-process engines degrade each point to an
            injected crash so a grid cell keeps one meaning
            everywhere.  Kills fire once (a retried or respawned
            attempt proceeds), so they are always recoverable with
            ``max_retries >= 1``.
        max_retries: re-attempts allowed per failed step (crash or
            missed bucket rendezvous) before the failure escalates;
            0 (the default) preserves the historical fail-fast
            behaviour.
        retry_backoff / retry_backoff_max / retry_jitter: exponential
            backoff schedule between attempts — base delay in seconds
            (doubling per retry), its ceiling, and the fraction added
            as deterministic jitter.
        allow_degraded: when a rank exhausts its retries, evict it and
            continue on the survivors — the global batch is resharded
            across live ranks and the gradient mean is reweighted by
            live shard sizes.  The eviction is recorded as a
            :class:`~repro.runtime.resilience.TopologyChange` on the
            run's ``History``.
        min_world_size: smallest live world degradation may shrink to;
            a failure that would drop below it aborts the run instead.
        tracer: a :class:`repro.telemetry.Tracer` to record per-rank
            phase spans and typed counters on the live training path;
            ``None`` (the default) uses the shared no-op
            :data:`~repro.telemetry.NULL_TRACER`.  Tracing is
            observation-only: traced and untraced runs are
            bit-identical.
    """

    scheme: str = "32bit"
    bucket_size: int | None = None
    exchange: str = "mpi"
    world_size: int = 1
    batch_size: int = 32
    lr: float = 0.05
    lr_decay: float = 1.0
    momentum: float = 0.9
    weight_decay: float = 0.0
    seed: int = 0
    requantize_broadcast: bool = True
    workspace: bool = True
    passthrough_coverage: float = 0.99
    norm: str = "inf"
    variant: str = "sign"
    #: codec routing: "static" (one scheme for everything above the
    #: passthrough threshold) or "adaptive" (per-layer bit-widths from
    #: the layer-sensitivity ranking; ``scheme`` becomes the middle
    #: tier of the ladder).  See :data:`POLICY_NAMES`.
    policy: str = "static"
    #: restrict quantization to these parameter kinds (e.g. ("conv",)
    #: or ("fc", "rnn")); ``None`` quantizes every kind — the paper's
    #: Section 5.1 "Impact of Layer Types" analysis toggles this
    quantize_kinds: tuple[str, ...] | None = None
    # periodic synchronization: exchange once every N micro-steps
    #: micro-steps per synchronization round (N >= 1).  N=1 is the
    #: classic fully-synchronous path and stays bit-identical to it;
    #: N>1 accumulates local gradients (sync_mode "allreduce") or takes
    #: local optimizer steps (sync_mode "local_sgd") and runs the
    #: quantized exchange once per round, cutting wire traffic ~N-fold.
    aggregation_frequency: int = 1
    #: what a synchronization round exchanges: "allreduce" ships the
    #: accumulated gradient sum through the quantized collective and
    #: applies the mean over ranks x micro-steps; "local_sgd" lets each
    #: rank step its own replica every micro-step and averages the
    #: parameter deltas (quantized, error-fed-back) once per round.
    #: local_sgd requires momentum=0.0 — per-rank momentum on diverged
    #: replicas has no synchronous-SGD equivalent.
    sync_mode: str = "allreduce"
    # runtime execution (see repro.runtime)
    engine: str = "sequential"
    ipc: str = "shm"
    comm_bucket_bytes: int = 1 << 16
    barrier_timeout: float = 30.0
    link_gbps: float | None = None
    straggler_ranks: tuple[int, ...] = ()
    straggler_delay: float = 0.0
    crash_rank: int | None = None
    crash_step: int | None = None
    crash_transient: bool = False
    kill_points: tuple[tuple[int, int], ...] = ()
    # resilience (see repro.runtime.resilience)
    max_retries: int = 0
    retry_backoff: float = 0.05
    retry_backoff_max: float = 2.0
    retry_jitter: float = 0.1
    allow_degraded: bool = False
    min_world_size: int = 1
    # live-path telemetry (see repro.telemetry); excluded from equality
    # and repr so configs stay comparable cell labels
    tracer: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.scheme not in SCHEME_NAMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; expected one of "
                f"{SCHEME_NAMES}"
            )
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{POLICY_NAMES}"
            )
        if self.exchange not in EXCHANGE_NAMES:
            raise ValueError(
                f"unknown exchange {self.exchange!r}; expected one of "
                f"{EXCHANGE_NAMES}"
            )
        if self.world_size < 1:
            raise ValueError(
                f"world_size must be >= 1, got {self.world_size}"
            )
        if self.batch_size < self.world_size:
            raise ValueError(
                "global batch_size must be >= world_size "
                f"({self.batch_size} < {self.world_size})"
            )
        if self.aggregation_frequency < 1:
            raise ValueError(
                f"aggregation_frequency must be >= 1, got "
                f"{self.aggregation_frequency}"
            )
        if self.sync_mode not in SYNC_MODE_NAMES:
            raise ValueError(
                f"unknown sync_mode {self.sync_mode!r}; expected one of "
                f"{SYNC_MODE_NAMES}"
            )
        if self.sync_mode == "local_sgd" and self.momentum != 0.0:
            raise ValueError(
                f"sync_mode 'local_sgd' requires momentum=0.0, got "
                f"momentum={self.momentum}; per-rank momentum on diverged "
                "replicas has no synchronous-SGD equivalent"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{ENGINE_NAMES}"
            )
        if self.ipc not in IPC_NAMES:
            raise ValueError(
                f"unknown ipc {self.ipc!r}; expected one of {IPC_NAMES}"
            )
        if self.comm_bucket_bytes < 1:
            raise ValueError(
                f"comm_bucket_bytes must be >= 1, got "
                f"{self.comm_bucket_bytes}"
            )
        if self.barrier_timeout <= 0:
            raise ValueError(
                f"barrier_timeout must be > 0, got {self.barrier_timeout}"
            )
        if self.link_gbps is not None and self.link_gbps <= 0:
            raise ValueError(
                f"link_gbps must be > 0, got {self.link_gbps}"
            )
        if self.straggler_delay < 0:
            raise ValueError(
                f"straggler_delay must be >= 0, got {self.straggler_delay}"
            )
        for rank in self.straggler_ranks:
            if not 0 <= rank < self.world_size:
                raise ValueError(
                    f"straggler rank {rank} outside world of "
                    f"{self.world_size}"
                )
        if self.crash_rank is not None and not (
            0 <= self.crash_rank < self.world_size
        ):
            raise ValueError(
                f"crash_rank {self.crash_rank} outside world of "
                f"{self.world_size}"
            )
        for point in self.kill_points:
            if len(point) != 2:
                raise ValueError(
                    f"kill point {point!r} must be a (rank, step) pair"
                )
            rank, step = point
            if not 0 <= rank < self.world_size:
                raise ValueError(
                    f"kill point rank {rank} outside world of "
                    f"{self.world_size}"
                )
            if step < 0:
                raise ValueError(
                    f"kill point step must be >= 0, got {step}"
                )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.retry_backoff_max < self.retry_backoff:
            raise ValueError(
                f"retry_backoff_max ({self.retry_backoff_max}) must be >= "
                f"retry_backoff ({self.retry_backoff})"
            )
        if self.retry_jitter < 0:
            raise ValueError(
                f"retry_jitter must be >= 0, got {self.retry_jitter}"
            )
        if not 1 <= self.min_world_size <= self.world_size:
            raise ValueError(
                f"min_world_size must be in [1, {self.world_size}], got "
                f"{self.min_world_size}"
            )

    @property
    def label(self) -> str:
        """Short human-readable cell label, e.g. 'qsgd4/mpi/8gpu'."""
        return f"{self.scheme}/{self.exchange}/{self.world_size}gpu"
