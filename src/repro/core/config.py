"""Run configuration for data-parallel training experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm import EXCHANGE_NAMES
from ..quantization import SCHEME_NAMES

__all__ = ["TrainingConfig"]


@dataclass
class TrainingConfig:
    """Everything that identifies one cell of the paper's study grid.

    Attributes:
        scheme: quantizer name ("32bit", "1bit", "1bit*", "qsgd2"...).
        bucket_size: bucket size override; ``None`` uses the scheme's
            paper-tuned default.
        exchange: collective pattern ("mpi", "nccl", "alltoall").
        world_size: number of simulated GPUs.
        batch_size: *global* minibatch size, split across ranks.
        lr: learning rate (kept fixed across world sizes, as the paper
            tunes it once for full precision and reuses it).
        lr_decay: per-epoch multiplicative decay (1.0 = constant).
        momentum: SGD momentum.
        seed: seed for quantization randomness and shuffling.
        requantize_broadcast: whether the MPI path re-quantizes
            aggregated ranges before broadcast (CNTK behaviour).
        passthrough_coverage: fraction of parameters that must stay
            quantized when choosing the small-matrix threshold.
        norm / variant: QSGD scaling and level-layout options.
    """

    scheme: str = "32bit"
    bucket_size: int | None = None
    exchange: str = "mpi"
    world_size: int = 1
    batch_size: int = 32
    lr: float = 0.05
    lr_decay: float = 1.0
    momentum: float = 0.9
    weight_decay: float = 0.0
    seed: int = 0
    requantize_broadcast: bool = True
    passthrough_coverage: float = 0.99
    norm: str = "inf"
    variant: str = "sign"
    #: restrict quantization to these parameter kinds (e.g. ("conv",)
    #: or ("fc", "rnn")); ``None`` quantizes every kind — the paper's
    #: Section 5.1 "Impact of Layer Types" analysis toggles this
    quantize_kinds: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEME_NAMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; expected one of "
                f"{SCHEME_NAMES}"
            )
        if self.exchange not in EXCHANGE_NAMES:
            raise ValueError(
                f"unknown exchange {self.exchange!r}; expected one of "
                f"{EXCHANGE_NAMES}"
            )
        if self.world_size < 1:
            raise ValueError(
                f"world_size must be >= 1, got {self.world_size}"
            )
        if self.batch_size < self.world_size:
            raise ValueError(
                "global batch_size must be >= world_size "
                f"({self.batch_size} < {self.world_size})"
            )

    @property
    def label(self) -> str:
        """Short human-readable cell label, e.g. 'qsgd4/mpi/8gpu'."""
        return f"{self.scheme}/{self.exchange}/{self.world_size}gpu"
