"""The synchronous data-parallel SGD step (the paper's Algorithm 1).

:class:`SynchronousStep` owns the per-step mechanics: per-rank gradient
computation is done by the caller (the trainer); this class performs
the encode → exchange → decode → aggregate sequence for every
parameter, maintaining per-rank error-feedback residuals for biased
schemes and the small-matrix passthrough policy.
"""

from __future__ import annotations

import copy
from dataclasses import replace

import numpy as np

from ..comm import make_exchange
from ..nn.module import Parameter
from ..quantization import (
    EncodeWorkspace,
    QuantizationPolicy,
    make_quantizer,
)
from ..telemetry.tracer import NULL_TRACER
from .config import TrainingConfig

__all__ = ["SynchronousStep"]


class SynchronousStep:
    """Quantized gradient aggregation across ``world_size`` ranks."""

    def __init__(self, config: TrainingConfig, parameters: list[Parameter]):
        self.config = config
        self.world_size = config.world_size
        quantizer = self._build_quantizer(config)
        self.policy = QuantizationPolicy.for_model(
            quantizer,
            [p.size for p in parameters],
            coverage=config.passthrough_coverage,
        )
        # layer-selective quantization (Section 5.1, layer types)
        self._quantized_kinds = (
            set(config.quantize_kinds)
            if config.quantize_kinds is not None
            else None
        )
        self._kind_by_name = {
            p.name: getattr(p, "kind", "param") for p in parameters
        }
        exchange_kwargs = (
            {"requantize_broadcast": config.requantize_broadcast}
            if config.exchange == "mpi"
            else {}
        )
        self.exchange = make_exchange(
            config.exchange, config.world_size, **exchange_kwargs
        )
        # observation-only telemetry: the exchange records encode/
        # decode spans on per-rank tracks, and link traffic mirrors
        # wire bytes into the tracer's counters at the recording site
        self.tracer = config.tracer if config.tracer is not None else NULL_TRACER
        self.exchange.tracer = self.tracer
        self.exchange.traffic.counters = self.tracer.counter_sink
        self.rng = np.random.default_rng(config.seed)
        # scratch arena for the zero-allocation hot path; exchanges run
        # on one coordinator thread in both engines, so one arena is
        # enough (EncodeWorkspace is not thread-safe)
        self.workspace: EncodeWorkspace | None = (
            EncodeWorkspace() if getattr(config, "workspace", True) else None
        )
        # per-rank error-feedback residuals, keyed by parameter name
        self._residuals: list[dict[str, np.ndarray]] = [
            {} for _ in range(config.world_size)
        ]
        # bytes already on the wire before this step engine existed
        # (carried across a mid-run shrink or a checkpoint resume so
        # per-epoch comm accounting stays continuous)
        self._comm_bytes_base = 0

    @staticmethod
    def _build_quantizer(config: TrainingConfig):
        if config.scheme.startswith("qsgd"):
            return make_quantizer(
                config.scheme,
                bucket_size=config.bucket_size,
                norm=config.norm,
                variant=config.variant,
            )
        return make_quantizer(config.scheme, bucket_size=config.bucket_size)

    def aggregate(
        self, name: str, rank_grads: list[np.ndarray]
    ) -> np.ndarray:
        """Exchange one parameter's per-rank gradients; return the mean.

        Applies the small-matrix passthrough policy, per-rank error
        feedback when the scheme is biased, and records all wire
        traffic on ``self.exchange.traffic``.
        """
        if len(rank_grads) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} gradients, got {len(rank_grads)}"
            )
        codec = self.policy.codec_for(rank_grads[0].size)
        if (
            self._quantized_kinds is not None
            and self._kind_by_name.get(name, "param")
            not in self._quantized_kinds
        ):
            codec = self.policy.fullprec
        use_feedback = codec.requires_error_feedback
        ws = self.workspace

        if use_feedback:
            corrected = []
            for rank, grad in enumerate(rank_grads):
                residual = self._residuals[rank].get(name)
                if residual is None:
                    # residuals persist across steps: a one-time
                    # allocation, updated in place from then on
                    residual = np.zeros_like(grad)
                    self._residuals[rank][name] = residual
                if ws is None:
                    corrected.append(grad + residual)
                else:
                    buf = ws.array(("corr", rank), grad.shape, grad.dtype)
                    np.add(grad, residual, out=buf)
                    corrected.append(buf)
        else:
            corrected = list(rank_grads)

        result = self.exchange.exchange(
            name, corrected, codec, self.rng, workspace=ws
        )

        if use_feedback:
            for rank in range(self.world_size):
                # in-place: same subtraction, same operand order as
                # `corrected - decoded_local`, written into the
                # persistent residual buffer
                np.subtract(
                    corrected[rank],
                    result.decoded_local[rank],
                    out=self._residuals[rank][name],
                )

        if ws is None:
            return result.aggregate / self.world_size
        # per-name mean buffers: the engines collect means for every
        # parameter of a step before applying them, so buffers must not
        # alias across parameters
        mean = ws.array(("mean", name), result.aggregate.shape)
        np.divide(result.aggregate, self.world_size, out=mean)
        return mean

    def aggregate_bucket(
        self,
        names: list[str],
        rank_grads_by_name: dict[str, list[np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """Aggregate one coalesced gradient bucket, name by name.

        The runtime engines exchange buckets in a fixed order; within
        a bucket this method pins the per-parameter order (and hence
        the quantization RNG stream), so sequential and threaded
        execution consume identical randomness.
        """
        return {
            name: self.aggregate(name, rank_grads_by_name[name])
            for name in names
        }

    def payload_nbytes(self, name: str, shape: tuple[int, ...]) -> int:
        """Encoded size of one rank's wire contribution for ``name``.

        Applies the same codec selection as :meth:`aggregate` (the
        small-matrix passthrough policy and layer-kind selectivity),
        so the runtime's link pacing charges exactly the bytes the
        scheme would put on the wire.
        """
        size = 1
        for dim in shape:
            size *= int(dim)
        codec = self.policy.codec_for(size)
        if (
            self._quantized_kinds is not None
            and self._kind_by_name.get(name, "param")
            not in self._quantized_kinds
        ):
            codec = self.policy.fullprec
        return codec.encoded_nbytes(shape)

    @property
    def comm_bytes(self) -> int:
        """Total bytes moved since construction (or last reset)."""
        return self.exchange.traffic.total_bytes + self._comm_bytes_base

    def reset_traffic(self) -> None:
        self.exchange.traffic.reset()
        self._comm_bytes_base = 0

    def set_comm_bytes_base(self, nbytes: int) -> None:
        """Preset bytes already accounted before this engine's traffic."""
        self._comm_bytes_base = int(nbytes)

    # -- resilience hooks -------------------------------------------------
    def snapshot(self) -> dict:
        """Deep copy of all numeric state a step can mutate.

        Covers the shared quantization RNG, per-rank error-feedback
        residuals, and any aggregator-side exchange state (the MPI
        path's broadcast residuals).  Restoring the snapshot makes a
        partially-executed step as if it never ran, which is what
        makes step retries sound.
        """
        return {
            "rng": copy.deepcopy(self.rng.bit_generator.state),
            "residuals": [
                {name: array.copy() for name, array in per_rank.items()}
                for per_rank in self._residuals
            ],
            "exchange": self.exchange.state_dict(),
        }

    def restore_snapshot(self, snap: dict) -> None:
        """Rewind to a state captured by :meth:`snapshot`."""
        self.rng.bit_generator.state = copy.deepcopy(snap["rng"])
        self._residuals = [
            {name: array.copy() for name, array in per_rank.items()}
            for per_rank in snap["residuals"]
        ]
        self.exchange.load_state_dict(
            {key: array.copy() for key, array in snap["exchange"].items()}
        )

    def shrink(self, keep: list[int], parameters: list[Parameter]) -> "SynchronousStep":
        """A new step engine over the surviving rank positions.

        ``keep`` holds the *positions* (indices into the current rank
        order) that survive an eviction.  The shared quantization RNG
        continues from its current state and the survivors keep their
        error-feedback residual buffers, so the degraded collective
        picks up exactly where the full one stopped.  Aggregator-side
        exchange state is deliberately dropped: the MPI column ranges
        are re-partitioned over the smaller world, which orphans the
        old per-range broadcast residuals.
        """
        config = replace(
            self.config,
            world_size=len(keep),
            straggler_ranks=(),
            crash_rank=None,
            crash_step=None,
            kill_points=(),
        )
        shrunk = SynchronousStep(config, parameters)
        shrunk.rng.bit_generator.state = copy.deepcopy(
            self.rng.bit_generator.state
        )
        shrunk._residuals = [self._residuals[index] for index in keep]
        shrunk._comm_bytes_base = self.comm_bytes
        return shrunk

    def reset(self) -> None:
        """Drop residuals, aggregator state, and traffic records."""
        self.exchange.reset()
        self._residuals = [{} for _ in range(self.world_size)]
        self._comm_bytes_base = 0
