"""The synchronous data-parallel SGD step (the paper's Algorithm 1).

:class:`SynchronousStep` owns the per-step mechanics: per-rank gradient
computation is done by the caller (the trainer); this class performs
the encode → exchange → decode → aggregate sequence for every
parameter, maintaining per-rank error-feedback residuals for biased
schemes and the small-matrix passthrough policy.
"""

from __future__ import annotations

import copy
from dataclasses import replace

import numpy as np

from ..comm import make_exchange
from ..nn.module import Parameter
from ..quantization import (
    AdaptiveBitWidthPolicy,
    EncodeWorkspace,
    QuantizationPolicy,
    make_quantizer,
)
from ..telemetry.tracer import NULL_TRACER
from .config import TrainingConfig

__all__ = ["SynchronousStep"]


class SynchronousStep:
    """Quantized gradient aggregation across ``world_size`` ranks."""

    def __init__(self, config: TrainingConfig, parameters: list[Parameter]):
        self.config = config
        self.world_size = config.world_size
        quantizer = self._build_quantizer(config)
        if getattr(config, "policy", "static") == "adaptive":
            # per-layer bit-widths: derived deterministically from the
            # parameter inventory (sizes + kinds), so a resumed or
            # degraded run rebuilds the identical assignment table
            self.policy: QuantizationPolicy = (
                AdaptiveBitWidthPolicy.for_layers(
                    quantizer,
                    [
                        (p.name, p.size, getattr(p, "kind", "param"))
                        for p in parameters
                    ],
                    coverage=config.passthrough_coverage,
                )
            )
        else:
            self.policy = QuantizationPolicy.for_model(
                quantizer,
                [p.size for p in parameters],
                coverage=config.passthrough_coverage,
            )
        # layer-selective quantization (Section 5.1, layer types)
        self._quantized_kinds = (
            set(config.quantize_kinds)
            if config.quantize_kinds is not None
            else None
        )
        self._kind_by_name = {
            p.name: getattr(p, "kind", "param") for p in parameters
        }
        exchange_kwargs = (
            {"requantize_broadcast": config.requantize_broadcast}
            if config.exchange == "mpi"
            else {}
        )
        self.exchange = make_exchange(
            config.exchange, config.world_size, **exchange_kwargs
        )
        # observation-only telemetry: the exchange records encode/
        # decode spans on per-rank tracks, and link traffic mirrors
        # wire bytes into the tracer's counters at the recording site
        self.tracer = config.tracer if config.tracer is not None else NULL_TRACER
        self.exchange.tracer = self.tracer
        self.exchange.traffic.counters = self.tracer.counter_sink
        self.rng = np.random.default_rng(config.seed)
        # scratch arena for the zero-allocation hot path; exchanges run
        # on one coordinator thread in both engines, so one arena is
        # enough (EncodeWorkspace is not thread-safe)
        self.workspace: EncodeWorkspace | None = (
            EncodeWorkspace() if getattr(config, "workspace", True) else None
        )
        # per-rank error-feedback residuals, keyed by parameter name
        self._residuals: list[dict[str, np.ndarray]] = [
            {} for _ in range(config.world_size)
        ]
        # periodic synchronization (aggregation_frequency > 1): a round
        # is N micro-steps; the quantized exchange runs only on the
        # round's last micro-step
        self.frequency = config.aggregation_frequency
        self.sync_mode = config.sync_mode
        self._round_position = 0
        # "allreduce" mode: per-rank running gradient sums, allocated
        # once per (rank, name) — from the workspace arena when one is
        # active — and zeroed after every round flush
        self._accumulators: list[dict[str, np.ndarray]] = [
            {} for _ in range(config.world_size)
        ]
        self._accumulating = self.frequency > 1 and self.sync_mode == "allreduce"
        # "local_sgd" mode: parameter values at the top of the round;
        # the round flush exchanges per-rank deltas against this base
        self._round_base: dict[str, np.ndarray] = {}
        # bytes already on the wire before this step engine existed
        # (carried across a mid-run shrink or a checkpoint resume so
        # per-epoch comm accounting stays continuous)
        self._comm_bytes_base = 0

    @staticmethod
    def _build_quantizer(config: TrainingConfig):
        if config.scheme.startswith("qsgd"):
            return make_quantizer(
                config.scheme,
                bucket_size=config.bucket_size,
                norm=config.norm,
                variant=config.variant,
            )
        return make_quantizer(config.scheme, bucket_size=config.bucket_size)

    # -- round lifecycle --------------------------------------------------
    @property
    def round_position(self) -> int:
        """Completed micro-steps inside the current round (0..N-1)."""
        return self._round_position

    @property
    def sync_this_step(self) -> bool:
        """Whether the current micro-step closes the round (exchanges)."""
        return self._round_position + 1 >= self.frequency

    @property
    def local_updates(self) -> bool:
        """Whether ranks step their own replicas between exchanges."""
        return self.sync_mode == "local_sgd"

    def advance_round(self) -> None:
        """Advance the round position by one committed micro-step."""
        self._round_position = (self._round_position + 1) % self.frequency

    def begin_round(self, parameters: list[Parameter]) -> None:
        """Capture the round base for local-SGD parameter averaging.

        A no-op except at the top of a local-SGD round; idempotent
        there (parameters have not moved yet), so step retries may call
        it again freely.
        """
        if not self.local_updates or self._round_position != 0:
            return
        for param in parameters:
            base = self._round_base.get(param.name)
            if base is None:
                base = np.empty_like(param.data)
                self._round_base[param.name] = base
            np.copyto(base, param.data)

    def _accumulator(
        self, rank: int, name: str, shape: tuple[int, ...], dtype
    ) -> np.ndarray:
        acc = self._accumulators[rank].get(name)
        if acc is None:
            ws = self.workspace
            if ws is None:
                acc = np.zeros(shape, dtype)
            else:
                acc = ws.array(("acc", rank, name), shape, dtype)
                acc.fill(0)
            self._accumulators[rank][name] = acc
        return acc

    def accumulate(self, name: str, rank_grads: list[np.ndarray]) -> None:
        """Fold one micro-step's per-rank gradients into the round sums."""
        if len(rank_grads) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} gradients, got {len(rank_grads)}"
            )
        for rank, grad in enumerate(rank_grads):
            acc = self._accumulator(rank, name, grad.shape, grad.dtype)
            np.add(acc, grad, out=acc)

    def accumulate_bucket(
        self,
        names: list[str],
        rank_grads_by_name: dict[str, list[np.ndarray]],
    ) -> None:
        """Accumulate one coalesced bucket on a skipped round step."""
        for name in names:
            self.accumulate(name, rank_grads_by_name[name])

    def average_parameter(
        self, name: str, rank_params: list[np.ndarray]
    ) -> np.ndarray:
        """Average diverged replicas of one parameter (local SGD flush).

        Each rank's delta against the round base travels through the
        same quantized exchange as a gradient would — error feedback,
        passthrough policy, and wire accounting included — and the
        averaged value is ``base + mean(delta)``.
        """
        if len(rank_params) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} replicas, got {len(rank_params)}"
            )
        base = self._round_base[name]
        ws = self.workspace
        if ws is None:
            deltas = [params - base for params in rank_params]
        else:
            deltas = []
            for rank, params in enumerate(rank_params):
                buf = ws.array(("delta", rank), base.shape, base.dtype)
                np.subtract(params, base, out=buf)
                deltas.append(buf)
        mean_delta = self.aggregate(name, deltas)
        if ws is None:
            return base + mean_delta
        averaged = ws.array(("avg", name), base.shape, base.dtype)
        np.add(base, mean_delta, out=averaged)
        return averaged

    def aggregate(
        self, name: str, rank_grads: list[np.ndarray]
    ) -> np.ndarray:
        """Exchange one parameter's per-rank gradients; return the mean.

        Applies the small-matrix passthrough policy, per-rank error
        feedback when the scheme is biased, and records all wire
        traffic on ``self.exchange.traffic``.
        """
        if len(rank_grads) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} gradients, got {len(rank_grads)}"
            )
        codec = self.policy.codec_for_layer(name, rank_grads[0].size)
        if (
            self._quantized_kinds is not None
            and self._kind_by_name.get(name, "param")
            not in self._quantized_kinds
        ):
            codec = self.policy.fullprec
        use_feedback = codec.requires_error_feedback
        ws = self.workspace
        scale = self.world_size
        if self._accumulating:
            # round flush: fold the closing micro-step's gradients into
            # the running sums, exchange the sums, and normalize by
            # ranks x micro-steps (large-batch mean semantics)
            self.accumulate(name, rank_grads)
            rank_grads = [
                self._accumulators[rank][name]
                for rank in range(self.world_size)
            ]
            scale = self.world_size * self.frequency

        if use_feedback:
            corrected = []
            for rank, grad in enumerate(rank_grads):
                residual = self._residuals[rank].get(name)
                if residual is None:
                    # residuals persist across steps: a one-time
                    # allocation, updated in place from then on
                    residual = np.zeros_like(grad)
                    self._residuals[rank][name] = residual
                if ws is None:
                    corrected.append(grad + residual)
                else:
                    buf = ws.array(("corr", rank), grad.shape, grad.dtype)
                    np.add(grad, residual, out=buf)
                    corrected.append(buf)
        else:
            corrected = list(rank_grads)

        result = self.exchange.exchange(
            name, corrected, codec, self.rng, workspace=ws
        )

        if use_feedback:
            for rank in range(self.world_size):
                # in-place: same subtraction, same operand order as
                # `corrected - decoded_local`, written into the
                # persistent residual buffer
                np.subtract(
                    corrected[rank],
                    result.decoded_local[rank],
                    out=self._residuals[rank][name],
                )

        if ws is None:
            mean = result.aggregate / scale
        else:
            # per-name mean buffers: the engines collect means for every
            # parameter of a step before applying them, so buffers must
            # not alias across parameters
            mean = ws.array(("mean", name), result.aggregate.shape)
            np.divide(result.aggregate, scale, out=mean)
        if self._accumulating:
            # the round is flushed; the sums restart from zero
            for rank in range(self.world_size):
                self._accumulators[rank][name].fill(0)
        return mean

    def aggregate_bucket(
        self,
        names: list[str],
        rank_grads_by_name: dict[str, list[np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """Aggregate one coalesced gradient bucket, name by name.

        The runtime engines exchange buckets in a fixed order; within
        a bucket this method pins the per-parameter order (and hence
        the quantization RNG stream), so sequential and threaded
        execution consume identical randomness.
        """
        return {
            name: self.aggregate(name, rank_grads_by_name[name])
            for name in names
        }

    def payload_nbytes(self, name: str, shape: tuple[int, ...]) -> int:
        """Encoded size of one rank's wire contribution for ``name``.

        Applies the same codec selection as :meth:`aggregate` (the
        small-matrix passthrough policy and layer-kind selectivity),
        so the runtime's link pacing charges exactly the bytes the
        scheme would put on the wire.
        """
        size = 1
        for dim in shape:
            size *= int(dim)
        codec = self.policy.codec_for_layer(name, size)
        if (
            self._quantized_kinds is not None
            and self._kind_by_name.get(name, "param")
            not in self._quantized_kinds
        ):
            codec = self.policy.fullprec
        return codec.encoded_nbytes(shape)

    @property
    def comm_bytes(self) -> int:
        """Total bytes moved since construction (or last reset)."""
        return self.exchange.traffic.total_bytes + self._comm_bytes_base

    def reset_traffic(self) -> None:
        self.exchange.traffic.reset()
        self._comm_bytes_base = 0

    def set_comm_bytes_base(self, nbytes: int) -> None:
        """Preset bytes already accounted before this engine's traffic."""
        self._comm_bytes_base = int(nbytes)

    # -- resilience hooks -------------------------------------------------
    def snapshot(self) -> dict:
        """Deep copy of all numeric state a step can mutate.

        Covers the shared quantization RNG, per-rank error-feedback
        residuals, and any aggregator-side exchange state (the MPI
        path's broadcast residuals).  Restoring the snapshot makes a
        partially-executed step as if it never ran, which is what
        makes step retries sound.
        """
        return {
            "rng": copy.deepcopy(self.rng.bit_generator.state),
            "residuals": [
                {name: array.copy() for name, array in per_rank.items()}
                for per_rank in self._residuals
            ],
            "exchange": self.exchange.state_dict(),
            "round_position": self._round_position,
            "accumulators": [
                {name: array.copy() for name, array in per_rank.items()}
                for per_rank in self._accumulators
            ],
            "round_base": {
                name: array.copy()
                for name, array in self._round_base.items()
            },
        }

    def restore_snapshot(self, snap: dict) -> None:
        """Rewind to a state captured by :meth:`snapshot`."""
        self.rng.bit_generator.state = copy.deepcopy(snap["rng"])
        self._residuals = [
            {name: array.copy() for name, array in per_rank.items()}
            for per_rank in snap["residuals"]
        ]
        self.exchange.load_state_dict(
            {key: array.copy() for key, array in snap["exchange"].items()}
        )
        self._round_position = snap["round_position"]
        self._accumulators = [
            {name: array.copy() for name, array in per_rank.items()}
            for per_rank in snap["accumulators"]
        ]
        self._round_base = {
            name: array.copy()
            for name, array in snap["round_base"].items()
        }

    def shrink(self, keep: list[int], parameters: list[Parameter]) -> "SynchronousStep":
        """A new step engine over the surviving rank positions.

        ``keep`` holds the *positions* (indices into the current rank
        order) that survive an eviction.  The shared quantization RNG
        continues from its current state and the survivors keep their
        error-feedback residual buffers, so the degraded collective
        picks up exactly where the full one stopped.  Aggregator-side
        exchange state is deliberately dropped: the MPI column ranges
        are re-partitioned over the smaller world, which orphans the
        old per-range broadcast residuals.
        """
        config = replace(
            self.config,
            world_size=len(keep),
            straggler_ranks=(),
            crash_rank=None,
            crash_step=None,
            kill_points=(),
        )
        shrunk = SynchronousStep(config, parameters)
        shrunk.rng.bit_generator.state = copy.deepcopy(
            self.rng.bit_generator.state
        )
        shrunk._residuals = [self._residuals[index] for index in keep]
        shrunk._comm_bytes_base = self.comm_bytes
        # the round continues across the eviction: survivors keep their
        # partial accumulations (the dead rank's are dropped with it)
        # and the local-SGD base stays valid — it was captured when all
        # replicas were still equal at the top of the round
        shrunk._round_position = self._round_position
        shrunk._accumulators = [self._accumulators[index] for index in keep]
        shrunk._round_base = self._round_base
        return shrunk

    def reset(self) -> None:
        """Drop residuals, aggregator state, and traffic records."""
        self.exchange.reset()
        self._residuals = [{} for _ in range(self.world_size)]
        self._comm_bytes_base = 0
        self._round_position = 0
        self._accumulators = [{} for _ in range(self.world_size)]
        self._round_base = {}
