"""Model zoo (trainable analogues) and paper-scale network specs."""

from .blocks import InceptionBlock, ResidualBlock
from .zoo import (
    MODEL_BUILDERS,
    build_model,
    speech_lstm,
    tiny_alexnet,
    tiny_inception,
    tiny_resnet,
    tiny_vgg,
)

__all__ = [
    "InceptionBlock",
    "ResidualBlock",
    "MODEL_BUILDERS",
    "build_model",
    "speech_lstm",
    "tiny_alexnet",
    "tiny_inception",
    "tiny_resnet",
    "tiny_vgg",
]
