"""Scaled-down trainable analogues of the paper's networks.

These models run real forward/backward passes on the numpy substrate
for the accuracy experiments (paper Figure 5).  Each mirrors the
*communication profile* of its paper-scale counterpart — AlexNet/VGG
are dominated by fully connected parameters, ResNet/Inception are
almost entirely convolutional, and the speech model is recurrent —
which is what determines how quantization affects it.

Factory functions take an image/sequence geometry and a seed, so tests
and experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import (
    BatchNorm,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
)
from ..nn.module import Module, Sequential
from ..nn.rnn import Lstm, TakeLast
from .blocks import InceptionBlock, ResidualBlock

__all__ = [
    "tiny_alexnet",
    "tiny_vgg",
    "tiny_resnet",
    "tiny_inception",
    "speech_lstm",
    "MODEL_BUILDERS",
    "build_model",
]


def tiny_alexnet(
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 32,
    seed: int = 0,
) -> Sequential:
    """AlexNet analogue: few conv layers, parameter mass in the FCs."""
    rng = np.random.default_rng(seed)
    feat = image_size // 4  # two stride-2 reductions below
    return Sequential(
        Conv2d(in_channels, 16, 5, "conv1", rng, stride=1, pad=2),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, 3, "conv2", rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(32 * feat * feat, 256, "fc6", rng),
        ReLU(),
        Dropout(0.25, rng),
        Dense(256, 128, "fc7", rng),
        ReLU(),
        Dense(128, num_classes, "fc8", rng),
    )


def tiny_vgg(
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 32,
    seed: int = 0,
) -> Sequential:
    """VGG analogue: stacked 3x3 convs and a very large FC head."""
    rng = np.random.default_rng(seed)
    feat = image_size // 8
    return Sequential(
        Conv2d(in_channels, 16, 3, "conv1a", rng),
        ReLU(),
        Conv2d(16, 16, 3, "conv1b", rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, 3, "conv2a", rng),
        ReLU(),
        Conv2d(32, 32, 3, "conv2b", rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(32, 48, 3, "conv3a", rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(48 * feat * feat, 384, "fc1", rng),
        ReLU(),
        Dropout(0.25, rng),
        Dense(384, num_classes, "fc2", rng),
    )


def tiny_resnet(
    num_classes: int = 10,
    in_channels: int = 3,
    blocks_per_stage: int = 2,
    widths: tuple[int, int, int] = (16, 32, 64),
    seed: int = 0,
) -> Sequential:
    """ResNet analogue: conv stem, three residual stages, GAP head.

    ``blocks_per_stage=2`` gives a ResNet-14-style model; the paper's
    ResNet110 uses 18 basic blocks per stage with the same widths.
    """
    rng = np.random.default_rng(seed)
    model = Sequential(
        Conv2d(in_channels, widths[0], 3, "stem", rng, bias=False),
        BatchNorm(widths[0], "stem.bn"),
        ReLU(),
    )
    in_ch = widths[0]
    for stage, width in enumerate(widths):
        for block in range(blocks_per_stage):
            stride = 2 if stage > 0 and block == 0 else 1
            model.append(
                ResidualBlock(
                    in_ch, width, f"s{stage}b{block}", rng, stride=stride
                )
            )
            in_ch = width
    model.append(GlobalAvgPool2d())
    model.append(Dense(in_ch, num_classes, "fc", rng))
    return model


def tiny_inception(
    num_classes: int = 10,
    in_channels: int = 3,
    seed: int = 0,
) -> Sequential:
    """BN-Inception analogue: conv stem plus two inception modules."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(in_channels, 16, 3, "stem", rng, stride=2, bias=False),
        BatchNorm(16, "stem.bn"),
        ReLU(),
        InceptionBlock(16, (8, 12, 12, 8), "inc1", rng),
        InceptionBlock(40, (12, 16, 16, 12), "inc2", rng),
        GlobalAvgPool2d(),
        Dense(56, num_classes, "fc", rng),
    )


def speech_lstm(
    num_classes: int = 10,
    input_size: int = 20,
    hidden_size: int = 48,
    layers: int = 3,
    seed: int = 0,
) -> Sequential:
    """Speech-recognition analogue: stacked LSTMs, as in the AN4 recipe."""
    rng = np.random.default_rng(seed)
    model = Sequential()
    size = input_size
    for index in range(layers):
        model.append(Lstm(size, hidden_size, f"lstm{index}", rng))
        size = hidden_size
    model.append(TakeLast())
    model.append(Dense(hidden_size, num_classes, "fc", rng))
    return model


MODEL_BUILDERS = {
    "alexnet": tiny_alexnet,
    "vgg": tiny_vgg,
    "resnet": tiny_resnet,
    "inception": tiny_inception,
    "lstm": speech_lstm,
}


def build_model(name: str, **kwargs) -> Module:
    """Build a zoo model by its short name."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; expected one of "
            f"{sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(**kwargs)
