"""Composite blocks: residual and inception modules.

These are the structural elements of the paper's ResNet and
BN-Inception workloads, built from the :mod:`repro.nn` layers with
hand-written backward passes through the branch/merge points.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import BatchNorm, Conv2d, ReLU
from ..nn.module import Module, Sequential

__all__ = ["ResidualBlock", "InceptionBlock"]


class ResidualBlock(Module):
    """Basic 2-layer residual block: conv-bn-relu-conv-bn (+) relu.

    When ``stride > 1`` or the channel count changes, the shortcut is a
    1x1 strided convolution with batch norm (projection shortcut);
    otherwise it is the identity.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        name: str,
        rng: np.random.Generator,
        stride: int = 1,
    ):
        self.main = Sequential(
            Conv2d(
                in_channels,
                out_channels,
                3,
                f"{name}.conv1",
                rng,
                stride=stride,
                bias=False,
            ),
            BatchNorm(out_channels, f"{name}.bn1"),
            ReLU(),
            Conv2d(
                out_channels,
                out_channels,
                3,
                f"{name}.conv2",
                rng,
                bias=False,
            ),
            BatchNorm(out_channels, f"{name}.bn2"),
        )
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module | None = Sequential(
                Conv2d(
                    in_channels,
                    out_channels,
                    1,
                    f"{name}.proj",
                    rng,
                    stride=stride,
                    pad=0,
                    bias=False,
                ),
                BatchNorm(out_channels, f"{name}.bn_proj"),
            )
        else:
            self.shortcut = None
        self.relu = ReLU()

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        main = self.main.forward(x, training=training)
        skip = (
            self.shortcut.forward(x, training=training)
            if self.shortcut is not None
            else x
        )
        return self.relu.forward(main + skip, training=training)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        dsum = self.relu.backward(dout)
        dx = self.main.backward(dsum)
        if self.shortcut is not None:
            dx = dx + self.shortcut.backward(dsum)
        else:
            dx = dx + dsum
        return dx


class InceptionBlock(Module):
    """Simplified BN-Inception module with four parallel branches.

    Branches: 1x1 conv; 1x1 -> 3x3; 1x1 -> 3x3 -> 3x3; 3x3 max-pool ->
    1x1.  All convolutions are followed by batch norm and ReLU, and
    branch outputs are concatenated along the channel axis.
    """

    def __init__(
        self,
        in_channels: int,
        widths: tuple[int, int, int, int],
        name: str,
        rng: np.random.Generator,
    ):
        w1, w2, w3, w4 = widths

        def conv_bn(cin: int, cout: int, k: int, tag: str) -> Sequential:
            return Sequential(
                Conv2d(cin, cout, k, f"{name}.{tag}", rng, bias=False),
                BatchNorm(cout, f"{name}.{tag}.bn"),
                ReLU(),
            )

        self.branch1 = conv_bn(in_channels, w1, 1, "b1")
        self.branch2 = Sequential(
            conv_bn(in_channels, w2 // 2, 1, "b2a"),
            conv_bn(w2 // 2, w2, 3, "b2b"),
        )
        self.branch3 = Sequential(
            conv_bn(in_channels, w3 // 2, 1, "b3a"),
            conv_bn(w3 // 2, w3, 3, "b3b"),
            conv_bn(w3, w3, 3, "b3c"),
        )
        # The original pool branch needs "same"-padded pooling, which
        # MaxPool2d does not implement; a 1x1 conv branch preserves the
        # branch-concat structure with the same parameter profile.
        self.branch4 = conv_bn(in_channels, w4, 1, "b4")
        self.widths = (w1, w2, w3, w4)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        outs = [
            self.branch1.forward(x, training=training),
            self.branch2.forward(x, training=training),
            self.branch3.forward(x, training=training),
            self.branch4.forward(x, training=training),
        ]
        return np.concatenate(outs, axis=1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        w1, w2, w3, w4 = self.widths
        splits = np.cumsum([w1, w2, w3])
        d1, d2, d3, d4 = np.split(dout, splits, axis=1)
        dx = self.branch1.backward(np.ascontiguousarray(d1))
        dx = dx + self.branch2.backward(np.ascontiguousarray(d2))
        dx = dx + self.branch3.backward(np.ascontiguousarray(d3))
        dx = dx + self.branch4.backward(np.ascontiguousarray(d4))
        return dx
