"""Paper-scale network inventories (Figures 3 and 4 of the paper).

The performance simulator never trains the paper-scale networks — it
costs them.  What it needs from each network is exactly what this
module records:

* the per-layer gradient-matrix shapes in the CNTK layout (first
  tensor dimension = matrix rows, remaining dimensions flattened onto
  columns).  CNTK stores convolution kernels kernel-width-first, which
  is why stock 1bitSGD sees columns of length 1-3 on conv layers — the
  performance artefact of Section 3.2.2;
* the published training recipe: epochs to convergence and initial
  learning rate (Figure 3), and the batch size per GPU count
  (Figure 4);
* a calibrated compute rate: the measured single-K80 throughput from
  the paper's Figure 10 (its only 1-GPU column), from which the
  simulator derives per-sample compute time;
* nominal training GFLOPs per sample, used by the Figure 16
  extrapolation's MB/GFLOPS axis.

Parameter counts reconstructed from the published architectures match
Figure 3 (AlexNet 62M, VGG19 143M, ResNet50 25M, ResNet152 60M,
BN-Inception 11M, ResNet110 1.7M, LSTM 13M) and are asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GradientMatrixSpec", "NetworkSpec", "NETWORKS", "get_network"]


@dataclass(frozen=True)
class GradientMatrixSpec:
    """Shape of one gradient matrix in the CNTK row/column layout."""

    name: str
    rows: int
    cols: int
    kind: str  # "conv" | "fc" | "bn" | "rnn" | "bias"

    @property
    def size(self) -> int:
        return self.rows * self.cols

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)


@dataclass(frozen=True)
class NetworkSpec:
    """Everything the simulator and study harness need about a network."""

    name: str
    dataset: str
    samples_per_epoch: int
    epochs_to_converge: int
    initial_lr: float
    gflops_per_sample: float
    k80_samples_per_second: float
    published_accuracy: float
    batch_sizes: dict[int, int]
    layers: tuple[GradientMatrixSpec, ...]
    smallbatch_speedup: float = 1.0

    @property
    def parameter_count(self) -> int:
        return sum(layer.size for layer in self.layers)

    @property
    def model_megabytes(self) -> float:
        """Model (= gradient) size in MB at full precision."""
        return self.parameter_count * 4 / 1e6

    @property
    def conv_fraction(self) -> float:
        """Fraction of parameters living in convolutional kernels."""
        conv = sum(l.size for l in self.layers if l.kind == "conv")
        return conv / max(self.parameter_count, 1)

    def batch_size_for(self, n_gpus: int) -> int:
        """Global batch size used at ``n_gpus`` (Figure 4)."""
        try:
            return self.batch_sizes[n_gpus]
        except KeyError:
            raise ValueError(
                f"{self.name} was not run at {n_gpus} GPUs in the paper"
            ) from None

    @property
    def gpu_counts(self) -> tuple[int, ...]:
        return tuple(sorted(self.batch_sizes))


# ---------------------------------------------------------------------------
# layer builders (CNTK layout: rows = first tensor dim = kernel width for
# convolutions, input dim for dense layers)
# ---------------------------------------------------------------------------


def _conv(name: str, k: int, cin: int, cout: int) -> list[GradientMatrixSpec]:
    return [
        GradientMatrixSpec(name, k, k * cin * cout, "conv"),
        GradientMatrixSpec(f"{name}.b", cout, 1, "bias"),
    ]


def _fc(name: str, cin: int, cout: int) -> list[GradientMatrixSpec]:
    return [
        GradientMatrixSpec(name, cin, cout, "fc"),
        GradientMatrixSpec(f"{name}.b", cout, 1, "bias"),
    ]


def _bn(name: str, channels: int) -> list[GradientMatrixSpec]:
    return [
        GradientMatrixSpec(f"{name}.gamma", channels, 1, "bn"),
        GradientMatrixSpec(f"{name}.beta", channels, 1, "bn"),
    ]


def _lstm(name: str, d: int, h: int) -> list[GradientMatrixSpec]:
    return [
        GradientMatrixSpec(f"{name}.Wx", d, 4 * h, "rnn"),
        GradientMatrixSpec(f"{name}.Wh", h, 4 * h, "rnn"),
        GradientMatrixSpec(f"{name}.b", 4 * h, 1, "bias"),
    ]


# ---------------------------------------------------------------------------
# network inventories
# ---------------------------------------------------------------------------


def _alexnet_layers() -> tuple[GradientMatrixSpec, ...]:
    layers: list[GradientMatrixSpec] = []
    layers += _conv("conv1", 11, 3, 96)
    layers += _conv("conv2", 5, 96, 256)
    layers += _conv("conv3", 3, 256, 384)
    layers += _conv("conv4", 3, 384, 384)
    layers += _conv("conv5", 3, 384, 256)
    layers += _fc("fc6", 9216, 4096)
    layers += _fc("fc7", 4096, 4096)
    layers += _fc("fc8", 4096, 1000)
    return tuple(layers)


def _vgg19_layers() -> tuple[GradientMatrixSpec, ...]:
    plan = [
        (3, 64),
        (64, 64),
        (64, 128),
        (128, 128),
        (128, 256),
        (256, 256),
        (256, 256),
        (256, 256),
        (256, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
        (512, 512),
    ]
    layers: list[GradientMatrixSpec] = []
    for index, (cin, cout) in enumerate(plan):
        layers += _conv(f"conv{index + 1}", 3, cin, cout)
    layers += _fc("fc6", 25088, 4096)
    layers += _fc("fc7", 4096, 4096)
    layers += _fc("fc8", 4096, 1000)
    return tuple(layers)


def _resnet_bottleneck_layers(
    stage_blocks: tuple[int, int, int, int],
) -> tuple[GradientMatrixSpec, ...]:
    """ImageNet ResNet with bottleneck blocks (50/101/152 family)."""
    layers: list[GradientMatrixSpec] = []
    layers += _conv("stem", 7, 3, 64)
    layers += _bn("stem.bn", 64)
    in_ch = 64
    widths = (64, 128, 256, 512)
    for stage, (blocks, width) in enumerate(zip(stage_blocks, widths)):
        out_ch = width * 4
        for block in range(blocks):
            tag = f"s{stage}b{block}"
            layers += _conv(f"{tag}.c1", 1, in_ch, width)
            layers += _bn(f"{tag}.bn1", width)
            layers += _conv(f"{tag}.c2", 3, width, width)
            layers += _bn(f"{tag}.bn2", width)
            layers += _conv(f"{tag}.c3", 1, width, out_ch)
            layers += _bn(f"{tag}.bn3", out_ch)
            if block == 0:
                layers += _conv(f"{tag}.proj", 1, in_ch, out_ch)
                layers += _bn(f"{tag}.bn_proj", out_ch)
            in_ch = out_ch
    layers += _fc("fc", 2048, 1000)
    return tuple(layers)


def _resnet110_layers() -> tuple[GradientMatrixSpec, ...]:
    """CIFAR ResNet-110: 3 stages x 18 basic blocks, widths 16/32/64."""
    layers: list[GradientMatrixSpec] = []
    layers += _conv("stem", 3, 3, 16)
    layers += _bn("stem.bn", 16)
    in_ch = 16
    for stage, width in enumerate((16, 32, 64)):
        for block in range(18):
            tag = f"s{stage}b{block}"
            layers += _conv(f"{tag}.c1", 3, in_ch, width)
            layers += _bn(f"{tag}.bn1", width)
            layers += _conv(f"{tag}.c2", 3, width, width)
            layers += _bn(f"{tag}.bn2", width)
            if in_ch != width:
                layers += _conv(f"{tag}.proj", 1, in_ch, width)
                layers += _bn(f"{tag}.bn_proj", width)
            in_ch = width
    layers += _fc("fc", 64, 10)
    return tuple(layers)


def _inception_module(
    name: str, cin: int, widths: tuple[int, int, int, int, int, int]
) -> list[GradientMatrixSpec]:
    """One BN-Inception module: 1x1, 1x1->3x3, 1x1->3x3->3x3, pool->1x1."""
    w1, r3, w3, r33, w33, wp = widths
    layers: list[GradientMatrixSpec] = []
    if w1:
        layers += _conv(f"{name}.b1", 1, cin, w1)
        layers += _bn(f"{name}.b1.bn", w1)
    layers += _conv(f"{name}.b2a", 1, cin, r3)
    layers += _bn(f"{name}.b2a.bn", r3)
    layers += _conv(f"{name}.b2b", 3, r3, w3)
    layers += _bn(f"{name}.b2b.bn", w3)
    layers += _conv(f"{name}.b3a", 1, cin, r33)
    layers += _bn(f"{name}.b3a.bn", r33)
    layers += _conv(f"{name}.b3b", 3, r33, w33)
    layers += _bn(f"{name}.b3b.bn", w33)
    layers += _conv(f"{name}.b3c", 3, w33, w33)
    layers += _bn(f"{name}.b3c.bn", w33)
    if wp:
        layers += _conv(f"{name}.bp", 1, cin, wp)
        layers += _bn(f"{name}.bp.bn", wp)
    return layers


def _bn_inception_layers() -> tuple[GradientMatrixSpec, ...]:
    """BN-Inception (Ioffe & Szegedy 2015), module widths from the paper."""
    layers: list[GradientMatrixSpec] = []
    layers += _conv("conv1", 7, 3, 64)
    layers += _bn("conv1.bn", 64)
    layers += _conv("conv2r", 1, 64, 64)
    layers += _bn("conv2r.bn", 64)
    layers += _conv("conv2", 3, 64, 192)
    layers += _bn("conv2.bn", 192)
    modules = [
        ("inc3a", 192, (64, 64, 64, 64, 96, 32)),
        ("inc3b", 256, (64, 64, 96, 64, 96, 64)),
        ("inc3c", 320, (0, 128, 160, 64, 96, 0)),
        ("inc4a", 576, (224, 64, 96, 96, 128, 128)),
        ("inc4b", 576, (192, 96, 128, 96, 128, 128)),
        ("inc4c", 576, (160, 128, 160, 128, 160, 96)),
        ("inc4d", 576, (96, 128, 192, 160, 192, 96)),
        ("inc4e", 576, (0, 128, 192, 192, 256, 0)),
        ("inc5a", 1024, (352, 192, 320, 160, 224, 128)),
        ("inc5b", 1024, (352, 192, 320, 192, 224, 128)),
    ]
    for name, cin, widths in modules:
        layers += _inception_module(name, cin, widths)
    layers += _fc("fc", 1024, 1000)
    return tuple(layers)


def _lstm_an4_layers() -> tuple[GradientMatrixSpec, ...]:
    """3-layer speech LSTM: 363-dim features, 768 hidden, 132 senones."""
    layers: list[GradientMatrixSpec] = []
    layers += _lstm("lstm1", 363, 768)
    layers += _lstm("lstm2", 768, 768)
    layers += _lstm("lstm3", 768, 768)
    layers += _fc("fc", 768, 132)
    return tuple(layers)


# ---------------------------------------------------------------------------
# the study's networks (Figures 3 and 4)
# ---------------------------------------------------------------------------

_IMAGENET_SAMPLES = 1_281_167
_CIFAR_SAMPLES = 50_000
_AN4_SAMPLES = 948

NETWORKS: dict[str, NetworkSpec] = {
    "AlexNet": NetworkSpec(
        name="AlexNet",
        dataset="ImageNet",
        samples_per_epoch=_IMAGENET_SAMPLES,
        epochs_to_converge=112,
        initial_lr=0.07,
        gflops_per_sample=2.2,
        k80_samples_per_second=240.8,
        published_accuracy=59.3,  # top-5, the paper's Figure 16
        batch_sizes={1: 256, 2: 256, 4: 256, 8: 256, 16: 256},
        layers=_alexnet_layers(),
    ),
    "VGG19": NetworkSpec(
        name="VGG19",
        dataset="ImageNet",
        samples_per_epoch=_IMAGENET_SAMPLES,
        epochs_to_converge=80,
        initial_lr=0.1,
        gflops_per_sample=59.0,
        k80_samples_per_second=12.4,
        published_accuracy=71.3,
        batch_sizes={1: 32, 2: 64, 4: 128, 8: 128, 16: 128},
        layers=_vgg19_layers(),
        # the paper observed super-linear scaling for VGG19 at a
        # per-GPU batch of 16: a batch of 16 runs in less than half the
        # time of a batch of 32, reproduced on one GPU (Section 5.2)
        smallbatch_speedup=2.2,
    ),
    "ResNet50": NetworkSpec(
        name="ResNet50",
        dataset="ImageNet",
        samples_per_epoch=_IMAGENET_SAMPLES,
        epochs_to_converge=120,
        initial_lr=1.0,
        gflops_per_sample=12.3,
        k80_samples_per_second=47.2,
        published_accuracy=75.0,
        batch_sizes={1: 32, 2: 64, 4: 128, 8: 256, 16: 256},
        layers=_resnet_bottleneck_layers((3, 4, 6, 3)),
    ),
    "ResNet152": NetworkSpec(
        name="ResNet152",
        dataset="ImageNet",
        samples_per_epoch=_IMAGENET_SAMPLES,
        epochs_to_converge=120,
        initial_lr=1.0,
        gflops_per_sample=34.5,
        k80_samples_per_second=16.9,
        published_accuracy=77.0,
        batch_sizes={1: 16, 2: 32, 4: 64, 8: 128, 16: 256},
        layers=_resnet_bottleneck_layers((3, 8, 36, 3)),
    ),
    "BN-Inception": NetworkSpec(
        name="BN-Inception",
        dataset="ImageNet",
        samples_per_epoch=_IMAGENET_SAMPLES,
        epochs_to_converge=300,
        initial_lr=3.6,
        gflops_per_sample=6.0,
        k80_samples_per_second=88.3,
        published_accuracy=72.0,
        batch_sizes={1: 64, 2: 128, 4: 256, 8: 256, 16: 256},
        layers=_bn_inception_layers(),
    ),
    "ResNet110": NetworkSpec(
        name="ResNet110",
        dataset="CIFAR-10",
        samples_per_epoch=_CIFAR_SAMPLES,
        epochs_to_converge=160,
        initial_lr=0.1,
        gflops_per_sample=0.77,
        k80_samples_per_second=343.7,
        published_accuracy=93.5,  # top-1 on CIFAR-10
        batch_sizes={1: 128, 2: 128, 4: 128, 8: 128, 16: 128},
        layers=_resnet110_layers(),
    ),
    "LSTM": NetworkSpec(
        name="LSTM",
        dataset="AN4",
        samples_per_epoch=_AN4_SAMPLES,
        epochs_to_converge=20,
        initial_lr=0.5,
        gflops_per_sample=15.6,
        k80_samples_per_second=8.0,
        published_accuracy=0.0,  # the paper reports loss, not accuracy
        batch_sizes={1: 16, 2: 16},
        layers=_lstm_an4_layers(),
    ),
}

#: networks appearing in the performance figures (6-15), in figure order
PERFORMANCE_NETWORKS = (
    "AlexNet",
    "VGG19",
    "ResNet152",
    "ResNet50",
    "BN-Inception",
)


def get_network(name: str) -> NetworkSpec:
    """Look up a network spec by its paper name."""
    try:
        return NETWORKS[name]
    except KeyError:
        raise ValueError(
            f"unknown network {name!r}; expected one of {sorted(NETWORKS)}"
        ) from None
