"""Collective schedules: allreduce patterns compiled to transfer DAGs.

Each pattern compiles one gradient allreduce over ``K`` ranks into a
DAG of point-to-point :class:`Transfer`\\ s whose byte counts come from
the *actual encoded* wire format of the configured quantization scheme
(via ``Quantizer.encoded_nbytes``, the same byte-exact accounting the
live exchanges and the single-machine simulator use).  The gradient is
partitioned into ``K`` contiguous chunks (:func:`partition_ranges`,
the MPI range-partitioning helper); a transfer carries a contiguous
range of chunks so every pattern shares one chunk vocabulary:

* **ring** — bandwidth-optimal reduce-scatter + allgather: chunk ``c``
  is reduced along the ring into rank ``c`` (K-1 hops) then gathered
  around the ring (K-1 hops); ``2 (K-1) / K`` of the payload crosses
  each ring link.
* **tree** — binomial reduce to rank 0 then mirrored broadcast:
  ``2 ceil(log2 K)`` rounds of whole-payload transfers; latency-
  optimal, bandwidth-hungry.
* **butterfly** — recursive halving reduce-scatter + recursive
  doubling allgather (Rabenseifner); non-power-of-two worlds fold the
  surplus ranks into the nearest power of two with a pre/post phase.
* **hierarchical** — intra-node ring allreduce per host, inter-node
  binomial tree across the node leaders, intra-node broadcast: the
  multi-node workhorse (NCCL ring inside the box, MPI tree between
  boxes) that keeps the scarce inter-node links to ``2 log2(nodes)``
  whole-payload crossings.

:func:`verify_allreduce` interprets a schedule's data flow and checks
the allreduce contract — every rank ends holding every chunk with each
rank's contribution reduced *exactly once* — which the hypothesis
property suite runs across patterns, world sizes (powers of two and
not) and schemes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..comm.topology import partition_ranges
from ..quantization import Quantizer, make_quantizer
from .topology import FabricTopology

__all__ = [
    "Transfer",
    "CollectiveSchedule",
    "PATTERN_NAMES",
    "compile_collective",
    "encoded_chunk_bytes",
    "verify_allreduce",
]

#: collective patterns accepted by :func:`compile_collective`
PATTERN_NAMES = ("ring", "tree", "butterfly", "hierarchical")


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message of a collective schedule.

    Attributes:
        index: position in the schedule (deps always point backwards).
        src / dst: sending / receiving rank.
        lo / hi: half-open range of payload chunks carried.
        nbytes: encoded bytes on the wire (sum of the chunk sizes).
        op: ``"reduce"`` (dst accumulates src's partial into its own)
            or ``"copy"`` (dst replaces its chunks with src's).
        deps: indices of transfers that must complete before this one
            starts (the sender's state dependencies).
        round: logical round of the pattern, for display/traces.
    """

    index: int
    src: int
    dst: int
    lo: int
    hi: int
    nbytes: int
    op: str
    deps: tuple[int, ...]
    round: int


@dataclass(frozen=True)
class CollectiveSchedule:
    """A compiled allreduce: the transfer DAG plus its chunk sizes."""

    pattern: str
    world_size: int
    total_elements: int
    scheme: str
    chunk_bytes: tuple[int, ...]
    transfers: tuple[Transfer, ...]

    @property
    def total_wire_bytes(self) -> int:
        """Bytes crossing rank boundaries over the whole collective."""
        return sum(t.nbytes for t in self.transfers)

    @property
    def rounds(self) -> int:
        return 1 + max((t.round for t in self.transfers), default=-1)

    @property
    def payload_bytes(self) -> int:
        """Encoded size of one rank's full gradient payload."""
        return sum(self.chunk_bytes)


def encoded_chunk_bytes(
    total_elements: int, n_chunks: int, codec: Quantizer
) -> tuple[int, ...]:
    """Encoded wire size of each of ``n_chunks`` contiguous chunks.

    A chunk is a flat slice of the gradient, encoded as one column
    vector — column-wise codecs (stock 1bitSGD) then pay two scalars
    per chunk, not two per element.
    """
    return tuple(
        codec.encoded_nbytes((hi - lo, 1)) if hi > lo else 0
        for lo, hi in partition_ranges(total_elements, n_chunks)
    )


class _Builder:
    """Accumulates transfers, tracking each rank's receive history."""

    def __init__(self, chunk_bytes: tuple[int, ...]):
        self.chunk_bytes = chunk_bytes
        self.transfers: list[Transfer] = []
        self.received: dict[int, list[int]] = {}

    def add(
        self,
        src: int,
        dst: int,
        lo: int,
        hi: int,
        op: str,
        round_: int,
        deps: tuple[int, ...] | None = None,
    ) -> int:
        """Append a transfer; default deps = all of src's receives."""
        if deps is None:
            deps = tuple(self.received.get(src, ()))
        index = len(self.transfers)
        self.transfers.append(
            Transfer(
                index=index,
                src=src,
                dst=dst,
                lo=lo,
                hi=hi,
                nbytes=sum(self.chunk_bytes[lo:hi]),
                op=op,
                deps=deps,
                round=round_,
            )
        )
        self.received.setdefault(dst, []).append(index)
        return index


def _ring(
    builder: _Builder,
    members: tuple[int, ...],
    groups: list[tuple[int, int]],
    round_base: int = 0,
) -> int:
    """Ring allreduce over ``members``; group ``j`` lands on member ``j``.

    Returns the number of logical rounds consumed.
    """
    m = len(members)
    if m < 2:
        return 0
    for j, (lo, hi) in enumerate(groups):
        if hi <= lo:
            continue
        # reduce-scatter: (j+1) -> (j+2) -> ... -> j, accumulating.
        # The first hop ships the sender's own initial contribution,
        # so it has no dependencies — chunks pipeline freely.
        prev = None
        for step in range(m - 1):
            src = members[(j + 1 + step) % m]
            dst = members[(j + 2 + step) % m]
            deps: tuple[int, ...] = () if prev is None else (prev,)
            prev = builder.add(
                src, dst, lo, hi, "reduce", round_base + step, deps
            )
        # allgather: j -> (j+1) -> ... -> (j-1), copying the result
        for step in range(m - 1):
            src = members[(j + step) % m]
            dst = members[(j + 1 + step) % m]
            prev = builder.add(
                src, dst, lo, hi, "copy", round_base + m - 1 + step,
                (prev,) if prev is not None else (),
            )
    return 2 * (m - 1)


def _tree(
    builder: _Builder,
    members: tuple[int, ...],
    lo: int,
    hi: int,
    round_base: int = 0,
) -> int:
    """Binomial-tree reduce to ``members[0]`` + mirrored broadcast."""
    m = len(members)
    if m < 2 or hi <= lo:
        return 0
    rounds = (m - 1).bit_length()
    round_ = round_base
    for r in range(rounds):
        stride = 1 << r
        for i in range(stride, m, 2 * stride):
            builder.add(members[i], members[i - stride], lo, hi,
                        "reduce", round_)
        round_ += 1
    for r in reversed(range(rounds)):
        stride = 1 << r
        for i in range(stride, m, 2 * stride):
            builder.add(members[i - stride], members[i], lo, hi,
                        "copy", round_)
        round_ += 1
    return 2 * rounds


def _butterfly(builder: _Builder, world_size: int) -> None:
    """Recursive halving/doubling; non-powers of two fold surplus ranks."""
    k = world_size
    p2 = 1 << (k.bit_length() - 1)
    if p2 == k and k > 1:
        survivors = list(range(k))
        extra = 0
    else:
        extra = k - p2
        survivors = list(range(p2))
    round_ = 0
    if extra:
        # pre-phase: surplus ranks fold their whole payload into the
        # matching survivor
        for j in range(extra):
            builder.add(p2 + j, j, 0, k, "reduce", round_)
        round_ += 1

    # recursive halving reduce-scatter over (group, chunk range)
    def halve(group: list[int], lo: int, hi: int, round_: int) -> int:
        if len(group) < 2:
            return round_
        half = len(group) // 2
        low, high = group[:half], group[half:]
        mid = lo + (hi - lo + 1) // 2
        for a, b in zip(low, high):
            builder.add(a, b, mid, hi, "reduce", round_)
            builder.add(b, a, lo, mid, "reduce", round_)
        r1 = halve(low, lo, mid, round_ + 1)
        r2 = halve(high, mid, hi, round_ + 1)
        return max(r1, r2)

    def double(group: list[int], lo: int, hi: int, round_: int) -> int:
        if len(group) < 2:
            return round_
        half = len(group) // 2
        low, high = group[:half], group[half:]
        mid = lo + (hi - lo + 1) // 2
        round_ = double(low, lo, mid, round_)
        round_ = max(round_, double(high, mid, hi, round_))
        for a, b in zip(low, high):
            builder.add(a, b, lo, mid, "copy", round_)
            builder.add(b, a, mid, hi, "copy", round_)
        return round_ + 1

    round_ = halve(survivors, 0, k, round_)
    round_ = double(survivors, 0, k, round_)
    if extra:
        # post-phase: survivors return the finished payload
        for j in range(extra):
            builder.add(j, p2 + j, 0, k, "copy", round_)


def _hierarchical(
    builder: _Builder,
    world_size: int,
    nodes: tuple[tuple[int, ...], ...],
) -> None:
    """Intra-node ring + inter-node tree + intra-node broadcast."""
    round_ = 0
    for members in nodes:
        if len(members) > 1:
            groups = partition_ranges(world_size, len(members))
            rounds = _ring(builder, members, groups, round_)
            round_ = max(round_, rounds)
    leaders = tuple(members[0] for members in nodes)
    round_ += _tree(builder, leaders, 0, world_size, round_)
    for members in nodes:
        for follower in members[1:]:
            builder.add(members[0], follower, 0, world_size, "copy",
                        round_)


def compile_collective(
    pattern: str,
    world_size: int,
    total_elements: int,
    scheme: str = "32bit",
    bucket_size: int | None = None,
    nodes: tuple[tuple[int, ...], ...] | None = None,
) -> CollectiveSchedule:
    """Compile one allreduce into a transfer DAG.

    Args:
        pattern: one of :data:`PATTERN_NAMES`.
        world_size: number of participating ranks.
        total_elements: gradient elements being allreduced.
        scheme: quantization scheme whose encoded wire format sizes
            the transfers (byte-exact, headers included).
        bucket_size: scheme bucket-size override.
        nodes: rank grouping per host, required by ``hierarchical``
            (build it from a topology via :func:`schedule_for`).
    """
    if pattern not in PATTERN_NAMES:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}"
        )
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if total_elements < 1:
        raise ValueError(
            f"total_elements must be >= 1, got {total_elements}"
        )
    codec = make_quantizer(scheme, bucket_size=bucket_size)
    chunk_bytes = encoded_chunk_bytes(total_elements, world_size, codec)
    builder = _Builder(chunk_bytes)
    if world_size > 1:
        if pattern == "ring":
            groups = [(c, c + 1) for c in range(world_size)]
            _ring(builder, tuple(range(world_size)), groups)
        elif pattern == "tree":
            _tree(builder, tuple(range(world_size)), 0, world_size)
        elif pattern == "butterfly":
            _butterfly(builder, world_size)
        else:  # hierarchical
            if nodes is None:
                nodes = (tuple(range(world_size)),)
            _hierarchical(builder, world_size, nodes)
    return CollectiveSchedule(
        pattern=pattern,
        world_size=world_size,
        total_elements=total_elements,
        scheme=scheme,
        chunk_bytes=chunk_bytes,
        transfers=tuple(builder.transfers),
    )


def schedule_for(
    pattern: str,
    topology: FabricTopology,
    total_elements: int,
    scheme: str = "32bit",
    bucket_size: int | None = None,
) -> CollectiveSchedule:
    """Compile a pattern against a topology's rank placement."""
    nodes = tuple(
        topology.ranks_on(host) for host in topology.hosts
    )
    return compile_collective(
        pattern,
        topology.world_size,
        total_elements,
        scheme=scheme,
        bucket_size=bucket_size,
        nodes=nodes,
    )


def verify_allreduce(schedule: CollectiveSchedule) -> None:
    """Check the allreduce contract by interpreting the data flow.

    Each rank starts holding its own contribution for every chunk.
    Transfers are interpreted in index order (the builders emit a
    topological order; deps always point backwards, which is also
    asserted).  At the end, every rank must hold, for every chunk,
    every rank's contribution *exactly once* — the defining property
    of a correct allreduce.  Raises ``ValueError`` with the first
    violation found.
    """
    k = schedule.world_size
    state: list[list[Counter]] = [
        [Counter({rank: 1}) for _ in range(k)] for rank in range(k)
    ]
    for t in schedule.transfers:
        if any(d >= t.index for d in t.deps):
            raise ValueError(
                f"transfer {t.index} depends forward on {t.deps}"
            )
        if not (0 <= t.lo < t.hi <= k):
            raise ValueError(
                f"transfer {t.index} carries bad chunk range "
                f"[{t.lo}, {t.hi}) for {k} chunks"
            )
        expected = sum(schedule.chunk_bytes[t.lo:t.hi])
        if t.nbytes != expected:
            raise ValueError(
                f"transfer {t.index} claims {t.nbytes} bytes but its "
                f"chunks encode to {expected}"
            )
        for chunk in range(t.lo, t.hi):
            payload = state[t.src][chunk]
            if t.op == "reduce":
                state[t.dst][chunk] = state[t.dst][chunk] + payload
            elif t.op == "copy":
                state[t.dst][chunk] = Counter(payload)
            else:
                raise ValueError(
                    f"transfer {t.index} has unknown op {t.op!r}"
                )
    want = Counter({rank: 1 for rank in range(k)})
    for rank in range(k):
        for chunk in range(k):
            got = state[rank][chunk]
            if got != want:
                over = [r for r, n in got.items() if n > 1]
                missing = [r for r in range(k) if r not in got]
                raise ValueError(
                    f"rank {rank} chunk {chunk}: contributions "
                    f"reduced more than once from {over}, missing "
                    f"{missing}" if over or missing else
                    f"rank {rank} chunk {chunk}: bad state {dict(got)}"
                )
