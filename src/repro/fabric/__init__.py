"""Multi-node network fabric simulation.

Extends the single-machine cost models with declarative Clos/leaf-spine
topologies, compiled collective schedules (ring / tree / butterfly /
hierarchical) sized by the quantizers' actual wire bytes, and an
event-driven per-link simulator with FIFO queueing, contention, and
deterministic link-failure injection wired into the resilience loop's
topology-change path.
"""

from .crossval import FabricCrossValidation, fabric_cross_validate
from .schedule import (
    PATTERN_NAMES,
    CollectiveSchedule,
    Transfer,
    compile_collective,
    encoded_chunk_bytes,
    schedule_for,
    verify_allreduce,
)
from .select import CollectiveChoice, select_collective
from .simulate import (
    FabricSimResult,
    LinkFault,
    LinkOccupancy,
    run_collective,
    simulate_schedule,
)
from .topology import (
    LINK_CLASSES,
    TOPOLOGY_NAMES,
    FabricTopology,
    Link,
    LinkClass,
    fat_tree,
    leaf_spine,
    make_topology,
    single_node,
)
from .trace import fabric_chrome_trace, write_fabric_trace

__all__ = [
    "LINK_CLASSES",
    "PATTERN_NAMES",
    "TOPOLOGY_NAMES",
    "CollectiveChoice",
    "CollectiveSchedule",
    "FabricCrossValidation",
    "FabricSimResult",
    "FabricTopology",
    "Link",
    "LinkClass",
    "LinkFault",
    "LinkOccupancy",
    "Transfer",
    "compile_collective",
    "encoded_chunk_bytes",
    "fabric_chrome_trace",
    "fabric_cross_validate",
    "fat_tree",
    "leaf_spine",
    "make_topology",
    "run_collective",
    "schedule_for",
    "select_collective",
    "simulate_schedule",
    "single_node",
    "verify_allreduce",
    "write_fabric_trace",
]
