"""Cross-validate the fabric simulator against measured engines.

Large-K fabric sweeps are simulation-only, so they need an anchor in
reality: at K=4 (the largest world the live engines run comfortably)
a measured :class:`~repro.telemetry.export.PhaseBreakdown` is compared
against a prediction whose *communicate* term comes from the fabric's
event-driven link simulation of the same payload — the live model's
gradient elements, encoded by the same scheme, shipped over links
paced at the same ``link_gbps`` the engine's exchange sleeps on.

Compute and quantize cannot be predicted by a network simulator, so
they are carried over from the measurement itself; the phase-share
comparison (the same :class:`~repro.telemetry.crossval.RatioRow`
machinery, gated by the shared
:data:`~repro.telemetry.crossval.DEFAULT_FRACTION_GAP_TOLERANCE`)
therefore isolates the fabric's communication prediction: a fabric
that mis-times the exchange shifts every share and fails the gate.

Unit note: a breakdown's phase seconds sum spans across *all* ranks,
so the fabric's per-collective makespan is scaled by ``world_size``
(and by the number of optimizer steps measured) into the same
aggregate rank-seconds before the shares are formed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..telemetry.crossval import (
    DEFAULT_FRACTION_GAP_TOLERANCE,
    RatioRow,
)
from ..telemetry.export import PhaseBreakdown
from .simulate import FabricSimResult, run_collective
from .topology import FabricTopology, Link, LinkClass, single_node

__all__ = ["FabricCrossValidation", "fabric_cross_validate"]

#: span grouping for the fabric anchor.  Unlike the general
#: cross-validation's groups, ``communicate`` maps to the ``transfer``
#: span alone: the fabric predicts *wire* time, while ``barrier``
#: spans on the process engine measure multi-process rendezvous
#: scheduling jitter — orchestration overhead that dwarfs wire time at
#: toy scale and that no network model should be charged with.
_FABRIC_GROUPS = {
    "compute": ("compute",),
    "quantize": ("encode", "decode"),
    "communicate": ("transfer",),
}


@dataclass(frozen=True)
class FabricCrossValidation:
    """Measured vs fabric-predicted phase shares for one live run."""

    pattern: str
    scheme: str
    world_size: int
    breakdown: PhaseBreakdown
    fabric: FabricSimResult
    #: fabric-predicted aggregate communication rank-seconds for the
    #: whole measured run (steps x world_size x collective makespan)
    predicted_comm_seconds: float
    rows: tuple[RatioRow, ...]

    @property
    def max_fraction_gap(self) -> float:
        """Largest |measured - predicted| phase share across rows."""
        return max(
            (abs(row.fraction_gap) for row in self.rows), default=0.0
        )

    def passes(
        self, tolerance: float = DEFAULT_FRACTION_GAP_TOLERANCE
    ) -> bool:
        """Whether every phase share agrees within ``tolerance``."""
        return self.max_fraction_gap <= tolerance

    def report(self) -> str:
        """Side-by-side share table, one line per phase."""
        lines = [
            f"fabric cross-validation [{self.breakdown.label}] vs "
            f"{self.fabric.topology_name}/{self.pattern} "
            f"({self.scheme}/K={self.world_size})",
            f"  {'phase':12s} {'measured':>18s} {'predicted':>18s}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.phase:12s} "
                f"{row.measured_seconds:9.4f}s {row.measured_fraction:6.1%} "
                f"{row.simulated_seconds:9.4f}s {row.simulated_fraction:6.1%}"
            )
        lines.append(
            f"  max phase-share gap: {self.max_fraction_gap:.1%} "
            f"(tolerance {DEFAULT_FRACTION_GAP_TOLERANCE:.0%})"
        )
        return "\n".join(lines)


def _paced_topology(world_size: int, link_gbps: float) -> FabricTopology:
    """Single-node star whose links run at the engine's paced rate."""
    cls = LinkClass("paced", link_gbps, 0.0)
    base = single_node(world_size)
    return replace(
        base,
        links={
            key: Link(link.src, link.dst, cls)
            for key, link in base.links.items()
        },
    )


def fabric_cross_validate(
    breakdown: PhaseBreakdown,
    *,
    scheme: str,
    pattern: str,
    world_size: int,
    total_elements: int,
    steps: int,
    link_gbps: float | None = None,
    topology: FabricTopology | None = None,
) -> FabricCrossValidation:
    """Compare a measured breakdown against the fabric's prediction.

    Args:
        breakdown: phase seconds measured by the live tracer.
        scheme / pattern / world_size: the cell to simulate.
        total_elements: gradient elements of the *live* model (the
            payload the engine actually shipped each step).
        steps: optimizer steps the breakdown spans.
        link_gbps: the measured run's paced link rate; when given (and
            no explicit ``topology``), the fabric's star links run at
            exactly that rate so seconds are directly comparable.
        topology: explicit fabric to simulate on instead.
    """
    if topology is None:
        topology = (
            _paced_topology(world_size, link_gbps)
            if link_gbps is not None
            else single_node(world_size)
        )
    if topology.world_size != world_size:
        raise ValueError(
            f"topology has {topology.world_size} ranks, breakdown was "
            f"measured at world_size={world_size}"
        )
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    fabric = run_collective(topology, pattern, total_elements,
                            scheme=scheme)
    predicted_comm = fabric.makespan_seconds * steps * world_size

    measured = {
        group: sum(
            breakdown.phase_seconds.get(name, 0.0) for name in names
        )
        for group, names in _FABRIC_GROUPS.items()
    }
    predicted = dict(measured)
    predicted["communicate"] = predicted_comm
    measured_total = sum(measured.values())
    predicted_total = sum(predicted.values())
    rows = tuple(
        RatioRow(
            phase=group,
            measured_seconds=measured[group],
            measured_fraction=(
                measured[group] / measured_total if measured_total else 0.0
            ),
            simulated_seconds=predicted[group],
            simulated_fraction=(
                predicted[group] / predicted_total
                if predicted_total
                else 0.0
            ),
        )
        for group in _FABRIC_GROUPS
    )
    return FabricCrossValidation(
        pattern=pattern,
        scheme=scheme,
        world_size=world_size,
        breakdown=breakdown,
        fabric=fabric,
        predicted_comm_seconds=predicted_comm,
        rows=rows,
    )
