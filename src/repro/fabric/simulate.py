"""Event-driven fabric simulation: per-link FIFO queueing + failures.

The single-machine simulator costs an exchange with closed-form bus
models; this module instead *runs* a compiled
:class:`~repro.fabric.schedule.CollectiveSchedule` against a
:class:`~repro.fabric.topology.FabricTopology` on a simulated clock:

* every transfer follows its routed links store-and-forward, paying
  each link's latency plus ``bytes / bandwidth``;
* links are serially-reusable FIFO resources — two transfers crossing
  the same trunk queue behind each other, which is where leaf-spine
  oversubscription and incast contention come from;
* deterministic link faults can be injected: a *flap* stalls traffic
  until its recovery time, a *permanent* failure first triggers ECMP
  rerouting around the dead trunk and, when no route survives, cuts
  the fabric — the unreachable ranks are evicted exactly like the
  resilience loop's graceful degradation (one
  :class:`~repro.runtime.resilience.TopologyChange` per lost rank) and
  the collective is re-compiled over the survivors and resumed at the
  failure time.

Everything is deterministic: same topology, schedule and faults give
the same event trace, byte for byte.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..runtime.resilience import TopologyChange
from .schedule import CollectiveSchedule, compile_collective
from .topology import FabricTopology

__all__ = [
    "LinkFault",
    "LinkOccupancy",
    "FabricSimResult",
    "simulate_schedule",
    "run_collective",
]


@dataclass(frozen=True)
class LinkFault:
    """One deterministic link failure.

    Attributes:
        src / dst: endpoints of the failed link; the fault cuts both
            directions (a cable, not a lane).
        fail_at_s: simulation time the link goes down.
        recover_at_s: time it comes back (``None`` = permanent).
    """

    src: str
    dst: str
    fail_at_s: float = 0.0
    recover_at_s: float | None = None

    @property
    def permanent(self) -> bool:
        return self.recover_at_s is None

    def covers(self, key: tuple[str, str]) -> bool:
        return key in ((self.src, self.dst), (self.dst, self.src))

    @property
    def keys(self) -> tuple[tuple[str, str], tuple[str, str]]:
        return ((self.src, self.dst), (self.dst, self.src))


@dataclass(frozen=True)
class LinkOccupancy:
    """One transfer's occupancy of one link (a Chrome-trace slice)."""

    link: tuple[str, str]
    link_class: str
    transfer: int
    op: str
    start_s: float
    end_s: float
    nbytes: int

    @property
    def busy_seconds(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class FabricSimResult:
    """The full event trace of one simulated collective."""

    topology_name: str
    pattern: str
    scheme: str
    world_size: int
    makespan_seconds: float
    occupancies: tuple[LinkOccupancy, ...]
    completed_transfers: int
    dropped_transfers: int = 0
    topology_changes: tuple[TopologyChange, ...] = ()
    survivors: tuple[int, ...] = ()

    @property
    def total_wire_bytes(self) -> int:
        """Bytes injected into the fabric (first hop of each transfer
        counts once; store-and-forward hops repeat the payload)."""
        return sum(o.nbytes for o in self.occupancies)

    def link_busy_seconds(self) -> dict[tuple[str, str], float]:
        """Busy seconds per directed link."""
        busy: dict[tuple[str, str], float] = {}
        for occ in self.occupancies:
            busy[occ.link] = busy.get(occ.link, 0.0) + occ.busy_seconds
        return busy

    def link_utilization(self) -> dict[tuple[str, str], float]:
        """Busy fraction of the makespan per directed link."""
        if self.makespan_seconds <= 0:
            return {}
        return {
            link: busy / self.makespan_seconds
            for link, busy in self.link_busy_seconds().items()
        }

    def busiest_links(self, n: int = 5) -> list[tuple[tuple[str, str], float]]:
        """The ``n`` most utilized links, descending."""
        return sorted(
            self.link_utilization().items(),
            key=lambda item: (-item[1], item[0]),
        )[:n]


class _Partition(Exception):
    """A permanent failure cut the fabric mid-collective."""

    def __init__(self, at_s: float, dead: frozenset[tuple[str, str]],
                 completed: list[LinkOccupancy], done_count: int):
        self.at_s = at_s
        self.dead = dead
        self.completed = completed
        self.done_count = done_count
        super().__init__(f"fabric partitioned at {at_s:.6f}s")


@dataclass
class _LinkState:
    """Mutable per-run link bookkeeping."""

    free_at: dict[tuple[str, str], float] = field(default_factory=dict)


def _dead_keys(
    faults: tuple[LinkFault, ...], now: float
) -> frozenset[tuple[str, str]]:
    dead: set[tuple[str, str]] = set()
    for fault in faults:
        if fault.permanent and fault.fail_at_s <= now:
            dead.update(fault.keys)
    return frozenset(dead)


def simulate_schedule(
    topology: FabricTopology,
    schedule: CollectiveSchedule,
    faults: tuple[LinkFault, ...] = (),
    start_time: float = 0.0,
    rank_map: tuple[int, ...] | None = None,
) -> FabricSimResult:
    """Run one schedule through the fabric; raise on partition.

    ``rank_map`` maps schedule ranks to physical ranks (used when a
    survivor schedule re-runs on the original topology).  Raises
    :class:`_Partition` (internal) when a permanent failure leaves a
    transfer with no route; :func:`run_collective` turns that into
    topology changes plus a survivor re-run.
    """
    if rank_map is None:
        rank_map = tuple(range(schedule.world_size))
    flaps = tuple(f for f in faults if not f.permanent)
    end_of: dict[int, float] = {}
    links = _LinkState()
    occupancies: list[LinkOccupancy] = []
    # dependents adjacency + indegree for dependency-ordered release
    indegree = {t.index: len(t.deps) for t in schedule.transfers}
    dependents: dict[int, list[int]] = {}
    for t in schedule.transfers:
        for d in t.deps:
            dependents.setdefault(d, []).append(t.index)
    heap: list[tuple[float, int]] = []
    for t in schedule.transfers:
        if indegree[t.index] == 0:
            heapq.heappush(heap, (start_time, t.index))
    transfers = schedule.transfers
    makespan = start_time
    while heap:
        ready, index = heapq.heappop(heap)
        t = transfers[index]
        src, dst = rank_map[t.src], rank_map[t.dst]
        cursor = ready
        # route around links already permanently dead at ready time;
        # restart the walk if a link dies underneath the transfer
        for _attempt in range(len(faults) + 1):
            dead = _dead_keys(faults, cursor)
            route = topology.route(src, dst, flow=t.lo, avoid=dead)
            if route is None:
                raise _Partition(
                    cursor, dead, occupancies, len(end_of)
                )
            hop_cursor = cursor
            pending: list[LinkOccupancy] = []
            restart = False
            for link in route:
                hop_start = max(hop_cursor, links.free_at.get(link.key,
                                                              0.0))
                for flap in flaps:
                    if flap.covers(link.key) and (
                        flap.fail_at_s <= hop_start < flap.recover_at_s
                    ):
                        hop_start = flap.recover_at_s
                newly_dead = _dead_keys(faults, hop_start)
                if link.key in newly_dead and link.key not in dead:
                    cursor = hop_start
                    restart = True
                    break
                if link.key in newly_dead:  # pragma: no cover - routed
                    raise _Partition(hop_start, newly_dead,
                                     occupancies, len(end_of))
                hop_end = hop_start + link.seconds(t.nbytes)
                pending.append(
                    LinkOccupancy(
                        link=link.key,
                        link_class=link.cls.name,
                        transfer=index,
                        op=t.op,
                        start_s=hop_start,
                        end_s=hop_end,
                        nbytes=t.nbytes,
                    )
                )
                hop_cursor = hop_end
            if restart:
                continue
            # commit the walk: occupy the links
            for occ in pending:
                links.free_at[occ.link] = occ.end_s
            occupancies.extend(pending)
            break
        else:  # pragma: no cover - bounded by fault count
            raise RuntimeError("link fault rerouting did not converge")
        end_of[index] = hop_cursor
        makespan = max(makespan, hop_cursor)
        for dep_index in dependents.get(index, ()):
            indegree[dep_index] -= 1
            if indegree[dep_index] == 0:
                ready_at = max(
                    (end_of[d] for d in transfers[dep_index].deps),
                    default=start_time,
                )
                heapq.heappush(heap, (ready_at, dep_index))
    return FabricSimResult(
        topology_name=topology.name,
        pattern=schedule.pattern,
        scheme=schedule.scheme,
        world_size=schedule.world_size,
        makespan_seconds=makespan - start_time,
        occupancies=tuple(occupancies),
        completed_transfers=len(end_of),
        survivors=tuple(rank_map),
    )


def run_collective(
    topology: FabricTopology,
    pattern: str,
    total_elements: int,
    scheme: str = "32bit",
    bucket_size: int | None = None,
    faults: tuple[LinkFault, ...] = (),
    step: int = 0,
) -> FabricSimResult:
    """Simulate one allreduce, degrading gracefully on link loss.

    A permanent link failure that partitions the fabric evicts the
    unreachable ranks — emitting one
    :class:`~repro.runtime.resilience.TopologyChange` per lost rank,
    the same record the live engines' recovery loop produces — then
    re-compiles the collective over the survivors (with their host
    grouping) and resumes at the failure time, exactly mirroring the
    resilience loop's reshard-and-continue semantics.
    """
    live = tuple(range(topology.world_size))

    def _compile(ranks: tuple[int, ...]) -> CollectiveSchedule:
        physical = set(ranks)
        nodes = tuple(
            members
            for host in topology.hosts
            if (members := tuple(
                i
                for i, r in enumerate(ranks)
                if topology.host_of[r] == host and r in physical
            ))
        )
        return compile_collective(
            pattern,
            len(ranks),
            total_elements,
            scheme=scheme,
            bucket_size=bucket_size,
            nodes=nodes,
        )

    changes: list[TopologyChange] = []
    dropped = 0
    prior_occupancies: list[LinkOccupancy] = []
    start = 0.0
    schedule = _compile(live)
    while True:
        try:
            result = simulate_schedule(
                topology,
                schedule,
                faults=faults,
                start_time=start,
                rank_map=live,
            )
        except _Partition as cut:
            reachable = set(
                topology.reachable_ranks(avoid=cut.dead)
            )
            survivors = tuple(r for r in live if r in reachable)
            lost = tuple(r for r in live if r not in reachable)
            if not lost or not survivors:  # pragma: no cover - degenerate
                raise RuntimeError(
                    f"partition at {cut.at_s:.6f}s with no evictable "
                    "rank"
                ) from None
            remaining = list(survivors)
            for rank in lost:
                changes.append(
                    TopologyChange(
                        step=step,
                        rank=rank,
                        kind="link",
                        survivors=tuple(remaining),
                    )
                )
            dropped += len(schedule.transfers) - cut.done_count
            prior_occupancies.extend(cut.completed)
            live = survivors
            start = cut.at_s
            schedule = _compile(live)
            continue
        return FabricSimResult(
            topology_name=result.topology_name,
            pattern=pattern,
            scheme=scheme,
            world_size=topology.world_size,
            makespan_seconds=start + result.makespan_seconds,
            occupancies=tuple(prior_occupancies) + result.occupancies,
            completed_transfers=result.completed_transfers,
            dropped_transfers=dropped,
            topology_changes=tuple(changes),
            survivors=live,
        )
