"""Chrome-trace export of per-link fabric occupancy.

Mirrors :mod:`repro.telemetry.export`'s trace-event format, but tracks
are *links* instead of ranks: one ``tid`` per directed link (sorted by
name, so trunks group together in the viewer), one complete ``"X"``
event per transfer-hop occupancy, and ``thread_name`` metadata naming
each link with its class.  Load the file in ``chrome://tracing`` or
Perfetto to read queueing delay straight off the gaps between slices.
"""

from __future__ import annotations

import json

from .simulate import FabricSimResult

__all__ = ["fabric_chrome_trace", "write_fabric_trace"]


def fabric_chrome_trace(result: FabricSimResult) -> dict:
    """Render a fabric simulation as a Chrome trace-event document."""
    links = sorted({o.link for o in result.occupancies})
    tid_of = {link: tid for tid, link in enumerate(links)}
    cls_of = {o.link: o.link_class for o in result.occupancies}
    busy = result.link_busy_seconds()
    events: list[dict] = []
    for link in links:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid_of[link],
                "args": {
                    "name": (
                        f"{link[0]}->{link[1]} [{cls_of[link]}]"
                    )
                },
            }
        )
    for occ in result.occupancies:
        events.append(
            {
                "name": f"{occ.op} #{occ.transfer}",
                "cat": occ.link_class,
                "ph": "X",
                "ts": occ.start_s * 1e6,
                "dur": occ.busy_seconds * 1e6,
                "pid": 0,
                "tid": tid_of[occ.link],
                "args": {"nbytes": occ.nbytes},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "topology": result.topology_name,
            "pattern": result.pattern,
            "scheme": result.scheme,
            "world_size": result.world_size,
            "makespan_seconds": result.makespan_seconds,
            "dropped_transfers": result.dropped_transfers,
            "topology_changes": [
                c.to_dict() for c in result.topology_changes
            ],
            "link_busy_seconds": {
                f"{src}->{dst}": seconds
                for (src, dst), seconds in sorted(busy.items())
            },
        },
    }


def write_fabric_trace(result: FabricSimResult, path: str) -> None:
    """Write :func:`fabric_chrome_trace` output as JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(fabric_chrome_trace(result), fh, indent=1)
        fh.write("\n")
