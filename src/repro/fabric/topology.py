"""Declarative multi-node fabric topologies with named link classes.

The live engines and the single-machine simulator both assume one flat
link per rank.  This module describes the *fabric* between ranks as a
directed graph of typed links so the discrete-event simulator
(:mod:`repro.fabric.simulate`) can charge every transfer to the actual
links it crosses — intra-node PCIe/NVLink hops, host NIC uplinks, and
(on multi-node fabrics) leaf->spine trunks with configurable
oversubscription.

Node naming is positional and deterministic: rank ``r`` computes on
``gpu<r>``, lives on ``host<h>``, which uplinks to ``leaf<l>``, which
connects to every ``spine<s>``.  Routes are shortest paths up and down
the tree; when several spines are available the spine is chosen by a
deterministic ECMP hash of the (source leaf, destination leaf, flow)
triple, so simulations are exactly reproducible.

Two families are provided:

* **single-node** — ``pcie`` (star through the host's PCIe switch) and
  ``nvlink`` (same shape, NVLink-class links), modelling the paper's
  EC2 / DGX-1 boxes;
* **multi-node** — ``leaf-spine`` (two-level Clos with configurable
  hosts per leaf, spine count and oversubscription) and ``fat-tree``
  (the same builder pinned to full bisection bandwidth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..units import transfer_seconds

__all__ = [
    "LinkClass",
    "Link",
    "LINK_CLASSES",
    "FabricTopology",
    "TOPOLOGY_NAMES",
    "make_topology",
    "single_node",
    "leaf_spine",
    "fat_tree",
]


@dataclass(frozen=True)
class LinkClass:
    """One named class of physical link.

    Attributes:
        name: class label ("pcie", "nvlink", "nic", "trunk").
        gbps: bandwidth in Gbit/s (converted through
            :mod:`repro.units`, like every link rate in the repo).
        latency_s: per-message latency in seconds.
    """

    name: str
    gbps: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise ValueError(
                f"link class {self.name!r} needs gbps > 0, got {self.gbps}"
            )
        if self.latency_s < 0:
            raise ValueError(
                f"link class {self.name!r} needs latency >= 0, got "
                f"{self.latency_s}"
            )


#: default link classes; effective rates, one order of magnitude
#: between intra-node links and the inter-node NIC, as in real
#: clusters (NVLink ~300 Gbit/s vs 100 GbE NICs)
LINK_CLASSES: dict[str, LinkClass] = {
    "pcie": LinkClass("pcie", 128.0, 2.0e-6),
    "nvlink": LinkClass("nvlink", 300.0, 1.0e-6),
    "nic": LinkClass("nic", 100.0, 5.0e-6),
    "trunk": LinkClass("trunk", 400.0, 1.0e-6),
}


@dataclass(frozen=True)
class Link:
    """One directed link of the fabric."""

    src: str
    dst: str
    cls: LinkClass

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)

    def seconds(self, nbytes: int) -> float:
        """Wire time for ``nbytes`` on this link, latency included."""
        return transfer_seconds(nbytes, self.cls.gbps, self.cls.latency_s)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return f"{self.src}->{self.dst} [{self.cls.name}]"


@dataclass(frozen=True)
class FabricTopology:
    """A fabric: ranks placed on hosts, hosts wired through switches.

    Attributes:
        name: topology family name (one of :data:`TOPOLOGY_NAMES`).
        world_size: number of ranks (GPUs).
        links: every directed link, keyed ``(src node, dst node)``.
        host_of: host node of each rank, indexed by rank.
        leaf_of_host: leaf switch of each host node (empty on
            single-node fabrics).
        spines: spine switch names (empty below two levels).
    """

    name: str
    world_size: int
    links: dict[tuple[str, str], Link]
    host_of: tuple[str, ...]
    leaf_of_host: dict[str, str] = field(default_factory=dict)
    spines: tuple[str, ...] = ()

    # -- structure --------------------------------------------------------
    @property
    def hosts(self) -> tuple[str, ...]:
        """Distinct host nodes in rank order."""
        seen: dict[str, None] = {}
        for host in self.host_of:
            seen.setdefault(host)
        return tuple(seen)

    @property
    def multi_node(self) -> bool:
        return len(self.hosts) > 1

    def node_of(self, rank: int) -> str:
        """The GPU node a rank computes on."""
        self._check_rank(rank)
        return f"gpu{rank}"

    def ranks_on(self, host: str) -> tuple[int, ...]:
        """Ranks living on one host, ascending."""
        return tuple(
            r for r, h in enumerate(self.host_of) if h == host
        )

    def same_host(self, a: int, b: int) -> bool:
        self._check_rank(a)
        self._check_rank(b)
        return self.host_of[a] == self.host_of[b]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} outside world of {self.world_size}"
            )

    # -- routing ----------------------------------------------------------
    def route(
        self,
        src: int,
        dst: int,
        flow: int = 0,
        avoid: frozenset[tuple[str, str]] = frozenset(),
    ) -> tuple[Link, ...] | None:
        """Directed links from ``src``'s GPU to ``dst``'s GPU.

        ``flow`` seeds the deterministic ECMP spine choice so distinct
        chunks of one collective can spread over distinct spines.
        ``avoid`` removes links (e.g. failed ones); returns ``None``
        when no route survives.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return ()
        src_host, dst_host = self.host_of[src], self.host_of[dst]
        up = [(f"gpu{src}", src_host)]
        down = [(dst_host, f"gpu{dst}")]
        if src_host != dst_host:
            src_leaf = self.leaf_of_host[src_host]
            dst_leaf = self.leaf_of_host[dst_host]
            up.append((src_host, src_leaf))
            down.insert(0, (dst_leaf, dst_host))
            if src_leaf != dst_leaf:
                spine = self._pick_spine(src_leaf, dst_leaf, flow, avoid)
                if spine is None:
                    return None
                up.append((src_leaf, spine))
                down.insert(0, (spine, dst_leaf))
        hops = up + down
        if any(hop in avoid for hop in hops):
            return None
        try:
            return tuple(self.links[hop] for hop in hops)
        except KeyError as exc:  # pragma: no cover - topology invariant
            raise ValueError(f"no link for hop {exc}") from None

    def _pick_spine(
        self,
        src_leaf: str,
        dst_leaf: str,
        flow: int,
        avoid: frozenset[tuple[str, str]],
    ) -> str | None:
        """Deterministic ECMP: hash the flow over the live spines."""
        if not self.spines:  # pragma: no cover - builder invariant
            return None
        live = [
            s
            for s in self.spines
            if (src_leaf, s) not in avoid and (s, dst_leaf) not in avoid
        ]
        if not live:
            return None
        index = (
            int(src_leaf.removeprefix("leaf"))
            + int(dst_leaf.removeprefix("leaf"))
            + flow
        ) % len(live)
        return live[index]

    # -- reachability (failure handling) ----------------------------------
    def reachable_ranks(
        self, avoid: frozenset[tuple[str, str]] = frozenset()
    ) -> tuple[int, ...]:
        """Ranks still connected to rank 0 once ``avoid`` links are cut.

        Connectivity is evaluated on the undirected fabric (a link cut
        removes both directions), matching how the resilience loop
        treats a rank that cannot exchange gradients: unreachable from
        the coordinator's component means evicted.
        """
        adjacency: dict[str, set[str]] = {}
        for (a, b), _ in self.links.items():
            if (a, b) in avoid or (b, a) in avoid:
                continue
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        seen = {"gpu0"}
        frontier = ["gpu0"]
        while frontier:
            node = frontier.pop()
            for peer in adjacency.get(node, ()):
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return tuple(
            r for r in range(self.world_size) if f"gpu{r}" in seen
        )


def _add_bidi(
    links: dict[tuple[str, str], Link], a: str, b: str, cls: LinkClass
) -> None:
    links[(a, b)] = Link(a, b, cls)
    links[(b, a)] = Link(b, a, cls)


def single_node(world_size: int, link: str = "pcie") -> FabricTopology:
    """One machine: every GPU stars through the host's switch.

    ``link`` picks the intra-node class ("pcie" or "nvlink").
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    cls = LINK_CLASSES[link]
    links: dict[tuple[str, str], Link] = {}
    for rank in range(world_size):
        _add_bidi(links, f"gpu{rank}", "host0", cls)
    return FabricTopology(
        name=link,
        world_size=world_size,
        links=links,
        host_of=tuple("host0" for _ in range(world_size)),
    )


def leaf_spine(
    world_size: int,
    gpus_per_host: int = 8,
    hosts_per_leaf: int = 4,
    spines: int = 4,
    oversubscription: float = 1.0,
    intra: str = "nvlink",
    name: str = "leaf-spine",
) -> FabricTopology:
    """Two-level Clos: hosts under leaves, leaves meshed to spines.

    ``oversubscription`` divides the trunk (leaf->spine) bandwidth: 1.0
    is full bisection; 4.0 means the leaf uplink capacity is a quarter
    of its downlink capacity, the classic cost-reduced datacenter
    fabric where low-precision gradients matter most.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if gpus_per_host < 1 or hosts_per_leaf < 1 or spines < 1:
        raise ValueError(
            "gpus_per_host, hosts_per_leaf and spines must be >= 1"
        )
    if oversubscription < 1.0:
        raise ValueError(
            f"oversubscription must be >= 1.0, got {oversubscription}"
        )
    intra_cls = LINK_CLASSES[intra]
    nic_cls = LINK_CLASSES["nic"]
    base_trunk = LINK_CLASSES["trunk"]
    trunk_cls = LinkClass(
        name=(
            base_trunk.name
            if oversubscription == 1.0
            else f"{base_trunk.name}/{oversubscription:g}"
        ),
        gbps=base_trunk.gbps / oversubscription,
        latency_s=base_trunk.latency_s,
    )

    n_hosts = math.ceil(world_size / gpus_per_host)
    n_leaves = math.ceil(n_hosts / hosts_per_leaf)
    links: dict[tuple[str, str], Link] = {}
    host_of: list[str] = []
    leaf_of_host: dict[str, str] = {}
    for rank in range(world_size):
        host = f"host{rank // gpus_per_host}"
        host_of.append(host)
        _add_bidi(links, f"gpu{rank}", host, intra_cls)
    for h in range(n_hosts):
        host, leaf = f"host{h}", f"leaf{h // hosts_per_leaf}"
        leaf_of_host[host] = leaf
        _add_bidi(links, host, leaf, nic_cls)
    spine_names = tuple(f"spine{s}" for s in range(spines))
    for leaf_idx in range(n_leaves):
        for spine in spine_names:
            _add_bidi(links, f"leaf{leaf_idx}", spine, trunk_cls)
    return FabricTopology(
        name=name,
        world_size=world_size,
        links=links,
        host_of=tuple(host_of),
        leaf_of_host=leaf_of_host,
        spines=spine_names,
    )


def fat_tree(
    world_size: int,
    gpus_per_host: int = 8,
    hosts_per_leaf: int = 4,
    spines: int = 4,
    intra: str = "nvlink",
) -> FabricTopology:
    """Two-level fat-tree: the leaf-spine builder at full bisection."""
    return leaf_spine(
        world_size,
        gpus_per_host=gpus_per_host,
        hosts_per_leaf=hosts_per_leaf,
        spines=spines,
        oversubscription=1.0,
        intra=intra,
        name="fat-tree",
    )


#: topology family names accepted by :func:`make_topology`
TOPOLOGY_NAMES = ("pcie", "nvlink", "fat-tree", "leaf-spine")


def make_topology(name: str, world_size: int, **kwargs) -> FabricTopology:
    """Construct a fabric topology by family name.

    Raises ``ValueError`` listing the valid choices for an unknown
    name (never a raw ``KeyError``), like every other name registry in
    the repository.
    """
    if name in ("pcie", "nvlink"):
        return single_node(world_size, link=name, **kwargs)
    if name == "fat-tree":
        return fat_tree(world_size, **kwargs)
    if name == "leaf-spine":
        return leaf_spine(world_size, **kwargs)
    raise ValueError(
        f"unknown topology {name!r}; expected one of {TOPOLOGY_NAMES}"
    )
