"""Cost-based collective auto-selection.

The paper's takeaway that no single allreduce wins everywhere (ring
amortizes bandwidth at large payloads, trees win the latency-bound
small-gradient regime, hierarchical schedules exploit fast intra-node
links) becomes executable here: simulate every candidate pattern on
the actual topology with the actual encoded byte counts and pick the
minimum-makespan schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from .schedule import PATTERN_NAMES
from .simulate import FabricSimResult, run_collective
from .topology import FabricTopology

__all__ = ["CollectiveChoice", "select_collective"]


@dataclass(frozen=True)
class CollectiveChoice:
    """The auto-selector's verdict for one (topology, payload, scheme)."""

    pattern: str
    makespan_seconds: float
    candidates: dict[str, float]

    def speedup_over(self, pattern: str) -> float:
        """How much faster the winner is than ``pattern``."""
        return self.candidates[pattern] / self.makespan_seconds


def select_collective(
    topology: FabricTopology,
    total_elements: int,
    scheme: str = "32bit",
    bucket_size: int | None = None,
    patterns: tuple[str, ...] = PATTERN_NAMES,
) -> CollectiveChoice:
    """Simulate each candidate pattern and return the fastest.

    Ties break toward the earlier entry of ``patterns``, keeping the
    choice deterministic.  Hierarchical is skipped automatically on
    single-host topologies where it degenerates to a plain ring.
    """
    candidates: dict[str, float] = {}
    best: tuple[float, str] | None = None
    for pattern in patterns:
        if pattern == "hierarchical" and not topology.multi_node:
            continue
        result: FabricSimResult = run_collective(
            topology,
            pattern,
            total_elements,
            scheme=scheme,
            bucket_size=bucket_size,
        )
        candidates[pattern] = result.makespan_seconds
        if best is None or result.makespan_seconds < best[0]:
            best = (result.makespan_seconds, pattern)
    if best is None:
        raise ValueError("no candidate pattern to select from")
    return CollectiveChoice(
        pattern=best[1],
        makespan_seconds=best[0],
        candidates=candidates,
    )
