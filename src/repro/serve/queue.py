"""Dispatch-order policies for queued jobs.

A queue policy is pure ordering: given the store's queued records it
returns them in the order the scheduler should consider them.  State
lives in the :class:`~repro.serve.jobstore.JobStore`, so queue order
survives a daemon restart by construction — the rescan re-derives it
from the persisted ``(priority, seq)`` pairs.
"""

from __future__ import annotations

from .jobstore import JobRecord

__all__ = ["QUEUE_NAMES", "make_queue", "PriorityQueue", "FifoQueue"]


class PriorityQueue:
    """Higher ``priority`` first; FIFO (submission ``seq``) tie-break."""

    name = "priority"

    def order(self, records: list[JobRecord]) -> list[JobRecord]:
        return sorted(records, key=lambda r: (-r.priority, r.seq))


class FifoQueue:
    """Pure submission order; priorities are ignored."""

    name = "fifo"

    def order(self, records: list[JobRecord]) -> list[JobRecord]:
        return sorted(records, key=lambda r: r.seq)


_QUEUES = {
    "priority": PriorityQueue,
    "fifo": FifoQueue,
}

#: registered queue policies, in documentation order
QUEUE_NAMES = ("priority", "fifo")


def make_queue(name: str):
    """Construct a queue policy by name.

    Raises ``ValueError`` listing the valid choices for an unknown
    name (never a raw ``KeyError``), like every other name registry in
    the repository.
    """
    try:
        queue_cls = _QUEUES[name]
    except KeyError:
        raise ValueError(
            f"unknown queue {name!r}; expected one of {QUEUE_NAMES}"
        ) from None
    return queue_cls()
