"""The serve daemon: queue → admission → runner pool → resume.

One :class:`ServeDaemon` owns a :class:`~repro.serve.jobstore.JobStore`
root, an HTTP API (see :mod:`repro.serve.api`), and a bounded pool of
runner processes.  Its scheduling loop is a plain synchronous tick —
:meth:`step` reaps finished runners, enforces cancellations/timeouts,
and admits queued jobs into the free rank budget — which makes the
whole daemon drivable deterministically from tests (construct it, call
``step()``) as well as from the CLI loop (:meth:`serve_forever`).

Crash story: all scheduling state lives in the store, so a SIGKILLed
daemon loses nothing.  On construction the daemon rescans the store:
jobs left ``running`` by the dead daemon have their orphaned runners
killed (runners also exit on their own when they notice the daemon is
gone), are finalized if the runner already wrote its result, and are
otherwise requeued — the next admission resumes them from their last
per-step checkpoint, bit-identically.  A job whose runner keeps dying
without ever writing a result is *evicted* after ``max_restarts``
requeues rather than crash-looping forever.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

from .jobspec import JobSpec
from .jobstore import JobRecord, JobState, JobStore
from .queue import make_queue
from .scheduler import make_scheduler

__all__ = ["ServeDaemon"]

#: map from a runner result.json "state" to the job record state
_RESULT_STATES = {
    "succeeded": JobState.SUCCEEDED,
    "failed": JobState.FAILED,
    "cancelled": JobState.CANCELLED,
}


def _runner_pid_matches(pid: int, job_id: str) -> bool:
    """Is ``pid`` alive *and* verifiably the runner of ``job_id``?

    Guards the orphan cleanup against pid reuse: a recycled pid is
    killed only when its command line (``/proc``, Linux) names the
    runner module and this job.  When the command line cannot be read
    the process is treated as not-ours and left alone — the runner's
    own orphan watch makes it exit anyway.
    """
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    try:
        with open(f"/proc/{pid}/cmdline", "rb") as stream:
            cmdline = stream.read()
    except OSError:  # pragma: no cover - non-/proc platforms
        return False
    return b"repro.serve.runner" in cmdline and job_id.encode() in cmdline


class ServeDaemon:
    """Multi-tenant training scheduler over a persistent job store.

    Attributes:
        max_ranks: total concurrent-rank budget of the runner pool;
            admission packs jobs' declared ``world_size`` into it.
        max_restarts: requeues allowed for a runner that dies without
            writing a result before the job is evicted.
        grace_s: seconds between a cancellation SIGTERM and the
            escalation SIGKILL.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        max_ranks: int = 4,
        queue: str = "priority",
        scheduler: str = "first-fit",
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.05,
        max_restarts: int = 3,
        grace_s: float = 5.0,
    ):
        if max_ranks < 1:
            raise ValueError(f"max_ranks must be >= 1, got {max_ranks}")
        if max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self.max_ranks = max_ranks
        self.queue = make_queue(queue)
        self.scheduler = make_scheduler(scheduler)
        self.host = host
        self.port = port
        self.poll_interval = poll_interval
        self.max_restarts = max_restarts
        self.grace_s = grace_s
        self.store = JobStore(root)
        self.started_at = time.time()
        self._lock = threading.RLock()
        self._children: dict[str, subprocess.Popen] = {}
        self._term_sent: dict[str, float] = {}
        self._stop = threading.Event()
        self._server = None
        self._server_thread = None
        self.rescan()

    # -- restart recovery -------------------------------------------------
    def rescan(self) -> None:
        """Reconcile the store after a (possibly violent) restart."""
        self.store.sweep_tmp()
        for record in self.store.list():
            if record.terminal:
                continue
            if record.state == JobState.QUEUED:
                if record.cancel_requested:
                    self.store.update(
                        record.job_id,
                        state=JobState.CANCELLED,
                        finished_at=time.time(),
                    )
                continue
            # state == RUNNING under the dead daemon
            if record.pid is not None and _runner_pid_matches(
                record.pid, record.job_id
            ):
                try:
                    os.kill(record.pid, 9)
                except ProcessLookupError:  # pragma: no cover - raced
                    pass
                self._await_pid_gone(record.pid)
            self._settle_dead_runner(record)

    @staticmethod
    def _await_pid_gone(pid: int, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                return
            time.sleep(0.01)

    def _settle_dead_runner(
        self, record: JobRecord, exit_code: int | None = None
    ) -> None:
        """A runner process is gone; decide the job's next state."""
        result = self.store.read_result(record.job_id)
        now = time.time()
        if result is not None:
            self.store.update(
                record.job_id,
                state=_RESULT_STATES.get(result.get("state"),
                                         JobState.FAILED),
                result=result,
                pid=None,
                finished_at=now,
            )
        elif record.cancel_requested:
            self.store.update(
                record.job_id,
                state=JobState.CANCELLED,
                pid=None,
                finished_at=now,
            )
        elif record.error is not None:
            # marked for eviction (timeout) before the kill
            self.store.update(
                record.job_id,
                state=JobState.EVICTED,
                pid=None,
                finished_at=now,
            )
        elif record.restarts >= self.max_restarts:
            suffix = (
                "" if exit_code is None else f" (last exit {exit_code})"
            )
            self.store.update(
                record.job_id,
                state=JobState.EVICTED,
                pid=None,
                finished_at=now,
                error=(
                    f"runner died {record.restarts + 1} times without "
                    f"writing a result{suffix}"
                ),
            )
        else:
            self.store.update(
                record.job_id,
                state=JobState.QUEUED,
                pid=None,
                restarts=record.restarts + 1,
            )

    # -- API-facing operations --------------------------------------------
    def submit(self, spec: JobSpec | dict, priority: int = 0) -> JobRecord:
        """Validate and enqueue one job (raises ``ValueError`` on bad
        specs or a ``world_size`` that can never be admitted)."""
        if not isinstance(spec, JobSpec):
            spec = JobSpec.from_dict(spec)
        if spec.world_size > self.max_ranks:
            raise ValueError(
                f"job world_size {spec.world_size} exceeds the pool's "
                f"max_ranks {self.max_ranks}; it could never be admitted"
            )
        with self._lock:
            return self.store.submit(spec, priority=priority)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel one job; idempotent, raises ``KeyError`` if unknown.

        Queued jobs go terminal immediately; running jobs get a
        cooperative SIGTERM now and a SIGKILL after ``grace_s`` if the
        runner has not stopped at a step boundary by then.
        """
        with self._lock:
            record = self.store.get(job_id)
            if record.terminal:
                return record
            if record.state == JobState.QUEUED:
                return self.store.update(
                    job_id,
                    state=JobState.CANCELLED,
                    cancel_requested=True,
                    finished_at=time.time(),
                )
            record = self.store.update(job_id, cancel_requested=True)
            child = self._children.get(job_id)
            if child is not None and job_id not in self._term_sent:
                child.terminate()
                self._term_sent[job_id] = time.monotonic()
            return record

    def running_ranks(self) -> int:
        return sum(
            r.spec.world_size
            for r in self.store.list(JobState.RUNNING)
        )

    # -- the scheduling tick ----------------------------------------------
    def step(self) -> None:
        """One scheduler tick: reap, enforce, admit."""
        with self._lock:
            self._reap()
            self._enforce()
            self._admit()

    def _reap(self) -> None:
        for job_id, child in list(self._children.items()):
            exit_code = child.poll()
            if exit_code is None:
                continue
            del self._children[job_id]
            self._term_sent.pop(job_id, None)
            self._settle_dead_runner(
                self.store.get(job_id), exit_code=exit_code
            )

    def _enforce(self) -> None:
        now = time.monotonic()
        for job_id, child in list(self._children.items()):
            record = self.store.get(job_id)
            if record.cancel_requested:
                sent = self._term_sent.get(job_id)
                if sent is None:
                    child.terminate()
                    self._term_sent[job_id] = now
                elif now - sent > self.grace_s:
                    child.kill()
            timeout = record.spec.timeout_s
            if (
                timeout is not None
                and record.started_at is not None
                and time.time() - record.started_at > timeout
                and record.error is None
            ):
                self.store.update(
                    job_id,
                    error=f"evicted: exceeded timeout_s={timeout}",
                )
                child.kill()

    def _admit(self) -> None:
        free = self.max_ranks - self.running_ranks()
        if free <= 0:
            return
        queued = [
            r for r in self.store.list(JobState.QUEUED)
            if not r.cancel_requested
        ]
        for record in self.scheduler.admit(self.queue.order(queued), free):
            self._spawn(record)

    def _spawn(self, record: JobRecord) -> None:
        job_dir = self.store.job_dir(record.job_id)
        env = dict(os.environ, REPRO_SERVE_DAEMON_PID=str(os.getpid()))
        with open(self.store.log_path(record.job_id), "ab") as log:
            child = subprocess.Popen(
                [sys.executable, "-m", "repro.serve.runner", str(job_dir)],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        self._children[record.job_id] = child
        self.store.update(
            record.job_id,
            state=JobState.RUNNING,
            pid=child.pid,
            started_at=time.time(),
        )

    # -- long-running service ---------------------------------------------
    def start_api(self) -> tuple[str, int]:
        """Bind and start the HTTP API thread; returns (host, port)."""
        from .api import make_server

        if self._server is None:
            self._server = make_server(self, self.host, self.port)
            self._server_thread = threading.Thread(
                target=self._server.serve_forever,
                name="serve-api",
                daemon=True,
            )
            self._server_thread.start()
        return self._server.server_address[:2]

    @property
    def address(self) -> tuple[str, int] | None:
        return None if self._server is None else (
            self._server.server_address[:2]
        )

    def request_stop(self) -> None:
        self._stop.set()

    def serve_forever(self, drain: bool = False) -> None:
        """Run the scheduling loop until stopped.

        With ``drain=True`` the loop exits once every job in the store
        is terminal — the batch mode the load test and CI use.
        """
        self.start_api()
        while not self._stop.is_set():
            self.step()
            if drain and all(r.terminal for r in self.store.list()):
                return
            self._stop.wait(self.poll_interval)

    def close(self) -> None:
        """Stop the API and kill+reap any still-running runners.

        Killed runners are requeued by the settle path, so a later
        daemon over the same root resumes them — closing is equivalent
        to a crash that was tidied up.
        """
        with self._lock:
            for child in self._children.values():
                child.kill()
            for child in self._children.values():
                child.wait(timeout=10.0)
            self._reap()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server_thread.join(timeout=5.0)
            self._server = None
            self._server_thread = None

    def __enter__(self) -> "ServeDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
