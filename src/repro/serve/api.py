"""REST/JSON API of the serve daemon (stdlib ``http.server``).

Endpoints::

    GET    /healthz                 daemon liveness + pool/queue stats
    GET    /jobs[?state=...]        job summaries, submission order
    POST   /jobs                    submit {"spec": {...}, "priority": n}
    GET    /jobs/<id>               one full job record (+ result)
    POST   /jobs/<id>/cancel        cancel (idempotent)
    DELETE /jobs/<id>               alias for cancel
    GET    /jobs/<id>/metrics       NDJSON metric stream so far;
                                    ?follow=1 keeps the connection open
                                    and streams new lines until the job
                                    is terminal
    GET    /jobs/<id>/trace         post-hoc Chrome trace (spec.trace)

Errors are JSON ``{"error": ...}`` with 400 (bad request), 404
(unknown job/route), or 405.  The server is a ``ThreadingHTTPServer``:
request handling never blocks the daemon's scheduling loop, and the
store's locking makes concurrent submits/cancels safe.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

__all__ = ["make_server"]


class _ServeHandler(BaseHTTPRequestHandler):
    daemon = None  # injected by make_server
    protocol_version = "HTTP/1.0"

    # -- plumbing ---------------------------------------------------------
    def log_message(self, *args) -> None:
        """Silence per-request stderr logging."""

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw or b"{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _record_payload(self, record) -> dict:
        payload = record.to_dict()
        result = self.daemon.store.read_result(record.job_id)
        if result is not None and payload.get("result") is None:
            # surface a result the daemon has not reaped yet
            payload["result"] = result
        return payload

    # -- routing ----------------------------------------------------------
    def _route(self, method: str) -> None:
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if parts == ["healthz"] and method == "GET":
                return self._healthz()
            if parts == ["jobs"]:
                if method == "GET":
                    return self._list_jobs(query)
                if method == "POST":
                    return self._submit()
                return self._send_error(405, "use GET or POST on /jobs")
            if len(parts) == 2 and parts[0] == "jobs":
                job_id = parts[1]
                if method == "GET":
                    return self._get_job(job_id)
                if method == "DELETE":
                    return self._cancel(job_id)
                return self._send_error(
                    405, "use GET or DELETE on /jobs/<id>"
                )
            if len(parts) == 3 and parts[0] == "jobs":
                job_id, action = parts[1], parts[2]
                if action == "cancel" and method == "POST":
                    return self._cancel(job_id)
                if action == "metrics" and method == "GET":
                    return self._metrics(job_id, query)
                if action == "trace" and method == "GET":
                    return self._trace(job_id)
            return self._send_error(404, f"no route for {self.path}")
        except KeyError:
            return self._send_error(404, f"unknown job {parts[1]!r}")
        except (ValueError, TypeError) as exc:
            return self._send_error(400, str(exc))

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def do_DELETE(self) -> None:
        self._route("DELETE")

    # -- endpoints --------------------------------------------------------
    def _healthz(self) -> None:
        daemon = self.daemon
        self._send_json(200, {
            "ok": True,
            "uptime_s": time.time() - daemon.started_at,
            "max_ranks": daemon.max_ranks,
            "running_ranks": daemon.running_ranks(),
            "queue": daemon.queue.name,
            "scheduler": daemon.scheduler.name,
            "jobs": daemon.store.counts(),
        })

    def _list_jobs(self, query: dict) -> None:
        state = query.get("state", [None])[0]
        jobs = [
            {
                "job_id": r.job_id,
                "state": r.state,
                "priority": r.priority,
                "world_size": r.spec.world_size,
                "restarts": r.restarts,
            }
            for r in self.daemon.store.list(state)
        ]
        self._send_json(200, {"jobs": jobs})

    def _submit(self) -> None:
        body = self._read_body()
        if "spec" not in body:
            raise ValueError('body must carry a "spec" object')
        record = self.daemon.submit(
            body["spec"], priority=int(body.get("priority", 0))
        )
        self._send_json(201, self._record_payload(record))

    def _get_job(self, job_id: str) -> None:
        record = self.daemon.store.get(job_id)
        self._send_json(200, self._record_payload(record))

    def _cancel(self, job_id: str) -> None:
        record = self.daemon.cancel(job_id)
        self._send_json(200, self._record_payload(record))

    def _metrics(self, job_id: str, query: dict) -> None:
        self.daemon.store.get(job_id)  # 404 via KeyError
        path = self.daemon.store.metrics_path(job_id)
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        offset = 0
        while True:
            if path.exists():
                with open(path, "rb") as stream:
                    stream.seek(offset)
                    chunk = stream.read()
                if chunk:
                    self.wfile.write(chunk)
                    self.wfile.flush()
                    offset += len(chunk)
            if not follow:
                return
            record = self.daemon.store.get(job_id)
            if record.terminal:
                return
            time.sleep(0.05)

    def _trace(self, job_id: str) -> None:
        self.daemon.store.get(job_id)  # 404 via KeyError
        path = self.daemon.store.trace_path(job_id)
        if not path.exists():
            return self._send_error(
                404,
                "no trace for this job (submit with \"trace\": true "
                "and wait for it to finish)",
            )
        body = path.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


def make_server(daemon, host: str = "127.0.0.1", port: int = 0):
    """Build a ``ThreadingHTTPServer`` bound to this daemon."""
    handler = type("ServeHandler", (_ServeHandler,), {"daemon": daemon})
    return ThreadingHTTPServer((host, port), handler)
