"""Training-as-a-service: a multi-tenant scheduler over the trainer.

The serve layer turns the repository from "runs an experiment" into
"serves traffic": a long-running daemon (``repro serve``) accepts
training jobs over a REST/JSON API, holds them in a persistent on-disk
queue with priorities and FIFO tie-breaking, and packs them onto a
bounded pool of runner processes under admission control (a cap on
total concurrent ranks; every job declares its ``world_size``).  Each
job trains in its own directory with per-step checkpoints, so a daemon
crash loses nothing: on restart the store is rescanned, queued jobs
run, and in-flight jobs resume bit-identically through the checkpoint
path (resumed ``History.digest()`` equals the uninterrupted run's).

Module map::

    jobspec.py    what a job trains (model/dataset/config), validated
    jobstore.py   persistent job records, atomic writes, rescan
    queue.py      dispatch-order policies          (QUEUE_NAMES)
    scheduler.py  admission control onto the pool  (SCHEDULER_NAMES)
    runner.py     one job's worker process (python -m repro.serve.runner)
    daemon.py     the scheduling loop owning store + pool
    api.py        REST/JSON endpoints over http.server
"""

from .api import make_server
from .daemon import ServeDaemon
from .jobspec import JobSpec
from .jobstore import (
    TERMINAL_STATES,
    JobRecord,
    JobState,
    JobStore,
    read_json,
    write_json_atomic,
)
from .queue import QUEUE_NAMES, make_queue
from .scheduler import SCHEDULER_NAMES, make_scheduler

__all__ = [
    "JobSpec",
    "JobRecord",
    "JobState",
    "JobStore",
    "TERMINAL_STATES",
    "read_json",
    "write_json_atomic",
    "QUEUE_NAMES",
    "make_queue",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "ServeDaemon",
    "make_server",
]
