"""One job's worker process: ``python -m repro.serve.runner <job-dir>``.

The daemon spawns one runner per admitted job.  The runner rebuilds
model + dataset + config from the job's spec, trains under the
existing :class:`~repro.core.ParallelTrainer` with per-step
checkpoints into the job's own ``ckpts/`` directory, and — if a
checkpoint already exists because a previous attempt (or the whole
daemon) was killed — resumes from the latest one, bit-identically to
an uninterrupted run.

Live telemetry streams incrementally to ``metrics.ndjson``: one NDJSON
line per completed epoch (the numeric ``EpochMetrics`` fields) and a
final ``phase_totals`` line; with ``spec.trace`` set the run is traced
and a per-job Chrome trace is exported post-hoc next to it.  The
terminal outcome is written atomically to ``result.json`` — the daemon
never trusts an exit code alone, only this file:

* present → ``succeeded`` / ``failed`` (with traceback) / ``cancelled``;
* absent after the process died → the runner was killed (SIGKILL, OOM,
  daemon crash) and the daemon requeues the job to resume, or evicts
  it past its restart budget.

Cancellation is cooperative: the daemon's SIGTERM sets a flag the
training loop polls between steps, so the job stops at a step boundary
and reports ``cancelled`` itself.  If the *daemon* dies instead, the
runner notices it was reparented (``os.getppid()``) and exits without
a result so the restarted daemon resumes it — orphans never train to
completion unsupervised.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
import traceback
from pathlib import Path

from ..core import ParallelTrainer, TrainingInterrupted
from ..core.checkpoint import CheckpointPolicy, checkpoint_steps
from ..telemetry import Tracer, write_chrome_trace
from .jobspec import JobSpec
from .jobstore import JobState, read_json, write_json_atomic

__all__ = ["ORPHAN_EXIT_CODE", "main", "run_job"]

#: exit code of a runner that stopped because its daemon disappeared
#: (EX_TEMPFAIL: the job is unfinished and will be resumed)
ORPHAN_EXIT_CODE = 75


class _DaemonGone(Exception):
    """The spawning daemon died; stop without writing a result."""


def _append_ndjson(path: Path, payload: dict) -> None:
    with open(path, "a") as stream:
        stream.write(json.dumps(payload, sort_keys=True) + "\n")
        stream.flush()
        os.fsync(stream.fileno())


def _epoch_line(metrics) -> dict:
    line = {"type": "epoch"}
    line.update(
        {k: v for k, v in vars(metrics).items() if v is not None}
    )
    return line


def run_job(
    job_dir: str | os.PathLike,
    *,
    daemon_pid: int | None = None,
    cancel_flag: dict | None = None,
) -> int:
    """Train one job to a terminal result; returns the exit code.

    ``cancel_flag`` is a mutable ``{"cancel": bool}`` cell the SIGTERM
    handler (or an in-process test) flips; ``daemon_pid`` enables the
    orphan watch — when the runner's parent is no longer that pid the
    job stops without a result so a restarted daemon resumes it.
    """
    job_dir = Path(job_dir)
    cancel_flag = {"cancel": False} if cancel_flag is None else cancel_flag
    record = read_json(job_dir / "record.json")
    if record is None:
        print(f"runner: no readable record.json under {job_dir}",
              file=sys.stderr)
        return 2
    metrics_path = job_dir / "metrics.ndjson"
    result_path = job_dir / "result.json"
    started = time.perf_counter()

    resumed_from_step: int | None = None

    def finish(state: str, history=None, **extra) -> int:
        payload = {
            "state": state,
            "job_id": record.get("job_id"),
            "resumed_from_step": resumed_from_step,
        }
        if history is not None:
            payload.update(
                digest=history.digest(),
                epochs_trained=len(history.epochs),
                final_test_accuracy=(
                    history.final_test_accuracy if history.epochs else None
                ),
                total_comm_bytes=history.total_comm_bytes,
                kernel_backend=history.kernel_backend,
            )
            if history.failures:
                payload["failures"] = [
                    f.to_dict() for f in history.failures
                ]
        payload["wall_seconds"] = time.perf_counter() - started
        payload.update(extra)
        write_json_atomic(result_path, payload)
        return 0 if state == JobState.SUCCEEDED else 1

    def should_stop() -> bool:
        if daemon_pid is not None and os.getppid() != daemon_pid:
            raise _DaemonGone(f"parent is no longer pid {daemon_pid}")
        return bool(cancel_flag["cancel"])

    try:
        spec = JobSpec.from_dict(record["spec"])
        tracer = Tracer() if spec.trace else None
        config = spec.to_config(tracer)
        dataset = spec.build_dataset()
        policy = CheckpointPolicy(
            directory=job_dir / "ckpts",
            every_steps=spec.checkpoint_every_steps,
            keep=2,
            extra={"job_id": record.get("job_id")},
        )
        # a previous attempt's checkpoints mean this attempt resumes
        # (numeric-step discovery: ckpt-100 beats ckpt-99)
        found = checkpoint_steps(policy.directory)
        resumed_from_step, resume_from = found[-1] if found else (None, None)

        def on_epoch(metrics, history) -> None:
            _append_ndjson(metrics_path, _epoch_line(metrics))

        with ParallelTrainer(spec.build_model(), config) as trainer:
            try:
                history = trainer.fit(
                    dataset.train_x, dataset.train_y,
                    dataset.test_x, dataset.test_y,
                    epochs=spec.epochs,
                    checkpoint=policy,
                    resume_from=resume_from,
                    on_epoch=on_epoch,
                    should_stop=should_stop,
                )
            except TrainingInterrupted:
                return finish(JobState.CANCELLED)
        _append_ndjson(
            metrics_path,
            {"type": "phase_totals", **history.phase_totals()},
        )
        if tracer is not None:
            write_chrome_trace(tracer, job_dir / "trace.json")
    except _DaemonGone as exc:
        print(f"runner: daemon gone ({exc}); exiting for resume",
              file=sys.stderr)
        return ORPHAN_EXIT_CODE
    except Exception:
        return finish(JobState.FAILED, traceback=traceback.format_exc())
    if history.failures:
        return finish(JobState.FAILED, history=history)
    return finish(JobState.SUCCEEDED, history=history)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.serve.runner <job-dir>",
              file=sys.stderr)
        return 2
    daemon_pid = os.environ.get("REPRO_SERVE_DAEMON_PID")
    cancel_flag = {"cancel": False}

    def on_sigterm(_signum, _frame) -> None:  # pragma: no cover - signal
        cancel_flag["cancel"] = True

    signal.signal(signal.SIGTERM, on_sigterm)
    return run_job(
        argv[0],
        daemon_pid=int(daemon_pid) if daemon_pid else None,
        cancel_flag=cancel_flag,
    )


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
