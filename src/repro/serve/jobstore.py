"""Persistent on-disk job records with atomic writes and rescan.

Layout (everything under the daemon's ``--root``)::

    <root>/jobs/<job-id>/record.json     daemon-owned job record
    <root>/jobs/<job-id>/result.json     runner-owned terminal result
    <root>/jobs/<job-id>/metrics.ndjson  runner-owned live metric stream
    <root>/jobs/<job-id>/trace.json      runner-owned Chrome trace (opt)
    <root>/jobs/<job-id>/runner.log      runner stdout/stderr
    <root>/jobs/<job-id>/ckpts/          per-job checkpoint directory

Single-writer discipline keeps the store race-free without file locks:
``record.json`` is written only by the daemon, ``result.json`` and the
metric stream only by the job's runner process.  Every JSON write goes
through tmp-file + ``os.replace`` so a crash mid-write can never leave
a torn file — a reader sees either the previous record or the new one,
and stray ``*.tmp*`` leftovers are ignored (and swept) on rescan.

The store survives the daemon: a restarted daemon constructs a fresh
:class:`JobStore` over the same root and :meth:`JobStore.reload` finds
every job exactly as the dead daemon left it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .jobspec import JobSpec

__all__ = [
    "JobRecord",
    "JobState",
    "JobStore",
    "TERMINAL_STATES",
    "read_json",
    "write_json_atomic",
]


class JobState:
    """Job lifecycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EVICTED = "evicted"


#: states a job never leaves
TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED,
     JobState.EVICTED}
)


def write_json_atomic(path: str | os.PathLike, payload: dict) -> Path:
    """Write ``payload`` as JSON via tmp-file + ``os.replace``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp{os.getpid()}"
    try:
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on failed write
            tmp.unlink()
    return path


def read_json(path: str | os.PathLike) -> dict | None:
    """Read a JSON file; ``None`` when absent or torn mid-write."""
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError):
        return None


@dataclass
class JobRecord:
    """One job as the daemon tracks it.

    Attributes:
        job_id: stable id, ``job-<seq>``.
        seq: monotonic submission counter — the FIFO tie-break.
        priority: higher runs first (under the priority queue).
        spec: what the job trains.
        state: one of the :class:`JobState` values.
        cancel_requested: set by the API; the daemon turns it into a
            SIGTERM (running) or an immediate ``cancelled`` (queued).
        pid: the runner process id while ``running``.
        restarts: times the runner died without writing a result and
            the job was requeued to resume (daemon crash, SIGKILL);
            past the daemon's ``max_restarts`` the job is evicted.
        error: human-readable reason for ``evicted``.
        result: the runner's terminal payload (digest, accuracy,
            traceback, ...) merged in at reap time.
    """

    job_id: str
    seq: int
    priority: int
    spec: JobSpec
    state: str = JobState.QUEUED
    cancel_requested: bool = False
    pid: int | None = None
    restarts: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: dict | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict:
        record = dict(vars(self))
        record["spec"] = self.spec.to_dict()
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "JobRecord":
        kwargs = dict(record)
        kwargs["spec"] = JobSpec.from_dict(kwargs["spec"])
        return cls(**kwargs)


class JobStore:
    """Directory-backed job records; the daemon's single source of truth.

    Thread-safe: the API server's request threads and the scheduling
    loop mutate through one lock.  All mutations write through to disk
    atomically before returning, so at every instant the on-disk state
    is a consistent snapshot a restarted daemon can rescan.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._records: dict[str, JobRecord] = {}
        self.reload()

    # -- paths ------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "record.json"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    def metrics_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "metrics.ndjson"

    def trace_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "trace.json"

    def log_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "runner.log"

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "ckpts"

    # -- scanning ---------------------------------------------------------
    def reload(self) -> None:
        """Rebuild the in-memory view from disk (daemon restart)."""
        with self._lock:
            self._records.clear()
            for entry in sorted(self.jobs_dir.iterdir()):
                if not entry.is_dir():
                    continue
                payload = read_json(entry / "record.json")
                if payload is None:
                    # a submission that crashed before its first
                    # atomic record write; nothing to recover
                    continue
                record = JobRecord.from_dict(payload)
                self._records[record.job_id] = record
            self._seq = max(
                (r.seq for r in self._records.values()), default=-1
            ) + 1

    # -- reads ------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._records[job_id]

    def list(self, state: str | None = None) -> list[JobRecord]:
        """All records (optionally one state), in submission order."""
        with self._lock:
            records = sorted(
                self._records.values(), key=lambda r: r.seq
            )
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.list():
            counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    # -- writes (daemon only) ---------------------------------------------
    def save(self, record: JobRecord) -> JobRecord:
        with self._lock:
            self._records[record.job_id] = record
            write_json_atomic(
                self.record_path(record.job_id), record.to_dict()
            )
        return record

    def submit(self, spec: JobSpec, priority: int = 0) -> JobRecord:
        with self._lock:
            seq = self._seq
            self._seq += 1
            record = JobRecord(
                job_id=f"job-{seq:06d}",
                seq=seq,
                priority=int(priority),
                spec=spec,
            )
            self.job_dir(record.job_id).mkdir(parents=True, exist_ok=True)
            return self.save(record)

    def update(self, job_id: str, **fields_) -> JobRecord:
        """Mutate named fields of one record, atomically persisted."""
        with self._lock:
            record = self._records[job_id]
            for name, value in fields_.items():
                if not hasattr(record, name):
                    raise AttributeError(
                        f"JobRecord has no field {name!r}"
                    )
                setattr(record, name, value)
            return self.save(record)

    # -- runner artefacts -------------------------------------------------
    def read_result(self, job_id: str) -> dict | None:
        return read_json(self.result_path(job_id))

    def sweep_tmp(self) -> int:
        """Delete stray ``*.tmp*`` files left by a killed writer."""
        swept = 0
        for entry in self.jobs_dir.glob("*/.*.tmp*"):
            entry.unlink(missing_ok=True)
            swept += 1
        return swept
