"""What one training job runs: model, dataset, and training config.

A :class:`JobSpec` is the unit of submission — the JSON body of
``POST /jobs`` parses into one.  It mirrors the ``repro train`` CLI
knobs (zoo model + synthetic dataset + :class:`TrainingConfig` cell)
so anything trainable from the command line is submittable as a job.
Specs are validated eagerly at submission (unknown fields, unknown
model, non-positive sizes), while config-level errors that need the
full :class:`TrainingConfig` construction (scheme/exchange names,
batch-vs-world-size constraints) surface when the runner builds the
trainer and turn the job ``failed`` with a traceback.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from ..core.config import TrainingConfig
from ..data import make_image_dataset, make_sequence_dataset
from ..models import MODEL_BUILDERS, build_model

__all__ = ["JobSpec"]


@dataclass(frozen=True)
class JobSpec:
    """One submittable training job.

    Attributes:
        model: zoo model name (``repro.models.MODEL_BUILDERS``).
        scheme / policy / exchange / engine: the study-grid cell to
            train (validated by :class:`TrainingConfig` in the
            runner); ``policy="adaptive"`` enables per-layer bit-width
            selection with ``scheme`` as the middle precision tier.
        world_size: ranks this job occupies in the daemon's pool —
            the admission-control currency.
        epochs: total epochs to train (a resumed job continues to the
            same total).
        checkpoint_every_steps: per-step checkpoint cadence; 1 (the
            default) makes the job resumable from any kill point.
        trace: record a telemetry trace and export a per-job Chrome
            trace next to the metrics stream.
        timeout_s: wall-clock budget per attempt; the daemon evicts
            the job when exceeded.  ``None`` = unbounded.
        link_gbps: optional simulated link pacing, as in ``repro
            train``.
        aggregation_frequency / sync_mode / momentum: periodic-
            synchronization knobs, as in ``repro train`` (sync_mode
            "local_sgd" needs momentum 0.0; validated by
            :class:`TrainingConfig` in the runner).
    """

    model: str = "alexnet"
    scheme: str = "32bit"
    policy: str = "static"
    exchange: str = "mpi"
    engine: str = "sequential"
    world_size: int = 2
    batch_size: int = 32
    epochs: int = 2
    lr: float = 0.01
    momentum: float = 0.9
    aggregation_frequency: int = 1
    sync_mode: str = "allreduce"
    seed: int = 0
    model_seed: int = 1
    classes: int = 4
    image_size: int = 8
    train_samples: int = 64
    test_samples: int = 32
    checkpoint_every_steps: int = 1
    trace: bool = False
    timeout_s: float | None = None
    link_gbps: float | None = None

    def __post_init__(self) -> None:
        if self.model not in MODEL_BUILDERS:
            raise ValueError(
                f"unknown model {self.model!r}; expected one of "
                f"{sorted(MODEL_BUILDERS)}"
            )
        for name in ("world_size", "batch_size", "epochs",
                     "checkpoint_every_steps", "train_samples",
                     "aggregation_frequency"):
            if int(getattr(self, name)) < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.test_samples < 0:
            raise ValueError(
                f"test_samples must be >= 0, got {self.test_samples}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )

    # -- (de)serialization ------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "JobSpec":
        """Parse a submitted spec, rejecting unknown fields by name."""
        if not isinstance(record, dict):
            raise ValueError(
                f"spec must be a JSON object, got {type(record).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(record) - known)
        if unknown:
            raise ValueError(
                f"unknown spec fields: {', '.join(unknown)}; expected a "
                f"subset of {sorted(known)}"
            )
        return cls(**record)

    # -- materialization (runner side) ------------------------------------
    def to_config(self, tracer=None) -> TrainingConfig:
        """The :class:`TrainingConfig` cell this job trains."""
        kwargs = {}
        if tracer is not None:
            kwargs["tracer"] = tracer
        return TrainingConfig(
            scheme=self.scheme,
            policy=self.policy,
            exchange=self.exchange,
            world_size=self.world_size,
            batch_size=self.batch_size,
            lr=self.lr,
            momentum=self.momentum,
            aggregation_frequency=self.aggregation_frequency,
            sync_mode=self.sync_mode,
            seed=self.seed,
            engine=self.engine,
            link_gbps=self.link_gbps,
            **kwargs,
        )

    def build_model(self):
        """Fresh model replica seeded exactly like ``repro train``."""
        if self.model == "lstm":
            return build_model(self.model, num_classes=self.classes,
                               seed=self.model_seed)
        if self.model in ("alexnet", "vgg"):
            return build_model(self.model, num_classes=self.classes,
                               image_size=self.image_size,
                               seed=self.model_seed)
        return build_model(self.model, num_classes=self.classes,
                           seed=self.model_seed)

    def build_dataset(self):
        """The job's synthetic dataset (seeded by the config seed)."""
        if self.model == "lstm":
            return make_sequence_dataset(
                num_classes=self.classes,
                train_samples=self.train_samples,
                test_samples=self.test_samples,
                seed=self.seed,
            )
        return make_image_dataset(
            num_classes=self.classes,
            train_samples=self.train_samples,
            test_samples=self.test_samples,
            image_size=self.image_size,
            seed=self.seed,
        )
