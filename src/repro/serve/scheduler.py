"""Admission control: which queued jobs start, given free ranks.

The daemon's pool is a budget of concurrent *ranks* (``--max-ranks``),
not jobs — a ``world_size=4`` job costs four slots, so heterogeneous
jobs pack like bin items.  A scheduler policy picks, from the queue
policy's ordering, the jobs to admit into the currently free budget:

* ``first-fit`` walks the whole ordering and admits every job that
  fits, so small jobs pack around a wide head-of-line job that must
  wait for capacity (best utilization; a wide job can be bypassed
  indefinitely under a steady small-job stream).
* ``strict`` stops at the first job that does not fit, preserving the
  queue order exactly (no bypass; the pool may idle below capacity
  while a wide job waits).
"""

from __future__ import annotations

from .jobstore import JobRecord

__all__ = [
    "SCHEDULER_NAMES",
    "make_scheduler",
    "FirstFitScheduler",
    "StrictScheduler",
]


class FirstFitScheduler:
    """Admit every queued job, in order, that fits the free budget."""

    name = "first-fit"

    def admit(
        self, ordered: list[JobRecord], free_ranks: int
    ) -> list[JobRecord]:
        admitted = []
        for record in ordered:
            need = record.spec.world_size
            if need <= free_ranks:
                admitted.append(record)
                free_ranks -= need
            if free_ranks <= 0:
                break
        return admitted


class StrictScheduler:
    """Admit in order until the first job that does not fit."""

    name = "strict"

    def admit(
        self, ordered: list[JobRecord], free_ranks: int
    ) -> list[JobRecord]:
        admitted = []
        for record in ordered:
            need = record.spec.world_size
            if need > free_ranks:
                break
            admitted.append(record)
            free_ranks -= need
        return admitted


_SCHEDULERS = {
    "first-fit": FirstFitScheduler,
    "strict": StrictScheduler,
}

#: registered admission policies, in documentation order
SCHEDULER_NAMES = ("first-fit", "strict")


def make_scheduler(name: str):
    """Construct an admission policy by name.

    Raises ``ValueError`` listing the valid choices for an unknown
    name (never a raw ``KeyError``), like every other name registry in
    the repository.
    """
    try:
        scheduler_cls = _SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of "
            f"{SCHEDULER_NAMES}"
        ) from None
    return scheduler_cls()
