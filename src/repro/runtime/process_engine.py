"""Process-per-rank execution engine with shared-memory exchange.

:class:`ProcessEngine` runs every rank as a real OS process (spawn
context), which is the tier the threaded engine cannot reach: each
rank owns a whole interpreter, so Python-level compute genuinely
parallelizes instead of interleaving under one GIL.

Data plane and control plane are split.  Gradients move through a
:class:`~repro.runtime.shm.GradientArena` — one shared-memory block
laid out by the engine's bucket plan, one slot per rank plus a slot
for the aggregated means — as zero-copy float32 views on both sides.
Control messages (step dispatch, arrival, verdicts) move over one
duplex pipe per rank, and the cross-process step rendezvous is
:class:`ProcessStepBarrier`: the coordinator waits on every pending
rank's pipe *and* process sentinel together, so a killed worker breaks
the rendezvous immediately and a silent one is named at the deadline,
exactly like the threaded engine's :class:`~repro.runtime.barrier.StepBarrier`.

Bit-identity with the other engines holds because the numeric step is
unchanged: workers run the same :class:`~repro.runtime.worker.RankWorker`
compute on replicas whose parameters and per-rank RNG streams are
shipped bit-exactly at spawn (pickle preserves float bits and
generator state), and the whole collective — shared quantization RNG,
error-feedback residuals, exchange state — stays on the coordinator,
which runs the unmodified ``SynchronousStep`` bucket walk over the
arena views in the same fixed order.  Workers therefore ship *raw*
gradients through the arena and the coordinator encodes; encoding in
the workers would need per-rank quantization RNG streams, which is a
different (non-bit-identical) trajectory by construction.

The coordinator keeps its local "shadow" workers: after every
committed step it installs the reported per-rank RNG states and
applies the same aggregated update to them, so evaluation,
checkpointing, retry snapshots, and respawns all read ordinary local
state.  A killed worker surfaces as a retryable
:class:`~repro.runtime.resilience.AttemptFailure`; the retry respawns
the rank from its shadow (parameters, momentum, RNG streams — all
pre-step, since shadows only advance on success) and replays the step.
Eviction reshards the survivors through the shared base-class path.

Per-process tracers record compute/transfer spans on the worker side
and ship them back with each control message; the coordinator merges
them into its tracer, so a traced run yields one Chrome-trace track
per rank (``perf_counter_ns`` reads ``CLOCK_MONOTONIC``, which is
system-wide on Linux, so cross-process timestamps share a timebase).

Models and the loss function cross the spawn boundary by pickle, so
both must be picklable (module-level functions; the bundled models and
losses are).
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, replace
from multiprocessing import connection as mp_connection

import numpy as np

from ..telemetry.tracer import COORDINATOR, NULL_TRACER, TraceEvent, Tracer
from ..units import gbps_to_bytes_per_second
from .engine import ExecutionEngine
from .faults import FaultPlan, InjectedCrash, WorkerFailure, WorkerFailureError
from .resilience import AttemptFailure
from .shm import GradientArena, arena_slots
from .worker import (
    LossFn,
    RankWorker,
    collect_module_rngs,
    install_module_buffers,
    read_module_buffers,
)

__all__ = ["ProcessEngine", "ProcessStepBarrier"]


@dataclass(frozen=True)
class _Rendezvous:
    """Outcome of one :meth:`ProcessStepBarrier.gather` phase.

    Attributes:
        messages: one control message per rank that arrived in time.
        dead: ranks whose process died without delivering a message.
        missing: ranks still alive but silent when the deadline passed.
    """

    messages: dict[int, tuple]
    dead: tuple[int, ...]
    missing: tuple[int, ...]

    @property
    def complete(self) -> bool:
        return not self.dead and not self.missing


class ProcessStepBarrier:
    """Cross-process step rendezvous — the ``StepBarrier`` equivalent.

    Each pending rank "arrives" by delivering exactly one control
    message on its pipe; the coordinator blocks on the pipes and the
    process sentinels together (``multiprocessing.connection.wait``),
    so a dead rank is detected the moment the OS reaps it rather than
    at the deadline.  Like the threaded barrier, a timeout reports
    *which* parties never arrived instead of hanging.
    """

    def __init__(self, timeout: float):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout

    def gather(
        self,
        conns: dict[int, mp_connection.Connection],
        procs: dict[int, multiprocessing.process.BaseProcess],
        pending: set[int],
    ) -> _Rendezvous:
        """Collect one message from every pending rank (or diagnose)."""
        pending = set(pending)
        messages: dict[int, tuple] = {}
        dead: list[int] = []
        deadline = time.monotonic() + self.timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            by_handle = {}
            for rank in pending:
                by_handle[conns[rank]] = rank
                by_handle[procs[rank].sentinel] = rank
            ready = mp_connection.wait(
                list(by_handle), timeout=remaining
            )
            for rank in sorted({by_handle[h] for h in ready}):
                if rank not in pending:
                    continue
                # a just-dead worker's last message can still sit in
                # the pipe buffer: always prefer draining it over the
                # sentinel's verdict
                if conns[rank].poll(0):
                    try:
                        messages[rank] = conns[rank].recv()
                    except (EOFError, OSError):
                        dead.append(rank)
                    pending.discard(rank)
                elif not procs[rank].is_alive():
                    dead.append(rank)
                    pending.discard(rank)
        return _Rendezvous(
            messages, tuple(sorted(dead)), tuple(sorted(pending))
        )


# -- worker-process side ----------------------------------------------------


def _drain_telemetry(tracer) -> tuple[tuple, float]:  # pragma: no cover
    """Ship-and-reset this worker's spans and straggler stall time."""
    if not tracer.enabled:
        return (), 0.0
    spans = tuple(
        (e.name, e.track, e.start_ns, e.duration_ns)
        for e in tracer.events()
    )
    stall = tracer.counters.straggler_stall_seconds
    tracer.clear()
    return spans, stall


def _rollback_rngs(generators, states) -> None:  # pragma: no cover
    """Rewind this worker's module RNG streams to their pre-step state."""
    for gen, state in zip(generators, states):
        gen.bit_generator.state = copy.deepcopy(state)


def _child_main(
    rank: int,
    conn: mp_connection.Connection,
    arena_name: str,
    slots: list,
    world_size: int,
    model,
    velocity: dict,
    lr: float,
    config,
    loss_fn: LossFn,
    payload_nbytes: int,
    trace_enabled: bool,
    kills_fired: frozenset,
) -> None:  # pragma: no cover - runs in spawned worker processes
    """Entry point of one rank's worker process."""
    arena = GradientArena.attach(arena_name, slots, world_size)
    try:
        _serve(
            rank, conn, arena, model, velocity, lr, config, loss_fn,
            payload_nbytes, trace_enabled, kills_fired,
        )
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        arena.close()
        conn.close()


def _serve(
    rank, conn, arena, model, velocity, lr, config, loss_fn,
    payload_nbytes, trace_enabled, kills_fired,
) -> None:  # pragma: no cover - runs in spawned worker processes
    worker = RankWorker(
        rank,
        model,
        loss_fn,
        lr=lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        label=config.label,
    )
    worker.optimizer._velocity = {
        name: np.array(value, copy=True)
        for name, value in velocity.items()
    }
    # kills are handled right here as real SIGKILLs, so the plan's
    # in-process degradation must not fire (in particular not on a
    # respawned worker replaying the step its predecessor died in)
    plan = replace(FaultPlan.from_config(config), kill_points=())
    kill_points = {
        (int(r), int(s)) for r, s in config.kill_points
    } - set(kills_fired)
    grad_views = arena.rank_views(rank)
    mean_views = arena.mean_views()
    link_rate = (
        None
        if config.link_gbps is None or config.world_size < 2
        else gbps_to_bytes_per_second(config.link_gbps)
    )
    tracer = Tracer() if trace_enabled else NULL_TRACER
    generators = collect_module_rngs(worker.model)
    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == "stop":
            return
        if cmd == "lr":
            worker.optimizer.lr = msg[1]
            continue
        if cmd == "abort":
            # stale release of a step this rank already bailed from
            continue
        step, shard_x, shard_y, scale = msg[1], msg[2], msg[3], msg[4]
        # periodic synchronization: skipped round steps exchange nothing,
        # so their uploads are never paced
        sync = msg[5]
        pre_step = [
            copy.deepcopy(gen.bit_generator.state) for gen in generators
        ]
        try:
            if (rank, step) in kill_points:
                # a hard kill, not an exception: the process vanishes
                # mid-step exactly like an OOM-killed or crashed rank
                os.kill(os.getpid(), signal.SIGKILL)
            plan.inject(rank, step, tracer.counter_sink)
            with tracer.span("compute", rank):
                worker.compute(shard_x, shard_y, grad_scale=scale)
        except InjectedCrash as exc:
            _rollback_rngs(generators, pre_step)
            spans, stall = _drain_telemetry(tracer)
            conn.send(("fail", "crash", str(exc), spans, stall))
            continue
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            _rollback_rngs(generators, pre_step)
            conn.send(("error", exc))
            continue
        for param in worker.parameters:
            np.copyto(grad_views[param.name], param.grad)
        if sync and link_rate is not None and payload_nbytes > 0:
            # per-rank paced upload: every worker sleeps its own wire
            # time concurrently, which is what hides it
            with tracer.span("transfer", rank):
                time.sleep(payload_nbytes / link_rate)
        states = [
            copy.deepcopy(gen.bit_generator.state) for gen in generators
        ]
        spans, stall = _drain_telemetry(tracer)
        conn.send(
            (
                "grads",
                worker.loss,
                worker.accuracy,
                worker.samples,
                states,
                spans,
                stall,
                # non-parameter state the forward mutated (batchnorm
                # running stats): the shadow replica must mirror it or
                # coordinator-side evaluation/checkpoints drift
                read_module_buffers(worker.model),
            )
        )
        verdict = conn.recv()
        kind = verdict[0]
        if kind not in ("apply", "skip", "local", "install"):
            # "abort": the coordinator tore the attempt down
            _rollback_rngs(generators, pre_step)
            continue
        if kind == "apply":
            # classic path: install the aggregated gradient mean
            with tracer.span("compute", rank):
                worker.apply_updates(mean_views)
        elif kind == "local":
            # local SGD, mid-round: step on this rank's own gradients
            with tracer.span("compute", rank):
                worker.apply_local_updates()
        elif kind == "install":
            # local SGD, round flush: take the last local step, then
            # adopt the averaged parameters the coordinator published
            # through the mean slot
            with tracer.span("compute", rank):
                worker.apply_local_updates()
                for param in worker.parameters:
                    np.copyto(param.data, mean_views[param.name])
        # "skip" (accumulating mid-round): the replica does not move
        spans, _ = _drain_telemetry(tracer)
        conn.send(("done", spans))


# -- coordinator side -------------------------------------------------------


class ProcessEngine(ExecutionEngine):
    """Process-per-rank engine (spawn context, shared-memory exchange)."""

    name = "process"

    def __init__(self, model, config, loss_fn: LossFn):
        super().__init__(model, config, loss_fn)
        self._ctx = multiprocessing.get_context("spawn")
        self._loss_fn = loss_fn
        # the tracer holds locks and must not cross the spawn boundary;
        # workers build their own and ship spans back over the pipe
        self._child_config = replace(config, tracer=None)
        self._barrier = ProcessStepBarrier(config.barrier_timeout)
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._conns: dict[int, mp_connection.Connection] = {}
        self._arena: GradientArena | None = None
        self._grad_views: dict[int, dict[str, np.ndarray]] = {}
        self._mean_views: dict[str, np.ndarray] = {}
        self._kill_points = {
            (int(r), int(s)) for r, s in config.kill_points
        }
        self._kills_fired: set[tuple[int, int]] = set()
        self._needs_respawn: set[int] = set()
        self._undrained: set[int] = set()
        self._failure: WorkerFailure | None = None

    # -- lifecycle --------------------------------------------------------
    def _ensure_started(self) -> None:
        """Lazily allocate the arena and spawn missing live workers.

        Spawning on first step (not construction) means a checkpoint
        restore always lands in the shadows *before* any worker
        exists, so the spawned replicas inherit the restored state.
        """
        if self._arena is None:
            shapes = {
                p.name: p.data.shape for p in self.workers[0].parameters
            }
            self._arena = GradientArena.create(
                arena_slots(self.buckets, shapes), self.world_size
            )
            self._grad_views = {
                rank: self._arena.rank_views(rank)
                for rank in range(self.world_size)
            }
            self._mean_views = self._arena.mean_views()
        for rank in self.live_ranks:
            if rank not in self._procs:
                self._spawn_rank(rank)

    def _spawn_rank(self, rank: int) -> None:
        """Start rank's process from its shadow (pre-step) state."""
        shadow = self.workers[rank]
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_child_main,
            args=(
                rank,
                child_conn,
                self._arena.name,
                self._arena.slots,
                self.world_size,
                shadow.model,
                {
                    name: np.array(value, copy=True)
                    for name, value in shadow.optimizer._velocity.items()
                },
                shadow.optimizer.lr,
                self._child_config,
                self._loss_fn,
                self.per_rank_payload_nbytes,
                self.tracer.enabled,
                frozenset(self._kills_fired),
            ),
            name=f"repro-rank-{rank}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[rank] = proc
        self._conns[rank] = parent_conn

    def _reap(self, rank: int, timeout: float = 5.0) -> None:
        """Join/terminate one worker process and close its pipe."""
        proc = self._procs.pop(rank, None)
        conn = self._conns.pop(rank, None)
        if proc is not None:
            proc.join(timeout=timeout)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=timeout)
            proc.close()
        if conn is not None:
            conn.close()

    def _stop_workers(self) -> None:
        for rank in list(self._procs):
            proc = self._procs[rank]
            if proc.is_alive():
                try:
                    self._conns[rank].send(("stop",))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
            self._reap(rank)
        self._undrained.clear()
        self._needs_respawn.clear()

    def shutdown(self) -> None:
        self._stop_workers()
        if self._arena is not None:
            # views alias the mapping; drop them before closing it
            self._grad_views = {}
            self._mean_views = {}
            self._arena.close()
            self._arena = None

    def __del__(self) -> None:  # pragma: no cover - GC best effort
        try:
            self.shutdown()
        except Exception:
            pass

    def on_state_restored(self) -> None:
        """Resync workers after a checkpoint restore into the shadows.

        Normally restore precedes the lazy first spawn and this is a
        no-op; if workers are already running, they hold pre-restore
        state, so stop them and let the next step respawn from the
        freshly-restored shadows.
        """
        if self._procs:
            self._stop_workers()

    def set_lr(self, lr: float) -> None:
        super().set_lr(lr)
        for rank in self.live_ranks:
            conn = self._conns.get(rank)
            if conn is not None:
                conn.send(("lr", lr))

    # -- step driving -----------------------------------------------------
    def train_step(self, x, y):
        if self._failure is not None:
            raise WorkerFailureError(self._failure)
        return super().train_step(x, y)

    def _attempt_step(self, step: int, x, y):
        self._ensure_started()
        shards = self._shard(x, y)
        scales = self._grad_scales(shards)
        sync = self.step_engine.sync_this_step
        local = self.step_engine.local_updates
        for rank in self.live_ranks:
            shard_x, shard_y = shards[rank]
            self._conns[rank].send(
                ("step", step, shard_x, shard_y, scales.get(rank), sync)
            )
        outcome = self._timed_wait(
            lambda: self._barrier.gather(
                self._conns, self._procs, set(self.live_ranks)
            ),
            COORDINATOR,
        )
        payloads = self._classify_grads(step, outcome)
        # from here the attempt is committed on verdict delivery: pick
        # the verdict matching the round mode and settle the shadows
        aggregated: dict[str, np.ndarray] | None = None
        if local:
            # advance each shadow on its own rank's gradients (from the
            # arena) so the round deltas are computable coordinator-side
            # — bit-equal to the worker's local step (momentum is 0, so
            # there is no optimizer state to diverge)
            for rank in self.live_ranks:
                self.workers[rank].apply_updates(self._grad_views[rank])
            if sync:
                averaged = self._average_replicas()
                for name, avg in averaged.items():
                    np.copyto(self._mean_views[name], avg)
                self._install_params(averaged)
                verdict = ("install", step)
            else:
                verdict = ("local", step)
        elif sync:
            aggregated = {}
            for bucket in self.buckets:
                aggregated.update(
                    self.step_engine.aggregate_bucket(
                        list(bucket.names),
                        {
                            name: [
                                self._grad_views[rank][name]
                                for rank in self.live_ranks
                            ]
                            for name in bucket.names
                        },
                    )
                )
            for name, mean in aggregated.items():
                np.copyto(self._mean_views[name], mean)
            verdict = ("apply", step)
        else:
            for bucket in self.buckets:
                self.step_engine.accumulate_bucket(
                    list(bucket.names),
                    {
                        name: [
                            self._grad_views[rank][name]
                            for rank in self.live_ranks
                        ]
                        for name in bucket.names
                    },
                )
            verdict = ("skip", step)
        for rank in self.live_ranks:
            self._conns[rank].send(verdict)
        done = self._timed_wait(
            lambda: self._barrier.gather(
                self._conns, self._procs, set(self.live_ranks)
            ),
            COORDINATOR,
        )
        unexpected = []
        for rank in sorted(done.messages):
            msg = done.messages[rank]
            if msg[0] == "done":
                self._merge_telemetry(msg[1], 0.0)
            else:  # pragma: no cover - defensive
                unexpected.append(rank)
        # the ranks that did reach "done" applied the update: commit
        # the shadows to match before any failure handling, exactly as
        # the threaded engine treats an end-barrier timeout
        self._commit_shadows(payloads, aggregated)
        bad = sorted(
            set(done.dead) | set(done.missing) | set(unexpected)
        )
        if bad:
            rank = bad[0]
            self._needs_respawn.update(done.dead)
            self._undrained |= set(done.missing)
            for dead_rank in done.dead:
                self._note_kill_fired(dead_rank, step)
            kind = "crash" if rank in done.dead else "timeout"
            raise AttemptFailure(
                WorkerFailure(
                    rank,
                    step,
                    kind,
                    f"rank {rank} lost after the update was applied",
                ),
                retryable=False,
                committed=True,
            )
        return self._collect_metrics()

    def _classify_grads(
        self, step: int, outcome: _Rendezvous
    ) -> dict[int, tuple]:
        """Sort the compute-phase arrivals; raise unless all delivered."""
        payloads: dict[int, tuple] = {}
        fails: dict[int, tuple] = {}
        errors: dict[int, tuple] = {}
        for rank in sorted(outcome.messages):
            msg = outcome.messages[rank]
            kind = msg[0]
            if kind == "grads":
                payloads[rank] = msg
                self._merge_telemetry(msg[5], msg[6])
            elif kind == "fail":
                fails[rank] = msg
                self._merge_telemetry(msg[3], msg[4])
            else:
                errors[rank] = msg
        if errors:
            # a real compute error (e.g. divergence) propagates with
            # its original type, like the other engines; release every
            # parked responder first so the pipes end the step clean
            self._abort_step(step, list(payloads), outcome.missing)
            self._drain_stragglers()
            raise errors[min(errors)][1]
        failure: WorkerFailure | None = None
        for rank in sorted(fails):
            msg = fails[rank]
            failure = WorkerFailure(rank, step, msg[1], msg[2])
            break
        for rank in outcome.dead:
            self._note_kill_fired(rank, step)
            self._needs_respawn.add(rank)
            if failure is None:
                failure = WorkerFailure(
                    rank, step, "crash", "worker process died"
                )
        if failure is None and outcome.missing:
            failure = WorkerFailure(
                rank=min(outcome.missing),
                step=step,
                kind="timeout",
                message=(
                    f"ranks {sorted(outcome.missing)} missed the "
                    "step deadline"
                ),
            )
        if failure is None:
            return payloads
        self._abort_step(step, list(payloads), outcome.missing)
        raise AttemptFailure(failure, retryable=True)

    def _abort_step(
        self, step: int, responders: list[int], silent
    ) -> None:
        """Release every surviving participant from an aborted step.

        Responders are parked waiting for a verdict; silent ranks will
        deliver one stale message first and then see the abort — both
        roll their RNG streams back worker-side.
        """
        for rank in list(responders) + list(silent):
            conn = self._conns.get(rank)
            if conn is None:
                continue
            try:
                conn.send(("abort", step))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        self._undrained |= set(silent)

    def _drain_stragglers(self) -> None:
        """Absorb the stale message each aborted silent rank still owes.

        Without this, a late arrival from the aborted attempt would be
        mistaken for the retry's — every pipe must be empty before the
        next attempt is dispatched.
        """
        deadline = time.monotonic() + self.config.barrier_timeout
        for rank in sorted(self._undrained):
            self._undrained.discard(rank)
            conn = self._conns.get(rank)
            proc = self._procs.get(rank)
            if conn is None or proc is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if conn.poll(remaining):
                    msg = conn.recv()
                    if msg[0] == "grads":
                        self._merge_telemetry(msg[5], msg[6])
                    elif msg[0] == "fail":
                        self._merge_telemetry(msg[3], msg[4])
                elif proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    self._needs_respawn.add(rank)
                else:
                    self._needs_respawn.add(rank)
            except (EOFError, OSError):  # pragma: no cover
                self._needs_respawn.add(rank)

    def _recover_attempt(self, attempt: AttemptFailure) -> None:
        self._drain_stragglers()
        for rank in self.live_ranks:
            self.workers[rank].error = None
        if not attempt.committed:
            # respawn dead live ranks from their shadows (pre-step
            # parameters, momentum, and RNG streams) so the retry
            # replays the exact step; a committed failure's lost rank
            # is headed for eviction instead
            for rank in sorted(self._needs_respawn):
                self._needs_respawn.discard(rank)
                self._reap(rank, timeout=1.0)
                if rank in self.live_ranks:
                    self._spawn_rank(rank)

    def _latch_failure(self, failure: WorkerFailure) -> None:
        self._failure = failure

    def _on_evict(self, rank: int) -> None:
        self._needs_respawn.discard(rank)
        self._undrained.discard(rank)
        proc = self._procs.get(rank)
        if proc is None:
            return
        if proc.is_alive():
            try:
                self._conns[rank].send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        self._reap(rank, timeout=2.0)

    # -- shadow/telemetry bookkeeping -------------------------------------
    def _commit_shadows(
        self,
        payloads: dict[int, tuple],
        aggregated: dict[str, np.ndarray] | None,
    ) -> None:
        """Advance the local mirrors to the workers' post-step state.

        ``aggregated`` is ``None`` when the step left no shared mean to
        apply — an accumulating mid-round step (replicas do not move) or
        a local-SGD step (the shadows were advanced before the verdicts
        went out).
        """
        for rank in self.live_ranks:
            msg = payloads[rank]
            shadow = self.workers[rank]
            shadow.loss = msg[1]
            shadow.accuracy = msg[2]
            shadow.samples = msg[3]
            for gen, state in zip(
                collect_module_rngs(shadow.model), msg[4]
            ):
                gen.bit_generator.state = state
            install_module_buffers(shadow.model, msg[7])
            if aggregated is not None:
                shadow.apply_updates(aggregated)

    def _note_kill_fired(self, rank: int, step: int) -> None:
        if (rank, step) in self._kill_points:
            self._kills_fired.add((rank, step))

    def _merge_telemetry(self, spans, stall: float) -> None:
        if not self.tracer.enabled:
            return
        for name, track, start_ns, duration_ns in spans:
            self.tracer.record(
                TraceEvent(
                    name=name,
                    track=track,
                    start_ns=start_ns,
                    duration_ns=duration_ns,
                )
            )
        if stall:
            sink = self.tracer.counter_sink
            if sink is not None:
                sink.add_straggler_stall(stall)
