"""Shared-memory gradient arenas for the process engine.

One :class:`GradientArena` is a single ``multiprocessing.shared_memory``
block holding ``world_size + 1`` regions: one per-rank gradient slot
plus one slot for the aggregated means.  Every region lays its
parameters out in the engine's bucket-plan order, so the coordinator's
bucket walk reads each rank's contribution as one contiguous sweep.
Both sides of the exchange map the block as zero-copy ``numpy`` views —
a worker's backward writes land in its slot, the coordinator's
decode-accumulate reads them without a pickle round-trip, and the
aggregated mean travels back through the mean slot the same way.

Lifetime: the coordinator creates and eventually unlinks the block;
workers attach by name and only close their mapping.  Attaching
processes deregister the segment from their ``resource_tracker`` so the
tracker does not unlink (or warn about) a segment the coordinator still
owns — the documented workaround for the tracker's one-owner
assumption on Python <= 3.12.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .buckets import GradientBucket

__all__ = ["GradientArena", "arena_slots"]

#: region stride alignment, so no rank's slot shares a cache line
_ALIGN = 64


def arena_slots(
    buckets: list[GradientBucket],
    shapes: dict[str, tuple[int, ...]],
) -> list[tuple[str, tuple[int, ...]]]:
    """Per-parameter ``(name, shape)`` layout in bucket-plan order."""
    return [
        (name, tuple(shapes[name]))
        for bucket in buckets
        for name in bucket.names
    ]


class GradientArena:
    """A ``world_size + 1``-region float32 shared-memory block.

    Regions ``0..world_size-1`` are the per-rank gradient slots;
    region ``world_size`` holds the aggregated means.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: list[tuple[str, tuple[int, ...]]],
        world_size: int,
        owner: bool,
    ):
        self._shm = shm
        self.slots = slots
        self.world_size = world_size
        self._owner = owner
        self._closed = False
        offsets: dict[str, int] = {}
        cursor = 0
        for name, shape in slots:
            offsets[name] = cursor
            cursor += int(np.prod(shape, dtype=np.int64)) * 4
        self._offsets = offsets
        self.region_nbytes = -(-cursor // _ALIGN) * _ALIGN

    @property
    def name(self) -> str:
        """OS-level segment name workers attach by."""
        return self._shm.name

    @property
    def total_nbytes(self) -> int:
        return self.region_nbytes * (self.world_size + 1)

    @classmethod
    def create(
        cls,
        slots: list[tuple[str, tuple[int, ...]]],
        world_size: int,
    ) -> "GradientArena":
        """Allocate a zero-filled arena (coordinator side)."""
        probe = cls(_NullShm(), slots, world_size, owner=False)
        shm = shared_memory.SharedMemory(
            create=True, size=max(probe.total_nbytes, 1)
        )
        arena = cls(shm, slots, world_size, owner=True)
        np.frombuffer(shm.buf, dtype=np.uint8)[:] = 0
        return arena

    @classmethod
    def attach(
        cls,
        name: str,
        slots: list[tuple[str, tuple[int, ...]]],
        world_size: int,
    ) -> "GradientArena":  # pragma: no cover - runs in worker processes
        """Map an existing arena by name (worker side).

        Registration with the (shared) resource tracker is suppressed
        for the attach: the tracker keys segments by name, so a
        borrower registering and later unregistering would erase the
        coordinator's sole entry and make the eventual unlink whine.
        """
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        return cls(shm, slots, world_size, owner=False)

    def _region_views(self, region: int) -> dict[str, np.ndarray]:
        base = region * self.region_nbytes
        views: dict[str, np.ndarray] = {}
        for name, shape in self.slots:
            count = int(np.prod(shape, dtype=np.int64))
            views[name] = np.frombuffer(
                self._shm.buf,
                dtype=np.float32,
                count=count,
                offset=base + self._offsets[name],
            ).reshape(shape)
        return views

    def rank_views(self, rank: int) -> dict[str, np.ndarray]:
        """Zero-copy per-parameter views of one rank's gradient slot."""
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank must be in [0, {self.world_size}), got {rank}"
            )
        return self._region_views(rank)

    def mean_views(self) -> dict[str, np.ndarray]:
        """Zero-copy per-parameter views of the aggregated-mean slot."""
        return self._region_views(self.world_size)

    def close(self) -> None:
        """Drop this process's mapping (owner also unlinks the block)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC best effort
        try:
            self.close()
        except Exception:
            pass


class _NullShm:
    """Size-probe stand-in so layout math can run before allocation."""

    buf = b""
    name = ""

    def close(self) -> None:
        pass
