"""Deterministic straggler and crash injection for the runtime engines.

Synchronous training's Achilles heel is that one slow or dead rank
stalls the whole step.  The fault plan lets experiments inject exactly
that, deterministically: a fixed per-step delay on chosen ranks
(straggler), a hard crash of one rank at one global step, or
fire-once kill points — under the process engine a kill point is a
real ``SIGKILL`` of the worker process; the in-process engines degrade
it to an :class:`InjectedCrash` so one grid cell means the same thing
on every engine.  The engines detect all of these through
barrier/bucket timeouts or process sentinels and surface a structured
:class:`WorkerFailure` instead of hanging.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "FaultPlan",
    "InjectedCrash",
    "WorkerFailure",
    "WorkerFailureError",
]


class InjectedCrash(RuntimeError):
    """Raised inside a rank worker when the fault plan kills it."""


@dataclass(frozen=True)
class WorkerFailure:
    """Structured record of one rank failing a synchronous step.

    Attributes:
        rank: the rank the engine blames (for a pure timeout with
            several missing ranks, the lowest missing one).
        step: global step index at which the failure was detected.
        kind: "crash" (the rank died), "timeout" (the rank missed the
            barrier deadline), or "error" (the rank raised).
        message: human-readable diagnosis.
    """

    rank: int
    step: int
    kind: str
    message: str

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "step": self.step,
            "kind": self.kind,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "WorkerFailure":
        return cls(**record)


class WorkerFailureError(RuntimeError):
    """A synchronous step could not complete; carries the diagnosis."""

    def __init__(self, failure: WorkerFailure):
        self.failure = failure
        super().__init__(
            f"rank {failure.rank} {failure.kind} at step {failure.step}: "
            f"{failure.message}"
        )


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule shared by both execution engines.

    Attributes:
        straggler_ranks: ranks delayed by ``straggler_delay`` seconds
            at the start of every step's compute phase.
        straggler_delay: injected delay in seconds (0 disables).
        crash_rank / crash_step: the given rank raises
            :class:`InjectedCrash` at the given global step; ``None``
            disables crash injection.
        crash_transient: a transient crash fires only on the *first*
            execution of its (rank, step) — a retried attempt of the
            same step succeeds, modelling a recoverable glitch.  A
            persistent crash (the default) re-fires on every attempt,
            so only eviction or abort resolves it.
        kill_points: fire-once ``(rank, step)`` worker kills.  The
            in-process engines degrade each point to a transient
            :class:`InjectedCrash` via :meth:`inject`; the process
            engine handles kills itself (a real ``SIGKILL``) and hands
            its workers a plan with the points stripped.
    """

    straggler_ranks: tuple[int, ...] = ()
    straggler_delay: float = 0.0
    crash_rank: int | None = None
    crash_step: int | None = None
    crash_transient: bool = False
    kill_points: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        # frozen dataclass: the fired-set is bookkeeping, not identity
        object.__setattr__(self, "_fired", set())

    @classmethod
    def from_config(cls, config) -> "FaultPlan":
        """Extract the fault schedule from a ``TrainingConfig``."""
        return cls(
            straggler_ranks=tuple(config.straggler_ranks),
            straggler_delay=config.straggler_delay,
            crash_rank=config.crash_rank,
            crash_step=config.crash_step,
            crash_transient=getattr(config, "crash_transient", False),
            kill_points=tuple(
                (int(rank), int(step))
                for rank, step in getattr(config, "kill_points", ())
            ),
        )

    @property
    def active(self) -> bool:
        return bool(
            (self.straggler_ranks and self.straggler_delay > 0.0)
            or self.crash_rank is not None
            or self.kill_points
        )

    def delay_for(self, rank: int, step: int) -> float:
        """Seconds of injected straggler delay for this rank and step."""
        del step  # stragglers are persistent, not step-targeted
        if rank in self.straggler_ranks:
            return self.straggler_delay
        return 0.0

    def should_crash(self, rank: int, step: int) -> bool:
        if (
            self.crash_rank is None
            or rank != self.crash_rank
            or (self.crash_step is not None and step != self.crash_step)
        ):
            return False
        if self.crash_transient:
            if (rank, step) in self._fired:
                return False
            self._fired.add((rank, step))
        return True

    def should_kill(self, rank: int, step: int) -> bool:
        """Whether this rank's kill point fires now (at most once)."""
        if (rank, step) not in self.kill_points:
            return False
        if ("kill", rank, step) in self._fired:
            return False
        self._fired.add(("kill", rank, step))
        return True

    def inject(self, rank: int, step: int, counters=None) -> None:
        """Apply the plan at the top of one rank's compute phase.

        When a telemetry ``counters`` sink is provided, injected
        straggler delay is accounted as stall time (the engines pass
        their tracer's sink so traced runs attribute the stall).
        """
        delay = self.delay_for(rank, step)
        if delay > 0.0:
            time.sleep(delay)
            if counters is not None:
                counters.add_straggler_stall(delay)
        if self.should_kill(rank, step):
            # in-process degradation of a kill point: no real process
            # to kill, so it surfaces as a one-shot crash
            raise InjectedCrash(
                f"injected kill of rank {rank} at step {step}"
            )
        if self.should_crash(rank, step):
            raise InjectedCrash(
                f"injected crash of rank {rank} at step {step}"
            )
