"""Runtime: concurrent multi-worker execution of synchronous SGD.

The runtime turns the paper's Algorithm 1 from a sequential rank loop
into an actual concurrent system: one worker per rank (thread-based —
numpy/BLAS releases the GIL — or one OS process per rank with a
shared-memory gradient exchange), a reusable step barrier with timeout
detection, DDP-style gradient bucketing that overlaps communication
with backward, and deterministic straggler/crash/kill injection.  The
threaded and process engines are bit-identical to the sequential one
by construction; see :mod:`repro.runtime.engine`.
"""

from .barrier import BarrierTimeout, StepBarrier
from .buckets import BucketReadiness, GradientBucket, build_buckets
from .engine import (
    ENGINE_NAMES,
    ExecutionEngine,
    SequentialEngine,
    ThreadedEngine,
    make_engine,
)
from .process_engine import ProcessEngine, ProcessStepBarrier
from .shm import GradientArena, arena_slots
from .faults import (
    FaultPlan,
    InjectedCrash,
    WorkerFailure,
    WorkerFailureError,
)
from .resilience import (
    AttemptFailure,
    RetryPolicy,
    RetryState,
    TopologyChange,
)
from .worker import (
    RankWorker,
    clone_module,
    collect_module_rngs,
    reseed_module_rngs,
)

__all__ = [
    "BarrierTimeout",
    "StepBarrier",
    "BucketReadiness",
    "GradientBucket",
    "build_buckets",
    "ENGINE_NAMES",
    "ExecutionEngine",
    "SequentialEngine",
    "ThreadedEngine",
    "ProcessEngine",
    "ProcessStepBarrier",
    "GradientArena",
    "arena_slots",
    "make_engine",
    "FaultPlan",
    "InjectedCrash",
    "WorkerFailure",
    "WorkerFailureError",
    "AttemptFailure",
    "RetryPolicy",
    "RetryState",
    "TopologyChange",
    "RankWorker",
    "clone_module",
    "collect_module_rngs",
    "reseed_module_rngs",
]
