"""Runtime: concurrent multi-worker execution of synchronous SGD.

The runtime turns the paper's Algorithm 1 from a sequential rank loop
into an actual concurrent system: one worker per rank (thread-based —
numpy/BLAS releases the GIL), a reusable step barrier with timeout
detection, DDP-style gradient bucketing that overlaps communication
with backward, and deterministic straggler/crash injection.  The
threaded engine is bit-identical to the sequential one by
construction; see :mod:`repro.runtime.engine`.
"""

from .barrier import BarrierTimeout, StepBarrier
from .buckets import BucketReadiness, GradientBucket, build_buckets
from .engine import (
    ENGINE_NAMES,
    ExecutionEngine,
    SequentialEngine,
    ThreadedEngine,
    make_engine,
)
from .faults import (
    FaultPlan,
    InjectedCrash,
    WorkerFailure,
    WorkerFailureError,
)
from .resilience import (
    AttemptFailure,
    RetryPolicy,
    RetryState,
    TopologyChange,
)
from .worker import (
    RankWorker,
    clone_module,
    collect_module_rngs,
    reseed_module_rngs,
)

__all__ = [
    "BarrierTimeout",
    "StepBarrier",
    "BucketReadiness",
    "GradientBucket",
    "build_buckets",
    "ENGINE_NAMES",
    "ExecutionEngine",
    "SequentialEngine",
    "ThreadedEngine",
    "make_engine",
    "FaultPlan",
    "InjectedCrash",
    "WorkerFailure",
    "WorkerFailureError",
    "AttemptFailure",
    "RetryPolicy",
    "RetryState",
    "TopologyChange",
    "RankWorker",
    "clone_module",
    "collect_module_rngs",
    "reseed_module_rngs",
]
