"""Gradient bucketing for overlapped communication (DDP-style).

Backward passes produce gradients last-layer-first, so the exchange
for the model's tail can start while the head is still computing.
Buckets coalesce small parameters (ResNet110's 446 tiny matrices are
the paper's worst case for per-matrix exchange overhead) into
fixed-size groups ordered by backward completion, and
:class:`BucketReadiness` is the thread-safe tracker the threaded
engine blocks on: a bucket becomes ready when *every* rank has
produced *every* gradient in it.

Both engines walk buckets in the same fixed order, which pins the
exchange-call sequence (and therefore the shared quantization RNG
stream) — the keystone of the sequential/threaded bit-identity
guarantee.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..nn.module import Parameter
from .barrier import BarrierTimeout

__all__ = ["GradientBucket", "build_buckets", "BucketReadiness"]

#: default coalescing cap: 64 KiB of float32 gradients per bucket
DEFAULT_BUCKET_BYTES = 1 << 16


@dataclass(frozen=True)
class GradientBucket:
    """One coalesced group of parameters exchanged together.

    Attributes:
        index: position in exchange order (0 = first bucket launched,
            i.e. the *last* layers of the model).
        names: parameter names in deterministic exchange order.
        nbytes: total float32 payload of the bucket.
    """

    index: int
    names: tuple[str, ...]
    nbytes: int


def build_buckets(
    parameters: Sequence[Parameter],
    cap_bytes: int = DEFAULT_BUCKET_BYTES,
) -> list[GradientBucket]:
    """Greedily coalesce parameters into buckets of ``cap_bytes``.

    Parameters are taken in *reverse* model order — the order backward
    finishes them — so bucket 0 is ready first.  A parameter larger
    than the cap gets a bucket of its own.
    """
    if cap_bytes < 1:
        raise ValueError(f"cap_bytes must be >= 1, got {cap_bytes}")
    buckets: list[GradientBucket] = []
    pending: list[str] = []
    pending_bytes = 0

    def flush() -> None:
        nonlocal pending, pending_bytes
        if pending:
            buckets.append(
                GradientBucket(len(buckets), tuple(pending), pending_bytes)
            )
            pending = []
            pending_bytes = 0

    for param in reversed(list(parameters)):
        nbytes = param.size * 4
        if pending and pending_bytes + nbytes > cap_bytes:
            flush()
        pending.append(param.name)
        pending_bytes += nbytes
        if pending_bytes >= cap_bytes:
            flush()
    flush()
    return buckets


class BucketReadiness:
    """Thread-safe per-bucket readiness tracker for one step.

    Rank workers call :meth:`mark_ready` as each layer's backward
    completes; the communication thread calls :meth:`wait` on buckets
    in order.  A rank that dies calls :meth:`mark_dead`, which wakes
    all waiters immediately instead of letting them run out the clock.
    """

    def __init__(
        self,
        buckets: Sequence[GradientBucket],
        world_size: int,
        live_ranks: Iterable[int] | None = None,
    ):
        """Track readiness for ``world_size`` ranks (or a live subset).

        ``live_ranks`` restricts the rendezvous to the given rank ids
        (a degraded collective after evictions); ranks outside it owe
        nothing and are never waited for.
        """
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        live = (
            set(range(world_size)) if live_ranks is None else set(live_ranks)
        )
        self._bucket_of: dict[str, int] = {}
        for bucket in buckets:
            for name in bucket.names:
                if name in self._bucket_of:
                    raise ValueError(f"parameter {name!r} in two buckets")
                self._bucket_of[name] = bucket.index
        # per bucket, per rank: gradients still owed
        self._owed: list[list[int]] = [
            [
                len(bucket.names) if rank in live else 0
                for rank in range(world_size)
            ]
            for bucket in buckets
        ]
        self._seen: set[tuple[int, str]] = set()
        self._dead: set[int] = set()
        self._cond = threading.Condition()

    def mark_ready(self, rank: int, names: Iterable[str]) -> None:
        """Record that ``rank`` finished the gradients in ``names``."""
        with self._cond:
            completed = False
            for name in names:
                key = (rank, name)
                if key in self._seen or name not in self._bucket_of:
                    continue
                self._seen.add(key)
                owed = self._owed[self._bucket_of[name]]
                owed[rank] -= 1
                if owed[rank] == 0:
                    completed = True
            if completed:
                self._cond.notify_all()

    def mark_dead(self, rank: int) -> None:
        """Record that ``rank`` will never deliver; wake all waiters."""
        with self._cond:
            self._dead.add(rank)
            self._cond.notify_all()

    def _pending_ranks(self, bucket_index: int) -> tuple[int, ...]:
        return tuple(
            rank
            for rank, owed in enumerate(self._owed[bucket_index])
            if owed > 0
        )

    def wait(
        self, bucket_index: int, timeout: float | None = None
    ) -> frozenset[int]:
        """Block until the bucket is ready or a contributor died.

        Returns:
            The (possibly empty) frozen set of dead ranks.  An empty
            set means the bucket is fully ready.

        Raises:
            BarrierTimeout: the deadline passed with ranks still
                owing gradients; ``missing`` names those ranks.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._dead:
                    return frozenset(self._dead)
                if not self._pending_ranks(bucket_index):
                    return frozenset()
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise BarrierTimeout(
                        bucket_index, self._pending_ranks(bucket_index)
                    )
                self._cond.wait(remaining)
