"""Per-rank worker: model replica, RNG stream, compute, and update.

Each rank owns a full model replica (as every GPU does in real
data-parallel training), a deterministic per-rank RNG stream for any
stochastic layers (dropout), and its own optimizer instance.  Because
every rank applies the *same* aggregated gradient to the *same*
starting parameters, replicas remain bit-identical after every step —
the synchronous-SGD invariant, asserted by the runtime tests.

The worker is engine-agnostic: the sequential engine calls
:meth:`RankWorker.compute` inline in rank order, the threaded engine
calls it from a dedicated thread.  Bit-identity between the two falls
out of both engines running this exact code per rank.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable

import numpy as np

from ..nn.loss import accuracy as _accuracy
from ..nn.module import Module, Parameter, Sequential
from ..optim import Sgd

__all__ = [
    "RankWorker",
    "clone_module",
    "collect_module_buffers",
    "collect_module_rngs",
    "install_module_buffers",
    "read_module_buffers",
    "reseed_module_rngs",
]

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]
ReadyHook = Callable[[Iterable[str]], None]


def clone_module(module: Module) -> Module:
    """Deep-copy a model into an independent replica."""
    return copy.deepcopy(module)


def reseed_module_rngs(module: Module, seed: int, rank: int) -> int:
    """Give every RNG inside ``module`` a deterministic per-rank stream.

    Walks the module tree (attributes, nested modules, lists/tuples)
    and replaces each ``np.random.Generator`` attribute with a fresh
    generator seeded from ``(seed, rank, position)``.  Ranks therefore
    draw *different* dropout masks (as real replicas do) while any two
    engines running the same rank draw *identical* ones.

    Returns the number of generators replaced.
    """
    counter = 0

    def visit(node: object) -> None:
        nonlocal counter
        if isinstance(node, Module):
            for attr, value in vars(node).items():
                if isinstance(value, np.random.Generator):
                    setattr(
                        node,
                        attr,
                        np.random.default_rng(
                            np.random.SeedSequence([seed, rank, counter])
                        ),
                    )
                    counter += 1
                else:
                    visit(value)
        elif isinstance(node, (list, tuple)):
            for item in node:
                visit(item)

    visit(module)
    return counter


def collect_module_rngs(module: Module) -> list[np.random.Generator]:
    """Every RNG inside ``module``, in the reseeding walk's order.

    The traversal mirrors :func:`reseed_module_rngs` exactly, so the
    list positions line up with that function's ``(seed, rank,
    position)`` streams — which is what lets a checkpoint capture and
    restore per-rank RNG state positionally.
    """
    found: list[np.random.Generator] = []

    def visit(node: object) -> None:
        if isinstance(node, Module):
            for value in vars(node).values():
                if isinstance(value, np.random.Generator):
                    found.append(value)
                else:
                    visit(value)
        elif isinstance(node, (list, tuple)):
            for item in node:
                visit(item)

    visit(module)
    return found


def collect_module_buffers(module: Module) -> list[tuple[Module, str]]:
    """Every non-parameter array buffer inside ``module``, in walk order.

    Buffers are the persistent arrays a layer keeps *outside* its
    :class:`Parameter` objects — batchnorm's ``running_mean`` /
    ``running_var`` — found as public ``numpy`` array attributes on a
    module (underscore-prefixed attributes are transient per-step
    caches and excluded).  The traversal mirrors
    :func:`collect_module_rngs`, so two replicas of the same
    architecture enumerate their buffers in the same positional order —
    which is what lets the process engine ship a worker's buffer values
    over a pipe and install them into the coordinator's shadow replica
    by position.
    """
    found: list[tuple[Module, str]] = []

    def visit(node: object) -> None:
        if isinstance(node, Module):
            for name, value in vars(node).items():
                if isinstance(value, np.ndarray):
                    if not name.startswith("_"):
                        found.append((node, name))
                else:
                    visit(value)
        elif isinstance(node, (list, tuple)):
            for item in node:
                visit(item)

    visit(module)
    return found


def read_module_buffers(module: Module) -> list[np.ndarray]:
    """Copies of the module's buffer values, in walk order."""
    return [
        np.array(getattr(owner, name), copy=True)
        for owner, name in collect_module_buffers(module)
    ]


def install_module_buffers(
    module: Module, values: list[np.ndarray]
) -> None:
    """Set the module's buffers to ``values`` (positional, walk order)."""
    buffers = collect_module_buffers(module)
    if len(buffers) != len(values):
        raise ValueError(
            f"model has {len(buffers)} buffers, got {len(values)} values"
        )
    for (owner, name), value in zip(buffers, values):
        setattr(owner, name, np.array(value, copy=True))


class RankWorker:
    """State and per-step compute of one simulated rank.

    Attributes:
        rank: 0-based rank id.
        model: this rank's model replica.
        parameters: the replica's parameters, in stable model order.
        optimizer: this rank's SGD instance (momentum state lives per
            replica; identical inputs keep replicas bit-identical).
        loss / accuracy / samples: results of the last compute phase
            (``None`` / 0 when the rank received an empty shard).
    """

    def __init__(
        self,
        rank: int,
        model: Module,
        loss_fn: LossFn,
        lr: float,
        momentum: float,
        weight_decay: float,
        label: str,
    ):
        self.rank = rank
        self.model = model
        self.loss_fn = loss_fn
        self.label = label
        self.parameters: list[Parameter] = model.parameters()
        self.param_by_name = {p.name: p for p in self.parameters}
        self.optimizer = Sgd(
            lr=lr, momentum=momentum, weight_decay=weight_decay
        )
        self.loss: float | None = None
        self.accuracy: float | None = None
        self.samples: int = 0
        self.error: BaseException | None = None

    # -- compute phase ----------------------------------------------------
    def compute(
        self,
        x: np.ndarray,
        y: np.ndarray,
        on_ready: ReadyHook | None = None,
        grad_scale: float | None = None,
    ) -> None:
        """Forward/backward on this rank's shard of the global batch.

        ``on_ready`` is invoked with parameter names as their
        gradients become final (per top-level layer, in backward
        order), enabling bucketed exchange to overlap with the rest of
        the backward pass.  Gradients are left in each parameter's
        ``grad`` buffer; an empty shard yields zero gradients.

        ``grad_scale`` multiplies every gradient before it is
        announced — a degraded collective reweights uneven shards this
        way so the aggregated mean stays the exact global-batch mean.
        """
        self.loss = None
        self.accuracy = None
        self.samples = int(x.shape[0])
        self.model.zero_grad()
        if self.samples == 0:
            if on_ready is not None:
                on_ready([p.name for p in self.parameters])
            return
        logits = self.model.forward(x, training=True)
        loss, dlogits = self.loss_fn(logits, y)
        if not np.isfinite(loss):
            raise FloatingPointError(
                f"training diverged: non-finite loss under "
                f"{self.label} (lower the learning rate or "
                "use a less aggressive quantizer)"
            )
        self.loss = float(loss)
        self.accuracy = float(_accuracy(logits, y))
        self._backward(dlogits, on_ready, grad_scale)

    def _backward(
        self,
        dlogits: np.ndarray,
        on_ready: ReadyHook | None,
        grad_scale: float | None = None,
    ) -> None:
        """Backward pass, announcing gradient readiness layer by layer.

        For :class:`Sequential` models each top-level layer (including
        composite blocks) is announced as soon as its backward
        completes; other model classes are announced wholesale.  Any
        ``grad_scale`` is applied to a layer's gradients *before* the
        layer is announced, so overlapped exchanges always consume
        scaled gradients.
        """
        if on_ready is None and grad_scale is None:
            self.model.backward(dlogits)
            return
        if isinstance(self.model, Sequential):
            dout = dlogits
            for layer in reversed(self.model.layers):
                dout = layer.backward(dout)
                params = layer.parameters()
                if grad_scale is not None:
                    for param in params:
                        param.grad *= grad_scale
                if params and on_ready is not None:
                    on_ready([p.name for p in params])
        else:
            self.model.backward(dlogits)
            if grad_scale is not None:
                for param in self.parameters:
                    param.grad *= grad_scale
            if on_ready is not None:
                on_ready([p.name for p in self.parameters])

    # -- update phase -----------------------------------------------------
    def apply_updates(self, aggregated: dict[str, np.ndarray]) -> None:
        """Apply the aggregated gradients to this rank's replica."""
        for param in self.parameters:
            self.optimizer.apply(param, aggregated[param.name])

    def apply_local_updates(self) -> None:
        """Step this rank's replica on its own gradients (local SGD)."""
        for param in self.parameters:
            self.optimizer.apply(param, param.grad)

    def gradient(self, name: str) -> np.ndarray:
        """This rank's gradient buffer for one parameter."""
        return self.param_by_name[name].grad
