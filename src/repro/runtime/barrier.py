"""A reusable step barrier with timeout detection.

Synchronous data-parallel SGD is only as fast as its slowest rank:
every step ends with a rendezvous where all ranks (and the
coordinator) must arrive before anyone proceeds.  :class:`StepBarrier`
is that rendezvous — reusable across steps (generation counter), and
unlike :class:`threading.Barrier` it reports *which* parties were
missing when a timeout fires, which is what turns a silent hang into a
structured straggler/crash diagnosis.
"""

from __future__ import annotations

import threading
import time

__all__ = ["BarrierTimeout", "StepBarrier"]


class BarrierTimeout(RuntimeError):
    """A barrier rendezvous did not complete before the deadline.

    Attributes:
        generation: the step generation that failed to complete.
        missing: party ids that had not arrived when time ran out.
    """

    def __init__(self, generation: int, missing: tuple[int, ...]):
        self.generation = generation
        self.missing = missing
        parties = ", ".join(str(p) for p in missing) or "<none>"
        super().__init__(
            f"barrier generation {generation} timed out waiting for "
            f"parties [{parties}]"
        )


class StepBarrier:
    """Reusable rendezvous for ``parties`` identified participants.

    Every participant calls :meth:`wait` with its party id once per
    step; the call returns (with the completed generation number) only
    after all parties of the current generation have arrived.  If the
    deadline passes first, the barrier breaks: the timed-out waiter
    and every other waiter raise :class:`BarrierTimeout` naming the
    missing parties.
    """

    def __init__(self, parties: int, timeout: float | None = None):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.parties = parties
        self.timeout = timeout
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived: set[int] = set()
        self._expected: set[int] = set(range(parties))
        self._missing_at_break: tuple[int, ...] | None = None

    @property
    def broken(self) -> bool:
        return self._missing_at_break is not None

    def wait(self, party: int, timeout: float | None = None) -> int:
        """Arrive at the current generation; block until it completes.

        Args:
            party: identifier of this participant (0-based; the
                coordinator conventionally uses ``parties - 1``).
            timeout: per-call deadline override in seconds; ``None``
                uses the barrier's constructor timeout (``None`` there
                means wait forever).

        Returns:
            The generation number that completed.

        Raises:
            BarrierTimeout: the deadline passed, or another waiter
                broke the barrier while this one was blocked.
        """
        if not 0 <= party < self.parties:
            raise ValueError(
                f"party must be in [0, {self.parties}), got {party}"
            )
        timeout = self.timeout if timeout is None else timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if party not in self._expected:
                # an evicted participant straggling in: it no longer
                # holds up the rendezvous, and must not block on it
                raise BarrierTimeout(self._generation, (party,))
            if self._missing_at_break is not None:
                raise BarrierTimeout(self._generation, self._missing_at_break)
            generation = self._generation
            self._arrived.add(party)
            if len(self._arrived) == len(self._expected):
                self._generation += 1
                self._arrived = set()
                self._cond.notify_all()
                return generation
            while (
                self._generation == generation
                and self._missing_at_break is None
            ):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    self._missing_at_break = tuple(
                        sorted(self._expected - self._arrived)
                    )
                    self._cond.notify_all()
                    raise BarrierTimeout(generation, self._missing_at_break)
                self._cond.wait(remaining)
            if self._missing_at_break is not None:
                raise BarrierTimeout(generation, self._missing_at_break)
            return generation

    def deregister(self, party: int) -> None:
        """Permanently remove ``party`` from the rendezvous (eviction).

        The current generation completes immediately if every remaining
        party has already arrived; future :meth:`wait` calls by the
        deregistered party raise :class:`BarrierTimeout` instead of
        blocking a rendezvous they can no longer be part of.
        """
        with self._cond:
            self._expected.discard(party)
            self._arrived.discard(party)
            if not self._expected:
                raise ValueError("cannot deregister the last barrier party")
            if (
                self._missing_at_break is None
                and len(self._arrived) == len(self._expected)
                and self._arrived
            ):
                self._generation += 1
                self._arrived = set()
            self._cond.notify_all()

    def reset(self) -> None:
        """Clear a broken barrier so it can be reused.

        Advances the generation so that any party still blocked inside
        :meth:`wait` on the broken generation releases immediately
        (returning as if the generation completed) instead of
        re-blocking on a rendezvous that will never finish — the
        engines' retry path resets the end-of-step barrier between
        attempts while worker threads may still be draining out of it.
        """
        with self._cond:
            self._missing_at_break = None
            self._generation += 1
            self._arrived = set()
            self._cond.notify_all()
