"""Elastic fault tolerance for the execution engines.

Synchronous data-parallel SGD stalls (or, before this module, aborted)
the moment one rank crashes or misses a barrier.  Real DDP stacks
layer three defenses on top of the synchronous step, and this module
provides the policy objects for all three:

* **retry with backoff** — a failed step is re-attempted from a clean
  snapshot of the collective state (quantization RNG, error-feedback
  residuals) with exponential backoff plus deterministic jitter, up to
  :attr:`RetryPolicy.max_retries` attempts per step;
* **graceful degradation** — a rank that exhausts its retries is
  evicted: the engine reshards the global batch across the survivors
  and reweights the gradient mean by live shard sizes, recording a
  :class:`TopologyChange` that surfaces in the run's ``History``;
* **checkpoint/resume** — handled by :mod:`repro.core.checkpoint`,
  which persists everything a bit-identical continuation needs.

Retries are only attempted for failures detected *before* any rank
applied the step's update (crashes during compute, missed bucket
rendezvous): those leave every replica at the pre-step state, so a
re-attempt from the restored snapshot is equivalent to the step never
having been tried.  A timeout at the *end-of-step* barrier means the
survivors already committed the update; such a step can only be
resolved by evicting the missing rank (the survivors' state is valid
and identical), never by a retry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .faults import WorkerFailure

__all__ = [
    "AttemptFailure",
    "RetryPolicy",
    "RetryState",
    "TopologyChange",
]


class AttemptFailure(Exception):
    """One attempt of one synchronous step failed.

    Internal control flow between an engine's step attempt and its
    recovery loop; never escapes ``train_step`` (the loop converts an
    unrecoverable one into a ``WorkerFailureError``).

    Attributes:
        failure: the structured diagnosis of the attempt.
        retryable: whether re-running the step from the pre-step
            snapshot is sound (no rank applied an update).
        committed: whether the surviving ranks already applied the
            step's update (end-of-step barrier timeout); the step
            counts as done for them, so recovery must not rewind.
    """

    def __init__(
        self,
        failure: WorkerFailure,
        retryable: bool,
        committed: bool = False,
    ):
        self.failure = failure
        self.retryable = retryable
        self.committed = committed
        super().__init__(str(failure))


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for re-attempting a failed step.

    Attributes:
        max_retries: re-attempts allowed per step before the failure
            escalates (to eviction when degradation is allowed,
            otherwise to run abort).  0 disables retries entirely —
            the engines then behave exactly as before this module.
        base_delay: backoff before the first retry, in seconds;
            doubles every subsequent retry of the same step.
        max_delay: backoff ceiling in seconds.
        jitter: fraction of the backoff added as deterministic jitter
            (drawn from a dedicated RNG stream seeded by ``seed``), so
            concurrent experiments decorrelate without losing
            reproducibility.
        seed: seed of the jitter stream.
    """

    max_retries: int = 0
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """Extract the retry schedule from a ``TrainingConfig``."""
        return cls(
            max_retries=config.max_retries,
            base_delay=config.retry_backoff,
            max_delay=config.retry_backoff_max,
            jitter=config.retry_jitter,
            seed=config.seed,
        )

    @property
    def enabled(self) -> bool:
        return self.max_retries > 0

    def make_state(self) -> "RetryState":
        """Fresh per-run backoff state (jitter stream at its origin)."""
        return RetryState(self)


class RetryState:
    """Per-run backoff bookkeeping: the deterministic jitter stream."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self._rng = np.random.default_rng(
            np.random.SeedSequence([policy.seed, 0x5E711E])
        )
        #: total retries issued over the run (mirrored into telemetry)
        self.total_retries = 0

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to back off before retry number ``attempt`` (0-based).

        ``base_delay * 2**attempt`` capped at ``max_delay``, stretched
        by up to ``jitter`` of itself.  The jitter draw advances the
        dedicated stream even when ``jitter`` is 0, so schedules with
        and without jitter stay aligned draw-for-draw.
        """
        delay = min(
            self.policy.max_delay,
            self.policy.base_delay * (2.0 ** attempt),
        )
        stretch = float(self._rng.random())
        return delay * (1.0 + self.policy.jitter * stretch)


@dataclass(frozen=True)
class TopologyChange:
    """One rank leaving the collective mid-run.

    Attributes:
        step: global step index at which the eviction took effect.
        rank: the evicted rank.
        kind: failure kind that forced the rank out: "crash" or
            "timeout" from the live engines' retry loop, "link" from
            the fabric simulator's partition-inducing link failures.
        survivors: live ranks after the eviction, ascending.
        retries: retry attempts spent on the failing step before the
            eviction.
    """

    step: int
    rank: int
    kind: str
    survivors: tuple[int, ...]
    retries: int = 0

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "rank": self.rank,
            "kind": self.kind,
            "survivors": list(self.survivors),
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TopologyChange":
        return cls(
            step=record["step"],
            rank=record["rank"],
            kind=record["kind"],
            survivors=tuple(record["survivors"]),
            retries=record.get("retries", 0),
        )
