"""Execution engines: how the K simulated ranks actually run.

Three engines share one interface and — by construction — one numeric
trajectory:

* :class:`SequentialEngine` runs rank workers one after another on the
  calling thread (the seed repository's behaviour, extracted).
* :class:`ThreadedEngine` runs one thread per rank.  numpy/BLAS
  releases the GIL, so on multi-core hosts the per-rank
  forward/backward passes genuinely parallelize; on any host the
  bucketed exchange overlaps with the tail of backward.
* :class:`~repro.runtime.process_engine.ProcessEngine` runs one OS
  process per rank with a shared-memory gradient exchange, lifting the
  GIL ceiling for Python-level compute as well (defined in its own
  module; registered here by name).

A paced interconnect (``TrainingConfig.link_gbps``) models each rank
shipping its encoded gradient contribution over its own link, bucket
by bucket, as soon as the bucket's last gradient lands — the
bandwidth term of a ring allreduce.  The sequential engine pays every
rank's wire time serially after that rank's compute; the threaded
engine's ranks transmit concurrently, hiding wire time behind the
other ranks' backward work exactly as the paper's DAG model predicts.
Wire time is wall-clock only (``time.sleep``) and never touches the
numerics, so pacing cannot break engine parity.

Bit-identity between the engines holds for every scheme × exchange
combination because (1) each rank's compute is the same code on the
same replica with the same per-rank RNG stream, (2) the exchange is
invoked bucket-by-bucket in one fixed order with one shared
quantization RNG, and (3) every rank applies the same aggregated
gradient.  The runtime test-suite asserts this across the full matrix.

Both engines additionally run every step through a shared recovery
loop (see :mod:`repro.runtime.resilience`): a failed attempt is
retried from a snapshot of the collective state with exponential
backoff, and a rank that exhausts its retries can be evicted — the
engine reshards the batch over the survivors and reweights the
gradient mean by live shard sizes.  With the resilience knobs at
their defaults (``max_retries=0``, ``allow_degraded=False``) the loop
collapses to the historical fail-fast behaviour, byte for byte.
"""

from __future__ import annotations

import abc
import copy
import queue
import threading
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..data.loader import split_among_ranks
from ..nn.module import Module
from ..telemetry.tracer import COORDINATOR
from ..units import gbps_to_bytes_per_second
from .barrier import BarrierTimeout, StepBarrier
from .buckets import BucketReadiness, GradientBucket, build_buckets
from .faults import (
    FaultPlan,
    InjectedCrash,
    WorkerFailure,
    WorkerFailureError,
)
from .resilience import AttemptFailure, RetryPolicy, TopologyChange
from .worker import (
    LossFn,
    RankWorker,
    clone_module,
    collect_module_rngs,
    reseed_module_rngs,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..core.config import TrainingConfig

__all__ = [
    "ENGINE_NAMES",
    "ExecutionEngine",
    "SequentialEngine",
    "ThreadedEngine",
    "make_engine",
]

ENGINE_NAMES = ("sequential", "threaded", "process")


class ExecutionEngine(abc.ABC):
    """Owns the rank workers and drives one synchronous step at a time."""

    name: str = "engine"

    def __init__(self, model: Module, config: TrainingConfig, loss_fn: LossFn):
        # deferred: core.algorithm imports the comm/quantization stack,
        # which must not load as a side effect of importing the runtime
        from ..core.algorithm import SynchronousStep

        self.config = config
        self.world_size = config.world_size
        self.workers: list[RankWorker] = []
        for rank in range(config.world_size):
            replica = model if rank == 0 else clone_module(model)
            reseed_module_rngs(replica, config.seed, rank)
            self.workers.append(
                RankWorker(
                    rank,
                    replica,
                    loss_fn,
                    lr=config.lr,
                    momentum=config.momentum,
                    weight_decay=config.weight_decay,
                    label=config.label,
                )
            )
        self.step_engine = SynchronousStep(
            config, self.workers[0].parameters
        )
        # telemetry handle resolved by SynchronousStep (NULL_TRACER
        # when config.tracer is None); spans/counters below are no-ops
        # on the null path
        self.tracer = self.step_engine.tracer
        self.buckets: list[GradientBucket] = build_buckets(
            self.workers[0].parameters, config.comm_bucket_bytes
        )
        self.fault_plan = FaultPlan.from_config(config)
        self._step_index = 0
        # bytes/second of each rank's simulated link (None = free wire;
        # a single rank exchanges nothing, so pacing is moot)
        self._link_bytes_per_s = (
            None
            if config.link_gbps is None or config.world_size < 2
            else gbps_to_bytes_per_second(config.link_gbps)
        )
        # one rank's encoded upload per bucket, from the scheme's own
        # wire format (passthrough and layer selectivity included)
        params = self.workers[0].param_by_name
        self.bucket_tx_nbytes: dict[int, int] = {
            bucket.index: sum(
                self.step_engine.payload_nbytes(
                    name, params[name].data.shape
                )
                for name in bucket.names
            )
            for bucket in self.buckets
        }
        #: bytes one rank puts on the wire per step
        self.per_rank_payload_nbytes = sum(self.bucket_tx_nbytes.values())
        self._bucket_of_name = {
            name: bucket.index
            for bucket in self.buckets
            for name in bucket.names
        }
        # resilience: live topology, retry schedule, and eviction log
        self.live_ranks: list[int] = list(range(config.world_size))
        self.topology_events: list[TopologyChange] = []
        self.retry_policy = RetryPolicy.from_config(config)
        self._retry_state = self.retry_policy.make_state()

    # -- shared helpers ---------------------------------------------------
    def set_lr(self, lr: float) -> None:
        """Set the learning rate on every rank's optimizer."""
        for worker in self.workers:
            worker.optimizer.lr = lr

    @property
    def optimizer(self):
        """Rank 0's optimizer (replicas hold identical state)."""
        return self.workers[0].optimizer

    @property
    def workspace(self):
        """The step engine's scratch arena (``None`` when disabled).

        Both engines drive every bucket exchange from the coordinator
        thread, so a single arena serves the whole run; its buffers are
        reused across steps, which is what makes the steady-state hot
        path allocation-free.
        """
        return self.step_engine.workspace

    @property
    def reference_worker(self) -> RankWorker:
        """A live worker whose replica equals every other live replica.

        Rank 0's worker until rank 0 is evicted; evaluation and
        checkpointing must go through this instead of indexing
        ``workers[0]`` directly.
        """
        return self.workers[self.live_ranks[0]]

    def _shard(
        self, x: np.ndarray, y: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Split the global batch across the live ranks, by rank id."""
        parts = split_among_ranks(x, y, len(self.live_ranks))
        return {rank: parts[i] for i, rank in enumerate(self.live_ranks)}

    def _grad_scales(
        self, shards: dict[int, tuple[np.ndarray, np.ndarray]]
    ) -> dict[int, float]:
        """Per-rank gradient reweighting for a degraded collective.

        The step engine divides the aggregated sum by the live world
        size, which is the exact global-batch mean only when shards are
        equal.  After an eviction the reshard may be uneven, so each
        rank's gradient is scaled by ``n_r * K_live / N`` before the
        exchange — the weighted sum over live ranks divided by
        ``K_live`` then equals ``sum(n_r * g_r) / N`` exactly.  Scales
        of exactly 1.0 are omitted (no multiply), so an even reshard
        stays bit-identical to a fresh run at the smaller world size.
        Full-topology runs return no scales at all, preserving the
        historical trajectory byte for byte.
        """
        if len(self.live_ranks) == self.world_size:
            return {}
        total = sum(shard_x.shape[0] for shard_x, _ in shards.values())
        if total == 0:
            return {}
        live = len(self.live_ranks)
        scales: dict[int, float] = {}
        for rank, (shard_x, _) in shards.items():
            scale = shard_x.shape[0] * live / total
            if scale != 1.0:
                scales[rank] = float(scale)
        return scales

    def _exchange_bucket(self, bucket: GradientBucket) -> dict[str, np.ndarray]:
        """Run the collective for one bucket; returns aggregated grads."""
        return self.step_engine.aggregate_bucket(
            list(bucket.names),
            {
                name: [
                    self.workers[rank].gradient(name)
                    for rank in self.live_ranks
                ]
                for name in bucket.names
            },
        )

    def _accumulate_bucket(self, bucket: GradientBucket) -> None:
        """Fold one bucket into the round sums (no exchange runs)."""
        self.step_engine.accumulate_bucket(
            list(bucket.names),
            {
                name: [
                    self.workers[rank].gradient(name)
                    for rank in self.live_ranks
                ]
                for name in bucket.names
            },
        )

    def _average_replicas(self) -> dict[str, np.ndarray]:
        """Average the diverged replicas at a local-SGD round flush.

        Walks the buckets in the same fixed order as a gradient
        exchange, so the quantization RNG stream stays engine-
        independent.
        """
        averaged: dict[str, np.ndarray] = {}
        for bucket in self.buckets:
            for name in bucket.names:
                averaged[name] = self.step_engine.average_parameter(
                    name,
                    [
                        self.workers[rank].param_by_name[name].data
                        for rank in self.live_ranks
                    ],
                )
        return averaged

    def _install_params(self, averaged: dict[str, np.ndarray]) -> None:
        """Overwrite every live replica with the averaged parameters."""
        for rank in self.live_ranks:
            for param in self.workers[rank].parameters:
                np.copyto(param.data, averaged[param.name])

    def _complete_round(self) -> None:
        """Account for and advance past one committed micro-step."""
        step_engine = self.step_engine
        if step_engine.frequency > 1 and not step_engine.sync_this_step:
            sink = self.tracer.counter_sink
            if sink is not None:
                sink.count_skipped_round(
                    len(self.live_ranks) * self.per_rank_payload_nbytes
                )
        step_engine.advance_round()

    def _pace_transmit(self, nbytes: int, rank: int = 0) -> None:
        """Occupy one rank's link for ``nbytes`` of encoded gradient."""
        if self._link_bytes_per_s is not None and nbytes > 0:
            with self.tracer.span("transfer", rank):
                time.sleep(nbytes / self._link_bytes_per_s)

    def _timed_wait(self, waiter, track: int):
        """Run one blocking rendezvous wait, traced as barrier time.

        The wall time a party spends blocked at a step barrier or
        bucket rendezvous is exactly the paper's synchronization cost;
        traced runs record it as a ``barrier`` span on ``track`` and
        fold it into the barrier-wait counter.  Untraced runs call the
        waiter directly.
        """
        counters = self.tracer.counter_sink
        if counters is None:
            return waiter()
        with self.tracer.span("barrier", track):
            start = time.perf_counter()
            try:
                return waiter()
            finally:
                counters.add_barrier_wait(time.perf_counter() - start)

    def _collect_metrics(self) -> tuple[float, float]:
        """Shard-size-weighted global loss and accuracy of the last step."""
        live = [self.workers[rank] for rank in self.live_ranks]
        total = sum(w.samples for w in live if w.loss is not None)
        if total == 0:
            return float("nan"), float("nan")
        loss = (
            sum(w.loss * w.samples for w in live if w.loss is not None)
            / total
        )
        acc = (
            sum(
                w.accuracy * w.samples
                for w in live
                if w.accuracy is not None
            )
            / total
        )
        return float(loss), float(acc)

    # -- step driving with recovery ---------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One global minibatch; returns (weighted loss, weighted acc)."""
        step = self._step_index
        self._step_index += 1
        return self._run_step_with_recovery(step, x, y)

    @property
    def _resilience_active(self) -> bool:
        return self.retry_policy.enabled or self.config.allow_degraded

    def _run_step_with_recovery(
        self, step: int, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        """Drive one step through retry / eviction recovery.

        With resilience off (the defaults) this is a single attempt
        whose :class:`AttemptFailure` converts straight into the
        historical ``WorkerFailureError`` — no snapshot is even taken,
        so the default path costs nothing.
        """
        attempts = 0
        while True:
            resilient = self._resilience_active
            # local SGD: capture the round base before the first
            # micro-step of a round moves any replica (idempotent on
            # retries — a rewound attempt re-captures identical values)
            self.step_engine.begin_round(self.reference_worker.parameters)
            snapshot = self._snapshot_step_state() if resilient else None
            try:
                metrics = self._attempt_step(step, x, y)
            except AttemptFailure as attempt:
                failure = attempt.failure
                if not resilient:
                    self._latch_failure(failure)
                    raise WorkerFailureError(failure) from attempt
                if attempt.committed:
                    # the survivors already applied this step's update:
                    # their state is valid and identical, so never
                    # rewind — either evict the missing rank and count
                    # the step as done, or abort the run
                    self._recover_attempt(attempt)
                    if self._can_evict(failure):
                        self._evict_rank(failure, attempts)
                        self._complete_round()
                        return self._collect_metrics()
                    self._latch_failure(failure)
                    raise WorkerFailureError(failure) from attempt
                # drain/cleanup first (threaded workers may still be
                # inside the aborted attempt), then rewind
                self._recover_attempt(attempt)
                self._restore_step_state(snapshot)
                if attempt.retryable and attempts < self.retry_policy.max_retries:
                    delay = self._retry_state.backoff_delay(attempts)
                    attempts += 1
                    self._retry_state.total_retries += 1
                    sink = self.tracer.counter_sink
                    if sink is not None:
                        sink.count_retry(failure.rank)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if self._can_evict(failure):
                    self._evict_rank(failure, attempts)
                    attempts = 0
                    continue
                self._latch_failure(failure)
                raise WorkerFailureError(failure) from attempt
            else:
                self._complete_round()
                return metrics

    @abc.abstractmethod
    def _attempt_step(
        self, step: int, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        """One attempt of one step; raises :class:`AttemptFailure`."""

    def _snapshot_step_state(self) -> dict:
        """Capture everything a failed attempt could have consumed.

        Beyond the collective's own state (shared quantization RNG,
        error-feedback residuals, exchange-side state — covered by
        ``SynchronousStep.snapshot``), a partially-run attempt also
        advances the per-rank *module* RNG streams: every rank that got
        as far as its forward pass drew dropout masks.  Which ranks got
        that far differs between the engines (the sequential loop stops
        at the crashing rank; threaded ranks run concurrently), so a
        retry that did not rewind these streams would break engine
        parity and bit-identity with the uninterrupted run.
        """
        return {
            "engine": self.step_engine.snapshot(),
            "module_rngs": {
                rank: [
                    copy.deepcopy(gen.bit_generator.state)
                    for gen in collect_module_rngs(self.workers[rank].model)
                ]
                for rank in self.live_ranks
            },
        }

    def _restore_step_state(self, snapshot: dict) -> None:
        """Rewind the collective and per-rank RNG streams to ``snapshot``.

        Only valid for uncommitted attempts — once any rank applied the
        step, its RNG draws are part of the committed trajectory.
        """
        self.step_engine.restore_snapshot(snapshot["engine"])
        for rank, states in snapshot["module_rngs"].items():
            if rank not in self.live_ranks:
                continue
            for gen, state in zip(
                collect_module_rngs(self.workers[rank].model), states
            ):
                gen.bit_generator.state = copy.deepcopy(state)

    def _recover_attempt(self, attempt: AttemptFailure) -> None:
        """Engine-specific cleanup between attempts (threads, barriers)."""

    def _latch_failure(self, failure: WorkerFailure) -> None:
        """Engine-specific terminal-failure bookkeeping."""

    def _on_evict(self, rank: int) -> None:
        """Engine-specific eviction cleanup (barriers, threads)."""

    def _can_evict(self, failure: WorkerFailure) -> bool:
        return (
            self.config.allow_degraded
            and failure.rank in self.live_ranks
            and len(self.live_ranks) - 1 >= self.config.min_world_size
        )

    def _shrink_world(self, rank: int) -> None:
        """Remove ``rank`` from the live topology and shrink the step."""
        if rank not in self.live_ranks:
            raise ValueError(f"rank {rank} is not live")
        keep = [
            index
            for index, live in enumerate(self.live_ranks)
            if live != rank
        ]
        self.live_ranks = [r for r in self.live_ranks if r != rank]
        self.step_engine = self.step_engine.shrink(
            keep, self.workers[0].parameters
        )
        worker = self.workers[rank]
        worker.error = None
        worker.loss = None
        worker.accuracy = None
        worker.samples = 0
        self._on_evict(rank)

    def _evict_rank(self, failure: WorkerFailure, retries: int) -> None:
        """Evict ``failure.rank`` and record the topology change."""
        self._shrink_world(failure.rank)
        self.topology_events.append(
            TopologyChange(
                step=failure.step,
                rank=failure.rank,
                kind=failure.kind,
                survivors=tuple(self.live_ranks),
                retries=retries,
            )
        )
        sink = self.tracer.counter_sink
        if sink is not None:
            sink.count_eviction(failure.rank)

    def restore_topology(self, live_ranks: list[int]) -> None:
        """Re-apply recorded evictions (checkpoint resume).

        Shrinks the freshly-built full-world engine down to the given
        live set without logging new topology events — the events are
        already in the resumed ``History``.
        """
        target = [int(rank) for rank in live_ranks]
        for rank in [r for r in self.live_ranks if r not in target]:
            self._shrink_world(rank)
        if self.live_ranks != target:
            raise ValueError(
                f"cannot restore topology {target} from "
                f"{self.live_ranks} (order or membership mismatch)"
            )

    def shutdown(self) -> None:
        """Release engine resources (worker threads/processes, if any)."""

    def on_state_restored(self) -> None:
        """Hook: engine state was overwritten by a checkpoint restore.

        The in-process engines read worker state directly, so the
        default is a no-op; the process engine uses this to resync
        (respawn) its worker processes from the restored replicas.
        """


class SequentialEngine(ExecutionEngine):
    """Rank loop on the calling thread — the reference trajectory."""

    name = "sequential"

    def _attempt_step(
        self, step: int, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        tracer = self.tracer
        shards = self._shard(x, y)
        scales = self._grad_scales(shards)
        sync = self.step_engine.sync_this_step
        local = self.step_engine.local_updates
        for rank in self.live_ranks:
            worker = self.workers[rank]
            shard_x, shard_y = shards[rank]
            try:
                self.fault_plan.inject(rank, step, tracer.counter_sink)
            except InjectedCrash as exc:
                raise AttemptFailure(
                    WorkerFailure(rank, step, "crash", str(exc)),
                    retryable=True,
                ) from exc
            with tracer.span("compute", rank):
                worker.compute(
                    shard_x, shard_y, grad_scale=scales.get(rank)
                )
            # one thread, one timeline: this rank's upload cannot
            # overlap anything (skipped round steps put nothing on
            # the wire)
            if sync:
                self._pace_transmit(self.per_rank_payload_nbytes, rank)
        # all failure-capable phases are over: from here the attempt
        # cannot raise, so replica mutation is safe in every round mode
        if local:
            for rank in self.live_ranks:
                with tracer.span("compute", rank):
                    self.workers[rank].apply_local_updates()
            if sync:
                self._install_params(self._average_replicas())
        elif sync:
            aggregated: dict[str, np.ndarray] = {}
            for bucket in self.buckets:
                aggregated.update(self._exchange_bucket(bucket))
            for rank in self.live_ranks:
                with tracer.span("compute", rank):
                    self.workers[rank].apply_updates(aggregated)
        else:
            for bucket in self.buckets:
                self._accumulate_bucket(bucket)
        return self._collect_metrics()


class _StepContext:
    """Everything the worker threads need for one synchronous step."""

    def __init__(
        self,
        step: int,
        shards: dict[int, tuple[np.ndarray, np.ndarray]],
        tracker: BucketReadiness,
        grad_scales: dict[int, float] | None = None,
        participants: list[int] | tuple[int, ...] = (),
        sync: bool = True,
    ):
        self.step = step
        self.shards = shards
        self.tracker = tracker
        self.grad_scales = grad_scales or {}
        self.aggregated: dict[str, np.ndarray] = {}
        self.apply_ready = threading.Event()
        self.abort = False
        # periodic synchronization: sync=False steps pace no transfers,
        # and skip_apply tells workers the coordinator already settled
        # this step's replica state (accumulated grads or local-SGD
        # applies/installs), so their apply phase is a no-op
        self.sync = sync
        self.skip_apply = False
        # drain tracking: each participant marks itself done when it is
        # fully out of this step (applied, aborted, or crashed), so the
        # coordinator can rewind RNG state without racing live workers
        self._pending = set(participants)
        self._lock = threading.Lock()
        self._done = threading.Event()
        if not self._pending:
            self._done.set()

    def mark_done(self, rank: int) -> None:
        with self._lock:
            self._pending.discard(rank)
            if not self._pending:
                self._done.set()

    def wait_done(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)


class ThreadedEngine(ExecutionEngine):
    """Thread-per-rank engine with overlapped bucketed exchange.

    Per step: worker threads run forward/backward on their shard,
    announcing gradient readiness layer by layer; the coordinator
    (the caller's thread) walks buckets in fixed order, running each
    collective as soon as its last gradient lands — overlapping
    communication with the remaining backward work.  All parties then
    meet at a reusable :class:`StepBarrier`; a rank that crashes or
    exceeds ``config.barrier_timeout`` is surfaced as a structured
    :class:`WorkerFailure` instead of a hang.
    """

    name = "threaded"

    def __init__(self, model: Module, config: TrainingConfig, loss_fn: LossFn):
        super().__init__(model, config, loss_fn)
        self._inbox: list[queue.Queue] = [
            queue.Queue() for _ in range(self.world_size)
        ]
        self._end_barrier = StepBarrier(
            self.world_size + 1, timeout=config.barrier_timeout
        )
        self._failure: WorkerFailure | None = None
        self._active_ctx: _StepContext | None = None
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(rank,),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(self.world_size)
        ]
        for thread in self._threads:
            thread.start()

    # -- worker side ------------------------------------------------------
    def _worker_loop(self, rank: int) -> None:
        worker = self.workers[rank]
        while True:
            ctx = self._inbox[rank].get()
            if ctx is None:
                return
            tracer = self.tracer
            try:
                try:
                    self.fault_plan.inject(
                        rank, ctx.step, tracer.counter_sink
                    )
                    shard_x, shard_y = ctx.shards[rank]
                    # bucket transfers run inside the readiness hook,
                    # so on this engine transfer spans nest within the
                    # compute span (the overlap the engine exists to
                    # create)
                    with tracer.span("compute", rank):
                        worker.compute(
                            shard_x,
                            shard_y,
                            on_ready=self._paced_hook(rank, ctx),
                            grad_scale=ctx.grad_scales.get(rank),
                        )
                except BaseException as exc:  # noqa: BLE001 - to main
                    worker.error = exc
                    ctx.tracker.mark_dead(rank)
                    continue
                self._timed_wait(ctx.apply_ready.wait, rank)
                if ctx.abort:
                    continue
                if not ctx.skip_apply:
                    with tracer.span("compute", rank):
                        worker.apply_updates(ctx.aggregated)
                try:
                    self._timed_wait(
                        lambda: self._end_barrier.wait(rank), rank
                    )
                except BarrierTimeout:
                    continue
            finally:
                ctx.mark_done(rank)

    def _paced_hook(self, rank: int, ctx: _StepContext):
        """Per-step readiness hook: transmit a bucket, then announce it.

        Each completed bucket occupies this rank's link before its
        arrival is announced to the coordinator — ``time.sleep``
        releases the GIL, so the other ranks' backward runs underneath
        the transfer.
        """
        tracker = ctx.tracker
        if self._link_bytes_per_s is None or not ctx.sync:
            return lambda names: tracker.mark_ready(rank, names)
        owed = {
            bucket.index: len(bucket.names) for bucket in self.buckets
        }

        def on_ready(names):
            for name in names:
                index = self._bucket_of_name[name]
                owed[index] -= 1
                if owed[index] == 0:
                    self._pace_transmit(self.bucket_tx_nbytes[index], rank)
            tracker.mark_ready(rank, names)

        return on_ready

    # -- coordinator side -------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        if self._failure is not None:
            raise WorkerFailureError(self._failure)
        return super().train_step(x, y)

    def _attempt_step(
        self, step: int, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, float]:
        shards = self._shard(x, y)
        sync = self.step_engine.sync_this_step
        local = self.step_engine.local_updates
        ctx = _StepContext(
            step,
            shards,
            BucketReadiness(
                self.buckets, self.world_size, live_ranks=self.live_ranks
            ),
            grad_scales=self._grad_scales(shards),
            participants=self.live_ranks,
            sync=sync,
        )
        self._active_ctx = ctx
        for rank in self.live_ranks:
            self._inbox[rank].put(ctx)
        try:
            for bucket in self.buckets:
                dead = self._timed_wait(
                    lambda: ctx.tracker.wait(
                        bucket.index, timeout=self.config.barrier_timeout
                    ),
                    COORDINATOR,
                )
                if dead:
                    self._raise_worker_errors(ctx, sorted(dead))
                if local:
                    # local SGD consumes whole replicas, not per-bucket
                    # gradients; nothing to do until every backward ends
                    continue
                if sync:
                    ctx.aggregated.update(self._exchange_bucket(bucket))
                else:
                    self._accumulate_bucket(bucket)
        except BarrierTimeout as timeout:
            failure = WorkerFailure(
                rank=min(timeout.missing, default=-1),
                step=step,
                kind="timeout",
                message=str(timeout),
            )
            # nobody applied anything yet: release the workers and let
            # the recovery loop decide (retry, evict, or abort)
            self._abort(ctx)
            raise AttemptFailure(failure, retryable=True) from timeout
        if local:
            # every bucket is ready, so every backward pass is done and
            # the parked workers' replicas are safe to mutate from this
            # (the coordinator's) thread — same operation order as the
            # sequential engine: local applies in rank order, then the
            # bucket-ordered delta exchange, then the install
            tracer = self.tracer
            for rank in self.live_ranks:
                with tracer.span("compute", rank):
                    self.workers[rank].apply_local_updates()
            if sync:
                self._install_params(self._average_replicas())
            ctx.skip_apply = True
        elif not sync:
            ctx.skip_apply = True
        ctx.apply_ready.set()
        try:
            self._timed_wait(
                lambda: self._end_barrier.wait(self.world_size), COORDINATOR
            )
        except BarrierTimeout as timeout:
            failure = WorkerFailure(
                rank=min(timeout.missing, default=-1),
                step=step,
                kind="timeout",
                message=str(timeout),
            )
            # the ranks that did reach the barrier already applied the
            # update — the step is committed for the survivors
            raise AttemptFailure(
                failure, retryable=False, committed=True
            ) from timeout
        return self._collect_metrics()

    def _raise_worker_errors(self, ctx: _StepContext, dead: list[int]) -> None:
        """Convert dead-rank state into the right exception."""
        for rank in dead:
            error = self.workers[rank].error
            if error is not None and not isinstance(error, InjectedCrash):
                # a real compute error (e.g. divergence) propagates
                # with its original type, exactly as the sequential
                # engine raises it from the rank loop
                self._abort(ctx)
                self.workers[rank].error = None
                raise error
        rank = dead[0]
        error = self.workers[rank].error
        failure = WorkerFailure(
            rank=rank,
            step=ctx.step,
            kind="crash",
            message=str(error) if error is not None else "rank died",
        )
        self._abort(ctx)
        raise AttemptFailure(failure, retryable=True)

    def _abort(self, ctx: _StepContext) -> None:
        """Release every worker from the step without applying updates."""
        ctx.abort = True
        ctx.apply_ready.set()

    def _latch_failure(self, failure: WorkerFailure) -> None:
        # a terminally-failed threaded engine refuses further steps
        self._failure = failure

    def _recover_attempt(self, attempt: AttemptFailure) -> None:
        # drain first: workers still inside the aborted attempt may be
        # consuming their module RNG streams, and the rewind in
        # ``_restore_step_state`` must not race them.  Committed steps
        # are never rewound (and the missing rank may be stuck
        # arbitrarily long), so no drain there.
        ctx = self._active_ctx
        if ctx is not None and not attempt.committed:
            self._timed_wait(
                lambda: ctx.wait_done(timeout=self.config.barrier_timeout),
                COORDINATOR,
            )
        # clear injected-crash residue so the next attempt (or the
        # degraded collective) starts clean; real errors never reach
        # here — they propagate with their original type
        for rank in self.live_ranks:
            self.workers[rank].error = None
        if self._end_barrier.broken:
            self._end_barrier.reset()

    def _on_evict(self, rank: int) -> None:
        # the evicted rank no longer participates in the end-of-step
        # rendezvous, and its thread is told to exit (the sentinel
        # queues behind any step context it is still draining)
        self._end_barrier.deregister(rank)
        self._inbox[rank].put(None)

    def shutdown(self) -> None:
        for rank in range(self.world_size):
            self._inbox[rank].put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __del__(self) -> None:  # pragma: no cover - GC best effort
        try:
            if any(t.is_alive() for t in self._threads):
                self.shutdown()
        except Exception:
            pass


_ENGINES: dict[str, Callable[..., ExecutionEngine]] = {
    "sequential": SequentialEngine,
    "threaded": ThreadedEngine,
}


def make_engine(
    model: Module, config: TrainingConfig, loss_fn: LossFn
) -> ExecutionEngine:
    """Construct the execution engine selected by ``config.engine``."""
    if config.engine == "process" and "process" not in _ENGINES:
        # deferred: the process engine pulls in multiprocessing and the
        # shared-memory arena, which the in-process engines never need
        from .process_engine import ProcessEngine

        _ENGINES["process"] = ProcessEngine
    try:
        engine_cls = _ENGINES[config.engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {config.engine!r}; expected one of "
            f"{ENGINE_NAMES}"
        ) from None
    return engine_cls(model, config, loss_fn)
