"""Execution engines: how the K simulated ranks actually run.

Two engines share one interface and — by construction — one numeric
trajectory:

* :class:`SequentialEngine` runs rank workers one after another on the
  calling thread (the seed repository's behaviour, extracted).
* :class:`ThreadedEngine` runs one thread per rank.  numpy/BLAS
  releases the GIL, so on multi-core hosts the per-rank
  forward/backward passes genuinely parallelize; on any host the
  bucketed exchange overlaps with the tail of backward.

A paced interconnect (``TrainingConfig.link_gbps``) models each rank
shipping its encoded gradient contribution over its own link, bucket
by bucket, as soon as the bucket's last gradient lands — the
bandwidth term of a ring allreduce.  The sequential engine pays every
rank's wire time serially after that rank's compute; the threaded
engine's ranks transmit concurrently, hiding wire time behind the
other ranks' backward work exactly as the paper's DAG model predicts.
Wire time is wall-clock only (``time.sleep``) and never touches the
numerics, so pacing cannot break engine parity.

Bit-identity between the engines holds for every scheme × exchange
combination because (1) each rank's compute is the same code on the
same replica with the same per-rank RNG stream, (2) the exchange is
invoked bucket-by-bucket in one fixed order with one shared
quantization RNG, and (3) every rank applies the same aggregated
gradient.  The runtime test-suite asserts this across the full matrix.
"""

from __future__ import annotations

import abc
import queue
import threading
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..data.loader import split_among_ranks
from ..nn.module import Module
from ..telemetry.tracer import COORDINATOR
from .barrier import BarrierTimeout, StepBarrier
from .buckets import BucketReadiness, GradientBucket, build_buckets
from .faults import (
    FaultPlan,
    InjectedCrash,
    WorkerFailure,
    WorkerFailureError,
)
from .worker import LossFn, RankWorker, clone_module, reseed_module_rngs

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..core.config import TrainingConfig

__all__ = [
    "ENGINE_NAMES",
    "ExecutionEngine",
    "SequentialEngine",
    "ThreadedEngine",
    "make_engine",
]

ENGINE_NAMES = ("sequential", "threaded")


class ExecutionEngine(abc.ABC):
    """Owns the rank workers and drives one synchronous step at a time."""

    name: str = "engine"

    def __init__(self, model: Module, config: TrainingConfig, loss_fn: LossFn):
        # deferred: core.algorithm imports the comm/quantization stack,
        # which must not load as a side effect of importing the runtime
        from ..core.algorithm import SynchronousStep

        self.config = config
        self.world_size = config.world_size
        self.workers: list[RankWorker] = []
        for rank in range(config.world_size):
            replica = model if rank == 0 else clone_module(model)
            reseed_module_rngs(replica, config.seed, rank)
            self.workers.append(
                RankWorker(
                    rank,
                    replica,
                    loss_fn,
                    lr=config.lr,
                    momentum=config.momentum,
                    weight_decay=config.weight_decay,
                    label=config.label,
                )
            )
        self.step_engine = SynchronousStep(
            config, self.workers[0].parameters
        )
        # telemetry handle resolved by SynchronousStep (NULL_TRACER
        # when config.tracer is None); spans/counters below are no-ops
        # on the null path
        self.tracer = self.step_engine.tracer
        self.buckets: list[GradientBucket] = build_buckets(
            self.workers[0].parameters, config.comm_bucket_bytes
        )
        self.fault_plan = FaultPlan.from_config(config)
        self._step_index = 0
        # bytes/second of each rank's simulated link (None = free wire;
        # a single rank exchanges nothing, so pacing is moot)
        self._link_bytes_per_s = (
            None
            if config.link_gbps is None or config.world_size < 2
            else config.link_gbps * 1e9 / 8.0
        )
        # one rank's encoded upload per bucket, from the scheme's own
        # wire format (passthrough and layer selectivity included)
        params = self.workers[0].param_by_name
        self.bucket_tx_nbytes: dict[int, int] = {
            bucket.index: sum(
                self.step_engine.payload_nbytes(
                    name, params[name].data.shape
                )
                for name in bucket.names
            )
            for bucket in self.buckets
        }
        #: bytes one rank puts on the wire per step
        self.per_rank_payload_nbytes = sum(self.bucket_tx_nbytes.values())
        self._bucket_of_name = {
            name: bucket.index
            for bucket in self.buckets
            for name in bucket.names
        }

    # -- shared helpers ---------------------------------------------------
    def set_lr(self, lr: float) -> None:
        """Set the learning rate on every rank's optimizer."""
        for worker in self.workers:
            worker.optimizer.lr = lr

    @property
    def optimizer(self):
        """Rank 0's optimizer (replicas hold identical state)."""
        return self.workers[0].optimizer

    @property
    def workspace(self):
        """The step engine's scratch arena (``None`` when disabled).

        Both engines drive every bucket exchange from the coordinator
        thread, so a single arena serves the whole run; its buffers are
        reused across steps, which is what makes the steady-state hot
        path allocation-free.
        """
        return self.step_engine.workspace

    def _exchange_bucket(self, bucket: GradientBucket) -> dict[str, np.ndarray]:
        """Run the collective for one bucket; returns aggregated grads."""
        return self.step_engine.aggregate_bucket(
            list(bucket.names),
            {
                name: [w.gradient(name) for w in self.workers]
                for name in bucket.names
            },
        )

    def _pace_transmit(self, nbytes: int, rank: int = 0) -> None:
        """Occupy one rank's link for ``nbytes`` of encoded gradient."""
        if self._link_bytes_per_s is not None and nbytes > 0:
            with self.tracer.span("transfer", rank):
                time.sleep(nbytes / self._link_bytes_per_s)

    def _timed_wait(self, waiter, track: int):
        """Run one blocking rendezvous wait, traced as barrier time.

        The wall time a party spends blocked at a step barrier or
        bucket rendezvous is exactly the paper's synchronization cost;
        traced runs record it as a ``barrier`` span on ``track`` and
        fold it into the barrier-wait counter.  Untraced runs call the
        waiter directly.
        """
        counters = self.tracer.counter_sink
        if counters is None:
            return waiter()
        with self.tracer.span("barrier", track):
            start = time.perf_counter()
            try:
                return waiter()
            finally:
                counters.add_barrier_wait(time.perf_counter() - start)

    def _collect_metrics(self) -> tuple[float, float]:
        """Shard-size-weighted global loss and accuracy of the last step."""
        total = sum(w.samples for w in self.workers if w.loss is not None)
        if total == 0:
            return float("nan"), float("nan")
        loss = (
            sum(w.loss * w.samples for w in self.workers if w.loss is not None)
            / total
        )
        acc = (
            sum(
                w.accuracy * w.samples
                for w in self.workers
                if w.accuracy is not None
            )
            / total
        )
        return float(loss), float(acc)

    @abc.abstractmethod
    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One global minibatch; returns (weighted loss, weighted acc)."""

    def shutdown(self) -> None:
        """Release engine resources (worker threads, if any)."""


class SequentialEngine(ExecutionEngine):
    """Rank loop on the calling thread — the reference trajectory."""

    name = "sequential"

    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        step = self._step_index
        self._step_index += 1
        tracer = self.tracer
        shards = split_among_ranks(x, y, self.world_size)
        for worker, (shard_x, shard_y) in zip(self.workers, shards):
            try:
                self.fault_plan.inject(
                    worker.rank, step, tracer.counter_sink
                )
            except InjectedCrash as exc:
                raise WorkerFailureError(
                    WorkerFailure(worker.rank, step, "crash", str(exc))
                ) from exc
            with tracer.span("compute", worker.rank):
                worker.compute(shard_x, shard_y)
            # one thread, one timeline: this rank's upload cannot
            # overlap anything
            self._pace_transmit(self.per_rank_payload_nbytes, worker.rank)
        aggregated: dict[str, np.ndarray] = {}
        for bucket in self.buckets:
            aggregated.update(self._exchange_bucket(bucket))
        for worker in self.workers:
            with tracer.span("compute", worker.rank):
                worker.apply_updates(aggregated)
        return self._collect_metrics()


class _StepContext:
    """Everything the worker threads need for one synchronous step."""

    def __init__(
        self,
        step: int,
        shards: list[tuple[np.ndarray, np.ndarray]],
        tracker: BucketReadiness,
    ):
        self.step = step
        self.shards = shards
        self.tracker = tracker
        self.aggregated: dict[str, np.ndarray] = {}
        self.apply_ready = threading.Event()
        self.abort = False


class ThreadedEngine(ExecutionEngine):
    """Thread-per-rank engine with overlapped bucketed exchange.

    Per step: worker threads run forward/backward on their shard,
    announcing gradient readiness layer by layer; the coordinator
    (the caller's thread) walks buckets in fixed order, running each
    collective as soon as its last gradient lands — overlapping
    communication with the remaining backward work.  All parties then
    meet at a reusable :class:`StepBarrier`; a rank that crashes or
    exceeds ``config.barrier_timeout`` is surfaced as a structured
    :class:`WorkerFailure` instead of a hang.
    """

    name = "threaded"

    def __init__(self, model: Module, config: TrainingConfig, loss_fn: LossFn):
        super().__init__(model, config, loss_fn)
        self._inbox: list[queue.Queue] = [
            queue.Queue() for _ in range(self.world_size)
        ]
        self._end_barrier = StepBarrier(
            self.world_size + 1, timeout=config.barrier_timeout
        )
        self._failure: WorkerFailure | None = None
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(rank,),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(self.world_size)
        ]
        for thread in self._threads:
            thread.start()

    # -- worker side ------------------------------------------------------
    def _worker_loop(self, rank: int) -> None:
        worker = self.workers[rank]
        while True:
            ctx = self._inbox[rank].get()
            if ctx is None:
                return
            tracer = self.tracer
            try:
                self.fault_plan.inject(rank, ctx.step, tracer.counter_sink)
                shard_x, shard_y = ctx.shards[rank]
                # bucket transfers run inside the readiness hook, so on
                # this engine transfer spans nest within the compute
                # span (the overlap the engine exists to create)
                with tracer.span("compute", rank):
                    worker.compute(
                        shard_x,
                        shard_y,
                        on_ready=self._paced_hook(rank, ctx),
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced to main
                worker.error = exc
                ctx.tracker.mark_dead(rank)
                continue
            self._timed_wait(ctx.apply_ready.wait, rank)
            if ctx.abort:
                continue
            with tracer.span("compute", rank):
                worker.apply_updates(ctx.aggregated)
            try:
                self._timed_wait(lambda: self._end_barrier.wait(rank), rank)
            except BarrierTimeout:
                continue

    def _paced_hook(self, rank: int, ctx: _StepContext):
        """Per-step readiness hook: transmit a bucket, then announce it.

        Each completed bucket occupies this rank's link before its
        arrival is announced to the coordinator — ``time.sleep``
        releases the GIL, so the other ranks' backward runs underneath
        the transfer.
        """
        tracker = ctx.tracker
        if self._link_bytes_per_s is None:
            return lambda names: tracker.mark_ready(rank, names)
        owed = {
            bucket.index: len(bucket.names) for bucket in self.buckets
        }

        def on_ready(names):
            for name in names:
                index = self._bucket_of_name[name]
                owed[index] -= 1
                if owed[index] == 0:
                    self._pace_transmit(self.bucket_tx_nbytes[index], rank)
            tracker.mark_ready(rank, names)

        return on_ready

    # -- coordinator side -------------------------------------------------
    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        if self._failure is not None:
            raise WorkerFailureError(self._failure)
        step = self._step_index
        self._step_index += 1
        ctx = _StepContext(
            step,
            split_among_ranks(x, y, self.world_size),
            BucketReadiness(self.buckets, self.world_size),
        )
        for rank in range(self.world_size):
            self._inbox[rank].put(ctx)
        try:
            for bucket in self.buckets:
                dead = self._timed_wait(
                    lambda: ctx.tracker.wait(
                        bucket.index, timeout=self.config.barrier_timeout
                    ),
                    COORDINATOR,
                )
                if dead:
                    self._raise_worker_errors(ctx, sorted(dead))
                ctx.aggregated.update(self._exchange_bucket(bucket))
        except BarrierTimeout as timeout:
            failure = WorkerFailure(
                rank=min(timeout.missing, default=-1),
                step=step,
                kind="timeout",
                message=str(timeout),
            )
            self._abort(ctx, failure)
            raise WorkerFailureError(failure) from timeout
        ctx.apply_ready.set()
        try:
            self._timed_wait(
                lambda: self._end_barrier.wait(self.world_size), COORDINATOR
            )
        except BarrierTimeout as timeout:
            failure = WorkerFailure(
                rank=min(timeout.missing, default=-1),
                step=step,
                kind="timeout",
                message=str(timeout),
            )
            self._failure = failure
            raise WorkerFailureError(failure) from timeout
        return self._collect_metrics()

    def _raise_worker_errors(self, ctx: _StepContext, dead: list[int]) -> None:
        """Convert dead-rank state into the right exception."""
        for rank in dead:
            error = self.workers[rank].error
            if error is not None and not isinstance(error, InjectedCrash):
                # a real compute error (e.g. divergence) propagates
                # with its original type, exactly as the sequential
                # engine raises it from the rank loop
                self._abort(ctx, failure=None)
                self.workers[rank].error = None
                raise error
        rank = dead[0]
        error = self.workers[rank].error
        failure = WorkerFailure(
            rank=rank,
            step=ctx.step,
            kind="crash",
            message=str(error) if error is not None else "rank died",
        )
        self._abort(ctx, failure)
        raise WorkerFailureError(failure)

    def _abort(
        self, ctx: _StepContext, failure: WorkerFailure | None
    ) -> None:
        """Release every worker from the step without applying updates."""
        ctx.abort = True
        ctx.apply_ready.set()
        if failure is not None:
            self._failure = failure

    def shutdown(self) -> None:
        for rank in range(self.world_size):
            self._inbox[rank].put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __del__(self) -> None:  # pragma: no cover - GC best effort
        try:
            if any(t.is_alive() for t in self._threads):
                self.shutdown()
        except Exception:
            pass


_ENGINES: dict[str, Callable[..., ExecutionEngine]] = {
    "sequential": SequentialEngine,
    "threaded": ThreadedEngine,
}


def make_engine(
    model: Module, config: TrainingConfig, loss_fn: LossFn
) -> ExecutionEngine:
    """Construct the execution engine selected by ``config.engine``."""
    try:
        engine_cls = _ENGINES[config.engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {config.engine!r}; expected one of "
            f"{ENGINE_NAMES}"
        ) from None
    return engine_cls(model, config, loss_fn)
