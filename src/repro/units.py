"""Bandwidth unit conversions shared across runtime and simulators.

Link rates are quoted in Gbit/s everywhere in this repository —
``TrainingConfig.link_gbps``, the machine models' calibrated bus/link
constants, and the fabric topology's link classes.  Wire time is
computed in bytes/second.  Before this module, the runtime pacing code
and :mod:`repro.simulator.costmodel`'s machine models each performed
the Gbit/s -> bytes/s conversion inline (and disagreed about it: the
machine constants were silently gigaBYTES/s); every conversion now
goes through :func:`gbps_to_bytes_per_second` so the factor is defined
exactly once and pinned by a regression test.
"""

from __future__ import annotations

__all__ = [
    "BITS_PER_BYTE",
    "GIGA",
    "gbps_to_bytes_per_second",
    "bytes_per_second_to_gbps",
    "transfer_seconds",
]

#: bits per byte (the factor the two inline conversions disagreed on)
BITS_PER_BYTE = 8
#: one giga (decimal, as in networking: 1 Gbit/s = 1e9 bit/s)
GIGA = 1e9


def gbps_to_bytes_per_second(gbps: float) -> float:
    """Convert a link rate in Gbit/s to bytes/second.

    1 Gbit/s == 1e9 / 8 == 125e6 bytes/s.
    """
    if gbps < 0:
        raise ValueError(f"link rate must be >= 0 Gbit/s, got {gbps}")
    return gbps * GIGA / BITS_PER_BYTE


def bytes_per_second_to_gbps(bytes_per_second: float) -> float:
    """Convert bytes/second back to Gbit/s (inverse of the above)."""
    if bytes_per_second < 0:
        raise ValueError(
            f"rate must be >= 0 bytes/s, got {bytes_per_second}"
        )
    return bytes_per_second * BITS_PER_BYTE / GIGA


def transfer_seconds(
    nbytes: int | float, gbps: float, latency_s: float = 0.0
) -> float:
    """Seconds to push ``nbytes`` over a ``gbps`` link after ``latency_s``."""
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if gbps <= 0:
        raise ValueError(f"link rate must be > 0 Gbit/s, got {gbps}")
    return latency_s + nbytes / gbps_to_bytes_per_second(gbps)
