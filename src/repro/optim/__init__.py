"""Optimizers for the numpy substrate."""

from .schedule import exponential_decay, step_decay
from .sgd import Sgd

__all__ = ["Sgd", "exponential_decay", "step_decay"]
