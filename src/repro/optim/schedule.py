"""Learning-rate schedules."""

from __future__ import annotations

__all__ = ["exponential_decay", "step_decay"]


def exponential_decay(base_lr: float, decay: float, epoch: int) -> float:
    """``base_lr * decay**epoch``; ``decay=1`` keeps the rate constant."""
    if base_lr <= 0.0:
        raise ValueError(f"base_lr must be > 0, got {base_lr}")
    if not 0.0 < decay <= 1.0:
        raise ValueError(f"decay must be in (0, 1], got {decay}")
    return base_lr * decay**epoch


def step_decay(
    base_lr: float, epoch: int, step: int, factor: float = 0.1
) -> float:
    """Divide the rate by ``1/factor`` every ``step`` epochs."""
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    return base_lr * factor ** (epoch // step)
