"""SGD with momentum — the optimizer of every recipe in the paper."""

from __future__ import annotations

import numpy as np

from ..nn.module import Parameter

__all__ = ["Sgd"]


class Sgd:
    """Momentum SGD applied per parameter to externally supplied grads.

    In data-parallel training the gradient handed to :meth:`apply` is
    the *aggregated* (averaged) gradient after the collective exchange,
    so momentum state lives once per model, exactly as CNTK applies
    momentum after gradient aggregation.
    """

    def __init__(
        self,
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0.0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def apply(self, param: Parameter, grad: np.ndarray) -> None:
        """Update ``param`` in place using ``grad``."""
        if grad.shape != param.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{param.name} shape {param.data.shape}"
            )
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            velocity = self._velocity.get(param.name)
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity + grad
            self._velocity[param.name] = velocity
            grad = velocity
        param.data -= self.lr * grad

    def reset(self) -> None:
        """Drop momentum state."""
        self._velocity.clear()
