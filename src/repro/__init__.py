"""repro — reproduction of "Synchronous Multi-GPU Deep Learning with
Low-Precision Communication: An Experimental Study" (EDBT 2018).

Public API tour:

* :mod:`repro.quantization` — the gradient codecs (1bitSGD, reshaped
  1bitSGD*, QSGD, full precision) with byte-exact wire formats;
* :mod:`repro.comm` — collective gradient exchanges (MPI
  reduce-and-broadcast, NCCL ring allreduce) with traffic accounting;
* :mod:`repro.core` — synchronous data-parallel SGD
  (:class:`~repro.core.ParallelTrainer`);
* :mod:`repro.runtime` — execution engines (sequential rank loop or
  thread-per-rank with overlapped bucketed exchange), step barriers,
  and straggler/crash fault injection;
* :mod:`repro.nn`, :mod:`repro.models`, :mod:`repro.data`,
  :mod:`repro.optim` — the training substrate and model zoo;
* :mod:`repro.simulator` — the calibrated EC2/DGX-1 performance model;
* :mod:`repro.telemetry` — live-path tracing (per-rank phase spans,
  typed counters, Chrome-trace export, measured-vs-simulated
  cross-validation);
* :mod:`repro.study` — one experiment per paper table/figure.

Quickstart::

    from repro import ParallelTrainer, TrainingConfig
    from repro.data import make_image_dataset
    from repro.models import tiny_alexnet

    ds = make_image_dataset()
    config = TrainingConfig(scheme="qsgd4", exchange="mpi", world_size=4,
                            batch_size=32, lr=0.01)
    trainer = ParallelTrainer(tiny_alexnet(num_classes=ds.num_classes,
                                           image_size=16), config)
    history = trainer.fit(ds.train_x, ds.train_y, ds.test_x, ds.test_y,
                          epochs=10)
"""

from .core import (
    EpochMetrics,
    History,
    ParallelTrainer,
    SynchronousStep,
    TrainingConfig,
)
from .runtime import (
    ENGINE_NAMES,
    SequentialEngine,
    ThreadedEngine,
    WorkerFailure,
    make_engine,
)
from .quantization import (
    SCHEME_NAMES,
    ErrorFeedback,
    FullPrecision,
    OneBitSgd,
    OneBitSgdReshaped,
    Qsgd,
    Quantizer,
    make_quantizer,
)
from .telemetry import (
    NullTracer,
    PhaseBreakdown,
    Tracer,
    cross_validate,
    write_chrome_trace,
)

__version__ = "1.0.0"

__all__ = [
    "EpochMetrics",
    "History",
    "ParallelTrainer",
    "SynchronousStep",
    "TrainingConfig",
    "ENGINE_NAMES",
    "SequentialEngine",
    "ThreadedEngine",
    "WorkerFailure",
    "make_engine",
    "SCHEME_NAMES",
    "ErrorFeedback",
    "FullPrecision",
    "OneBitSgd",
    "OneBitSgdReshaped",
    "Qsgd",
    "Quantizer",
    "make_quantizer",
    "NullTracer",
    "PhaseBreakdown",
    "Tracer",
    "cross_validate",
    "write_chrome_trace",
    "__version__",
]
