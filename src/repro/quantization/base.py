"""Core quantizer interfaces and byte accounting.

A *quantizer* is the Encode/Decode pair of the paper's Algorithm 1: it
maps a gradient tensor to a compact wire message and back to an
(approximate) gradient.  Quantizers here are pure with respect to the
gradient: stateful error feedback (1bitSGD's ϵ vector, Algorithm 2)
lives in :class:`ErrorFeedback`, which wraps any quantizer.

All encoders report the exact number of bytes their message occupies on
the wire via :attr:`EncodedTensor.nbytes`; the performance simulator and
the communication layer both consume that number, so compression ratios
in every reproduced figure are measured, never assumed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping

import numpy as np

from .workspace import EncodeWorkspace

__all__ = [
    "EncodedTensor",
    "Quantizer",
    "ErrorFeedback",
    "SumDecoder",
    "BucketSumDecoder",
    "MESSAGE_HEADER_BYTES",
]

# Fixed per-message framing: scheme id (2B), dtype tag (2B), element
# count (8B), matrix shape (2 x 4B).  Matches the CNTK message header.
MESSAGE_HEADER_BYTES = 20


@dataclass(frozen=True)
class EncodedTensor:
    """A quantized gradient as it would appear on the wire.

    Attributes:
        scheme: name of the quantizer that produced the message.
        shape: shape of the original gradient tensor.
        payload: named binary sections (packed codes, scale vectors...).
            The wire size is the sum of the section sizes plus the
            fixed header.
        meta: small decode-time scalars (bucket size, code width...).
            Metadata is part of the stream configuration, negotiated
            once per run, so it does not count toward per-message bytes.
    """

    scheme: str
    shape: tuple[int, ...]
    payload: Mapping[str, np.ndarray]
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def element_count(self) -> int:
        """Number of scalar gradient entries the message carries."""
        return int(np.prod(self.shape)) if self.shape else 1

    @cached_property
    def nbytes(self) -> int:
        """Exact wire size of the message in bytes.

        Cached per message (writes around the frozen-dataclass guard):
        the exchange layer re-reads it for traffic accounting several
        times per message, and the payload sections never change size.
        """
        return MESSAGE_HEADER_BYTES + sum(
            arr.nbytes for arr in self.payload.values()
        )

    @property
    def bits_per_element(self) -> float:
        """Effective communicated bits per gradient entry."""
        count = self.element_count
        if count == 0:
            return 0.0
        return 8.0 * self.nbytes / count


class Quantizer(abc.ABC):
    """Encode/Decode pair for gradient communication.

    Subclasses must be deterministic given the same ``rng`` state so
    that multi-rank training runs are reproducible.
    """

    #: short scheme identifier used in reports ("32bit", "qsgd4", ...)
    name: str = "quantizer"
    #: nominal code width in bits (32 for full precision)
    nominal_bits: float = 32.0
    #: whether the scheme needs the trainer to run error feedback
    requires_error_feedback: bool = False

    @abc.abstractmethod
    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        """Quantize ``grad`` into a wire message."""

    @abc.abstractmethod
    def decode(self, message: EncodedTensor) -> np.ndarray:
        """Reconstruct the (approximate) gradient from a message."""

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        """Encode using ``workspace`` scratch buffers when provided.

        The returned message's payload may alias arena buffers: it is
        valid until the next ``encode_into`` on the same workspace (see
        the lifetime contract in :mod:`repro.quantization.workspace`).
        Schemes with a zero-allocation kernel override this; the
        default falls back to the allocating :meth:`encode`, so every
        scheme supports the out-parameter calling convention.
        """
        return self.encode(grad, rng)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        """Decode ``message`` into ``out``; optionally add instead of set.

        ``decode_into(msg, out, accumulate=True)`` is elementwise
        bit-identical to ``out += decode(msg)`` — the decoded values
        are computed exactly as :meth:`decode` computes them and the
        accumulation preserves the operand order — but performs no
        full-tensor temporaries when the scheme provides a workspace
        kernel.  The default delegates to :meth:`decode`.
        """
        decoded = self.decode(message)
        if accumulate:
            out += decoded
        else:
            out[...] = decoded
        return out

    def sum_decoder(
        self,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ) -> "SumDecoder":
        """Accumulator that decode-sums a stream of messages for ``shape``.

        The exchanges use this to fold every rank's decoded
        contribution into one running aggregate without materializing
        per-rank tensors.  Codecs whose wire layout is a permutation of
        the gradient (bucketed schemes) override this to accumulate in
        the contiguous coded layout and permute once at the end — the
        per-element addition order is unchanged, so the result is
        bit-identical to summing dense decodes in rank order.
        """
        return SumDecoder(self, shape, workspace)

    def roundtrip(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Encode then decode; the value the receiving rank will see."""
        return self.decode(self.encode(grad, rng))

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        """Wire size for a gradient of ``shape`` without encoding it.

        The default implementation encodes a zero tensor, which is
        exact for every fixed-rate scheme in this package.  The
        simulator uses this to cost paper-scale layers cheaply.
        """
        zero = np.zeros(shape, dtype=np.float32)
        return self.encode(zero, np.random.default_rng(0)).nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class SumDecoder:
    """Fused decode-accumulate over one exchange's message stream.

    ``add`` folds each message's decoded image into a running sum with
    the exact semantics of ``acc = zeros(shape); acc += decode(msg_r)``
    in call order (including the initial ``0 + x`` on the first add, so
    signed zeros match the materializing path bit-for-bit); ``result``
    returns the accumulated tensor.  The returned array lives in the
    workspace arena when one is provided and is valid until the next
    decoder on the same workspace.
    """

    def __init__(
        self,
        codec: Quantizer,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ):
        self.codec = codec
        self.shape = tuple(shape)
        self.workspace = workspace
        if workspace is None:
            self._acc = np.zeros(self.shape, dtype=np.float32)
        else:
            self._acc = workspace.zeros("sumdec.acc", self.shape)

    def add(self, message: EncodedTensor) -> None:
        """Fold one message's decoded image into the running sum."""
        self.codec.decode_into(
            message, self._acc, accumulate=True, workspace=self.workspace
        )

    def result(self) -> np.ndarray:
        """The accumulated sum (arena-backed when a workspace is set)."""
        return self._acc


class BucketSumDecoder(SumDecoder):
    """Sum decoder for codecs whose wire layout is a bucket permutation.

    Decoded bucket matrices are accumulated contiguously (a fast dense
    add) and the bucket-to-gradient permutation runs once in
    :meth:`result` instead of once per rank.  A permutation is an
    elementwise bijection, so it commutes with the per-element sum:
    ``unbucket(sum_r values_r) == sum_r unbucket(values_r)`` exactly,
    bit for bit, because each element still accumulates the same
    float32 operands in the same order.  The codec must provide
    ``_decode_values(message, workspace) -> (n_buckets, bucket_size)``;
    codecs that additionally provide ``_decode_acc_into(message, acc,
    workspace)`` get the fused decode-accumulate path, which adds
    decoded values straight into the bucket accumulator without
    materializing them (same operands, same order, so bit-identical).
    """

    def __init__(
        self,
        codec: Quantizer,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ):
        self.codec = codec
        self.shape = tuple(shape)
        self.workspace = workspace
        self._acc = None  # allocated lazily: geometry comes from msg 0

    def add(self, message: EncodedTensor) -> None:
        fused = getattr(self.codec, "_decode_acc_into", None)
        if fused is not None:
            self._acc = fused(message, self._acc, self.workspace)
            return
        values = self.codec._decode_values(message, self.workspace)
        if self._acc is None:
            if self.workspace is None:
                self._acc = np.zeros(values.shape, dtype=np.float32)
            else:
                self._acc = self.workspace.zeros(
                    "sumdec.bucket_acc", values.shape
                )
        elif self._acc.shape != values.shape:
            raise ValueError(
                f"message bucket geometry {values.shape} does not match "
                f"the accumulator {self._acc.shape}; all messages in one "
                f"exchange must share the same bucket layout"
            )
        self._acc += values

    def result(self) -> np.ndarray:
        from .bucketing import from_buckets_into

        if self.workspace is None:
            out = np.empty(self.shape, dtype=np.float32)
        else:
            out = self.workspace.array("sumdec.out", self.shape)
        if self._acc is None:  # no messages were added
            out.fill(0.0)
            return out
        return from_buckets_into(self._acc, self.shape, out)


class ErrorFeedback:
    """Error-feedback wrapper (Algorithm 2, lines 1 and 4).

    Keeps one residual tensor per gradient stream.  On each call the
    residual from the previous round is added to the incoming gradient
    before quantization, and the new residual is the difference between
    the corrected gradient and its quantized image.  The telescoping
    identity ``sum_t decoded_t = sum_t grad_t - residual_T`` holds
    exactly and is verified by property tests.
    """

    def __init__(self, quantizer: Quantizer):
        self.quantizer = quantizer
        self._residuals: dict[str, np.ndarray] = {}

    def residual(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """Current residual for stream ``key`` (zeros before first use)."""
        if key not in self._residuals:
            self._residuals[key] = np.zeros(shape, dtype=np.float32)
        return self._residuals[key]

    def encode(
        self,
        key: str,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        """Encode ``grad`` for stream ``key`` with error correction.

        With a ``workspace``, the corrected gradient and the round-trip
        decode live in arena scratch and the residual is updated in
        place, so repeated calls allocate nothing.
        """
        residual = self.residual(key, grad.shape)
        if workspace is None:
            corrected = grad.astype(np.float32, copy=False) + residual
            message = self.quantizer.encode(corrected, rng)
            decoded = self.quantizer.decode(message)
            self._residuals[key] = corrected - decoded
            return message
        corrected = workspace.array("ef.corrected", grad.shape)
        np.add(grad, residual, out=corrected)
        message = self.quantizer.encode_into(corrected, rng, workspace)
        decoded = workspace.array("ef.decoded", grad.shape)
        self.quantizer.decode_into(message, decoded, workspace=workspace)
        np.subtract(corrected, decoded, out=residual)
        return message

    def decode(self, message: EncodedTensor) -> np.ndarray:
        """Decode a message (no state involved on the receive path)."""
        return self.quantizer.decode(message)

    def reset(self) -> None:
        """Drop all residual state (e.g. between training runs)."""
        self._residuals.clear()
