"""Core quantizer interfaces and byte accounting.

A *quantizer* is the Encode/Decode pair of the paper's Algorithm 1: it
maps a gradient tensor to a compact wire message and back to an
(approximate) gradient.  Quantizers here are pure with respect to the
gradient: stateful error feedback (1bitSGD's ϵ vector, Algorithm 2)
lives in :class:`ErrorFeedback`, which wraps any quantizer.

All encoders report the exact number of bytes their message occupies on
the wire via :attr:`EncodedTensor.nbytes`; the performance simulator and
the communication layer both consume that number, so compression ratios
in every reproduced figure are measured, never assumed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

__all__ = [
    "EncodedTensor",
    "Quantizer",
    "ErrorFeedback",
    "MESSAGE_HEADER_BYTES",
]

# Fixed per-message framing: scheme id (2B), dtype tag (2B), element
# count (8B), matrix shape (2 x 4B).  Matches the CNTK message header.
MESSAGE_HEADER_BYTES = 20


@dataclass(frozen=True)
class EncodedTensor:
    """A quantized gradient as it would appear on the wire.

    Attributes:
        scheme: name of the quantizer that produced the message.
        shape: shape of the original gradient tensor.
        payload: named binary sections (packed codes, scale vectors...).
            The wire size is the sum of the section sizes plus the
            fixed header.
        meta: small decode-time scalars (bucket size, code width...).
            Metadata is part of the stream configuration, negotiated
            once per run, so it does not count toward per-message bytes.
    """

    scheme: str
    shape: tuple[int, ...]
    payload: Mapping[str, np.ndarray]
    meta: Mapping[str, object] = field(default_factory=dict)

    @property
    def element_count(self) -> int:
        """Number of scalar gradient entries the message carries."""
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Exact wire size of the message in bytes."""
        return MESSAGE_HEADER_BYTES + sum(
            arr.nbytes for arr in self.payload.values()
        )

    @property
    def bits_per_element(self) -> float:
        """Effective communicated bits per gradient entry."""
        count = self.element_count
        if count == 0:
            return 0.0
        return 8.0 * self.nbytes / count


class Quantizer(abc.ABC):
    """Encode/Decode pair for gradient communication.

    Subclasses must be deterministic given the same ``rng`` state so
    that multi-rank training runs are reproducible.
    """

    #: short scheme identifier used in reports ("32bit", "qsgd4", ...)
    name: str = "quantizer"
    #: nominal code width in bits (32 for full precision)
    nominal_bits: float = 32.0
    #: whether the scheme needs the trainer to run error feedback
    requires_error_feedback: bool = False

    @abc.abstractmethod
    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        """Quantize ``grad`` into a wire message."""

    @abc.abstractmethod
    def decode(self, message: EncodedTensor) -> np.ndarray:
        """Reconstruct the (approximate) gradient from a message."""

    def roundtrip(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Encode then decode; the value the receiving rank will see."""
        return self.decode(self.encode(grad, rng))

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        """Wire size for a gradient of ``shape`` without encoding it.

        The default implementation encodes a zero tensor, which is
        exact for every fixed-rate scheme in this package.  The
        simulator uses this to cost paper-scale layers cheaply.
        """
        zero = np.zeros(shape, dtype=np.float32)
        return self.encode(zero, np.random.default_rng(0)).nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class ErrorFeedback:
    """Error-feedback wrapper (Algorithm 2, lines 1 and 4).

    Keeps one residual tensor per gradient stream.  On each call the
    residual from the previous round is added to the incoming gradient
    before quantization, and the new residual is the difference between
    the corrected gradient and its quantized image.  The telescoping
    identity ``sum_t decoded_t = sum_t grad_t - residual_T`` holds
    exactly and is verified by property tests.
    """

    def __init__(self, quantizer: Quantizer):
        self.quantizer = quantizer
        self._residuals: dict[str, np.ndarray] = {}

    def residual(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """Current residual for stream ``key`` (zeros before first use)."""
        if key not in self._residuals:
            self._residuals[key] = np.zeros(shape, dtype=np.float32)
        return self._residuals[key]

    def encode(
        self,
        key: str,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> EncodedTensor:
        """Encode ``grad`` for stream ``key`` with error correction."""
        corrected = grad.astype(np.float32, copy=False) + self.residual(
            key, grad.shape
        )
        message = self.quantizer.encode(corrected, rng)
        decoded = self.quantizer.decode(message)
        self._residuals[key] = corrected - decoded
        return message

    def decode(self, message: EncodedTensor) -> np.ndarray:
        """Decode a message (no state involved on the receive path)."""
        return self.quantizer.decode(message)

    def reset(self) -> None:
        """Drop all residual state (e.g. between training runs)."""
        self._residuals.clear()
