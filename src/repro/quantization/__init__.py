"""Gradient quantization schemes from the paper.

The registry maps the scheme names used throughout the paper's tables
("32bit", "1bit", "1bit*", "qsgd2" ... "qsgd16") to constructors, so
experiment configurations can name schemes as strings.
"""

from __future__ import annotations

from .adaptive import AdaptiveQsgd, lloyd_max_levels
from .base import (
    MESSAGE_HEADER_BYTES,
    EncodedTensor,
    ErrorFeedback,
    Quantizer,
)
from .bucketing import (
    BucketPlan,
    bucket_count,
    bucket_plan,
    from_buckets,
    from_buckets_into,
    to_buckets,
    to_buckets_into,
)
from . import kernels
from .dettmers8 import Dettmers8, dynamic_tree_values
from .fullprec import FullPrecision
from .onebit import OneBitSgd
from .onebit_reshaped import OneBitSgdReshaped
from .policy import (
    AdaptiveBitWidthPolicy,
    QuantizationPolicy,
    passthrough_threshold,
)
from .qsgd import DEFAULT_BUCKET_SIZES, Qsgd
from .terngrad import TernGrad
from .topk import TopK
from .workspace import EncodeWorkspace

__all__ = [
    "MESSAGE_HEADER_BYTES",
    "EncodedTensor",
    "ErrorFeedback",
    "Quantizer",
    "FullPrecision",
    "OneBitSgd",
    "OneBitSgdReshaped",
    "Qsgd",
    "AdaptiveQsgd",
    "TernGrad",
    "Dettmers8",
    "dynamic_tree_values",
    "TopK",
    "lloyd_max_levels",
    "QuantizationPolicy",
    "AdaptiveBitWidthPolicy",
    "passthrough_threshold",
    "bucket_count",
    "bucket_plan",
    "BucketPlan",
    "to_buckets",
    "to_buckets_into",
    "from_buckets",
    "from_buckets_into",
    "EncodeWorkspace",
    "DEFAULT_BUCKET_SIZES",
    "SCHEME_NAMES",
    "EXTENSION_SCHEME_PREFIXES",
    "EXTENSION_SCHEME_EXAMPLES",
    "make_quantizer",
    "kernels",
]

#: scheme names in the order the paper's figures list them, followed by
#: the related-work schemes of the widened zoo (TernGrad and Dettmers'
#: 8-bit dynamic tree / columnwise variants)
SCHEME_NAMES = (
    "32bit",
    "qsgd16",
    "qsgd8",
    "qsgd4",
    "qsgd2",
    "1bit*",
    "1bit",
    "terngrad",
    "dettmers8",
    "dettmers8c",
)

#: extension schemes from the paper's Sections 2.3 / 7 (non-uniform
#: levels and sparse top-k) plus parameterized zoo variants, accepted
#: by make_quantizer but not part of the main study grid
EXTENSION_SCHEME_PREFIXES = ("aqsgd", "topk", "terngrad")

#: concrete parameter syntax per extension prefix, quoted verbatim by
#: the unknown-scheme error so callers see how to spell a variant
EXTENSION_SCHEME_EXAMPLES = (
    "aqsgd<bits> (Lloyd-Max levels, e.g. 'aqsgd4')",
    "topk<density> (sparse top-k, e.g. 'topk0.01' keeps 1%)",
    "terngrad<clip> (clipped ternary, e.g. 'terngrad2.5' clips at "
    "2.5 sigma)",
)


def make_quantizer(name: str, bucket_size: int | None = None, **kwargs) -> Quantizer:
    """Construct a quantizer from its paper-style scheme name.

    Args:
        name: one of :data:`SCHEME_NAMES`.
        bucket_size: overrides the scheme's tuned default bucket size
            (ignored by "32bit" and column-wise "1bit").
        **kwargs: forwarded to the scheme constructor (e.g. ``norm`` or
            ``variant`` for QSGD).
    """
    if name == "32bit":
        return FullPrecision()
    if name == "1bit":
        return OneBitSgd()
    if name == "1bit*":
        if bucket_size is None:
            return OneBitSgdReshaped()
        return OneBitSgdReshaped(bucket_size=bucket_size)
    if name.startswith("qsgd") and name[len("qsgd"):].isdigit():
        bits = int(name[len("qsgd"):])
        return Qsgd(bits, bucket_size=bucket_size, **kwargs)
    if name.startswith("aqsgd") and name[len("aqsgd"):].isdigit():
        bits = int(name[len("aqsgd"):])
        if bucket_size is None:
            return AdaptiveQsgd(bits, **kwargs)
        return AdaptiveQsgd(bits, bucket_size=bucket_size, **kwargs)
    if name.startswith("topk"):
        try:
            density = float(name[len("topk"):])
        except ValueError:
            density = None
        if density is not None:
            return TopK(density, **kwargs)
    if name == "terngrad":
        return TernGrad(bucket_size=bucket_size, **kwargs)
    if name.startswith("terngrad"):
        try:
            clip = float(name[len("terngrad"):])
        except ValueError:
            clip = None
        if clip is not None:
            return TernGrad(bucket_size=bucket_size, clip=clip, **kwargs)
    if name == "dettmers8":
        return Dettmers8("tree", bucket_size=bucket_size, **kwargs)
    if name == "dettmers8c":
        return Dettmers8("column", bucket_size=bucket_size, **kwargs)
    raise ValueError(
        f"unknown quantizer {name!r}; expected one of {SCHEME_NAMES} "
        "or an extension scheme: "
        + "; ".join(EXTENSION_SCHEME_EXAMPLES)
    )
