"""Scalar loop kernels: the source numba compiles.

These functions are written once and used two ways: the numba backend
wraps them in ``numba.njit(cache=True)``, and the test suite runs them
*uncompiled* on tiny shapes so the loop logic is exercised even where
numba is not installed.  To make both modes produce bit-identical
float32 results, every float constant is an explicit ``np.float32`` and
every narrowing is an explicit cast:

* On numpy scalar operands (uncompiled mode), float32 arithmetic stays
  float32 under NEP 50 promotion; a bare Python literal like ``1.0``
  would also stay float32, but under numba a Python float literal is a
  float64 and would silently promote the whole expression.  Explicit
  ``np.float32`` constants pin both modes to the same arithmetic.
* ``np.int32(x)`` truncates toward zero in both modes; it equals floor
  only for non-negative ``x``, so the grid variant (whose positions can
  round slightly below zero under l2 scaling) corrects it to a true
  floor.
* Stochastic rounding compares the float64 draw against the float32
  probability promoted to float64, exactly as the numpy reference's
  ``rand < prob`` does.

Keep these loops in lockstep with ``_kernels.c`` — they are the same
algorithms in the same operation order.
"""

from __future__ import annotations

import numpy as np

_F0 = np.float32(0.0)
_F1 = np.float32(1.0)
_F2 = np.float32(2.0)
_U1 = np.uint32(1)


def transpose_f32(src, dst):
    """``dst[c * rows + r] = src[r, c]``: F-order flatten of 2-D ``src``."""
    rows, cols = src.shape
    for r in range(rows):
        for c in range(cols):
            dst[c * rows + r] = src[r, c]


def untranspose_f32(flat, out):
    """``out[r, c] = flat[c * rows + r]``: inverse of :func:`transpose_f32`."""
    rows, cols = out.shape
    for r in range(rows):
        for c in range(cols):
            out[r, c] = flat[c * rows + r]


def absmax_rows(buckets, scales):
    """``scales[b] = max |buckets[b, :]|`` (order-independent)."""
    n_buckets, bucket_size = buckets.shape
    for b in range(n_buckets):
        m = _F0
        for j in range(bucket_size):
            v = buckets[b, j]
            av = -v if v < _F0 else v
            if av > m:
                m = av
        scales[b] = m


def quant_sign(buckets, scales, bits, rand, codes):
    """Sign-variant QSGD: ``(level << 1) | signbit`` per element."""
    n_buckets, bucket_size = buckets.shape
    s = np.int32((1 << (bits - 1)) - 1)
    sf = np.float32(s)
    for b in range(n_buckets):
        scale = scales[b]
        if scale == _F0:
            for j in range(bucket_size):
                codes[b, j] = 0
            continue
        for j in range(bucket_size):
            v = buckets[b, j]
            av = -v if v < _F0 else v
            ratio = av / scale
            if ratio > _F1:
                ratio = _F1
            ratio = ratio * sf
            low = np.int32(ratio)
            prob = ratio - np.float32(low)
            level = low + np.int32(rand[b, j] < np.float64(prob))
            if level > s:
                level = s
            codes[b, j] = (np.uint32(level) << _U1) | np.uint32(v < _F0)


def quant_grid(buckets, scales, bits, rand, codes):
    """Grid-variant QSGD: stochastic index into the level endpoints."""
    n_buckets, bucket_size = buckets.shape
    top = np.int32((1 << bits) - 1)
    topf = np.float32(top)
    for b in range(n_buckets):
        scale = scales[b]
        step = _F2 * scale
        step = step / topf
        # step can underflow to zero for subnormal scales; the numpy
        # reference substitutes 1.0 for non-positive steps
        safe = step if step > _F0 else _F1
        if scale == _F0:
            for j in range(bucket_size):
                codes[b, j] = 0
            continue
        for j in range(bucket_size):
            pos = buckets[b, j] + scale
            pos = pos / safe
            low = np.int32(pos)
            if pos < np.float32(low):
                low = low - np.int32(1)
            prob = pos - np.float32(low)
            idx = low + np.int32(rand[b, j] < np.float64(prob))
            if idx < 0:
                idx = np.int32(0)
            if idx > top:
                idx = top
            codes[b, j] = np.uint32(idx)


def pack_words(codes, count, slot, words, n_words):
    """``words[w] = OR_l codes[w*per_word + l] << (l * slot)``."""
    per_word = 32 // slot
    full = count // per_word
    for w in range(full):
        base = w * per_word
        acc = np.uint32(0)
        for l in range(per_word):  # noqa: E741
            acc = acc | (codes[base + l] << np.uint32(l * slot))
        words[w] = acc
    if full < n_words:
        base = full * per_word
        tail = count - base
        acc = np.uint32(0)
        for l in range(tail):  # noqa: E741
            acc = acc | (codes[base + l] << np.uint32(l * slot))
        words[full] = acc


def unpack_words(words, n_words, slot, codes):
    """Inverse of :func:`pack_words`; writes every lane of every word."""
    per_word = 32 // slot
    mask = np.uint32((1 << slot) - 1) if slot < 32 else np.uint32(0xFFFFFFFF)
    for w in range(n_words):
        word = words[w]
        base = w * per_word
        for l in range(per_word):  # noqa: E741
            codes[base + l] = (word >> np.uint32(l * slot)) & mask


def dequant_sign(codes, scales, bits, out, accumulate):
    """``((1 - 2*signbit) * level) / s * scale``; set or accumulate."""
    n_buckets, bucket_size = codes.shape
    sf = np.float32((1 << (bits - 1)) - 1)
    for b in range(n_buckets):
        scale = scales[b]
        for j in range(bucket_size):
            code = codes[b, j]
            level = np.float32(code >> _U1)
            v = _F1 - _F2 * np.float32(code & _U1)
            v = v * level
            v = v / sf
            v = v * scale
            if accumulate:
                out[b, j] = out[b, j] + v
            else:
                out[b, j] = v


def dequant_grid(codes, scales, bits, out, accumulate):
    """``code * step - scale`` (zero buckets decode to +0); set or add."""
    n_buckets, bucket_size = codes.shape
    topf = np.float32((1 << bits) - 1)
    for b in range(n_buckets):
        scale = scales[b]
        step = _F2 * scale
        step = step / topf
        if scale == _F0:
            for j in range(bucket_size):
                if accumulate:
                    out[b, j] = out[b, j] + _F0
                else:
                    out[b, j] = _F0
            continue
        for j in range(bucket_size):
            v = np.float32(codes[b, j]) * step
            v = v - scale
            if accumulate:
                out[b, j] = out[b, j] + v
            else:
                out[b, j] = v
