"""Kernel backend registry for the quantization hot path.

The four hottest kernels of the encode/exchange path — bitpack
pack/unpack, QSGD stochastic encode, QSGD decode, and the fused
decode-accumulate behind :class:`~repro.quantization.base.
BucketSumDecoder` — are provided by interchangeable *backends* with
identical signatures and byte-for-byte identical output:

``numba``
    ``@njit(cache=True)``-compiled loop kernels (:mod:`._numba`).
    Available when the optional ``numba`` dependency is installed
    (``pip install repro[kernels]``).
``cext``
    ``_kernels.c`` compiled on first use with the system C compiler
    and called through ctypes (:mod:`._cext`).  Available when a
    working ``cc`` is on PATH.
``numpy``
    The pure-numpy reference (:mod:`._numpy`); always available.
    This backend defines the bit pattern the other two must match.

Selection happens once, on first use: the ``REPRO_KERNELS``
environment variable (``numba``, ``cext`` or ``numpy``) forces a
backend — raising immediately if the forced backend cannot load — and
without it the registry auto-selects the first available of
``numba`` → ``cext`` → ``numpy``, falling through gracefully when a
compiled backend is absent.  Callers dispatch per call via
:func:`active`, so the test suite can pin backends with
:func:`use_backend` without re-importing anything.

Bit-identity across backends is enforced by
``tests/quantization/test_kernels.py`` over the full
scheme×bits×bucket×shape grid, including the RNG-consuming stochastic
rounding: the uniform draws are made by the caller with the run's
:class:`numpy.random.Generator` and passed *into* the kernels, so
every backend consumes the identical stream.
"""

from __future__ import annotations

import importlib
import os
from contextlib import contextmanager

__all__ = [
    "active",
    "backend_name",
    "available_backends",
    "set_backend",
    "use_backend",
    "BACKEND_ORDER",
]

#: auto-selection preference, fastest first
BACKEND_ORDER = ("numba", "cext", "numpy")

_active = None
_load_errors: dict[str, Exception] = {}


def _try_load(name: str):
    try:
        return importlib.import_module(f"._{name}", __name__)
    except Exception as exc:  # missing dep / no compiler / build failure
        _load_errors[name] = exc
        return None


def _select():
    forced = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if forced:
        if forced not in BACKEND_ORDER:
            raise ValueError(
                f"REPRO_KERNELS={forced!r}: unknown backend "
                f"(choose from {', '.join(BACKEND_ORDER)})"
            )
        module = _try_load(forced)
        if module is None:
            raise RuntimeError(
                f"REPRO_KERNELS={forced!r} requested but the backend "
                f"failed to load: {_load_errors[forced]!r}"
            )
        return module
    for name in BACKEND_ORDER:
        module = _try_load(name)
        if module is not None:
            return module
    raise AssertionError("unreachable: the numpy backend always imports")


def active():
    """The selected backend module (selects on first call, then cached)."""
    global _active
    if _active is None:
        _active = _select()
    return _active


def backend_name() -> str:
    """Name of the active backend: ``"numba"``, ``"cext"`` or ``"numpy"``."""
    return active().name


def available_backends() -> tuple[str, ...]:
    """Backends that load in this environment (probes each once)."""
    return tuple(n for n in BACKEND_ORDER if _try_load(n) is not None)


def set_backend(name: str) -> str:
    """Force ``name`` as the active backend; returns the previous name.

    Test/bench hook: raises if the backend cannot load.  Prefer
    :func:`use_backend` for scoped switches.
    """
    global _active
    if name not in BACKEND_ORDER:
        raise ValueError(
            f"unknown kernel backend {name!r} "
            f"(choose from {', '.join(BACKEND_ORDER)})"
        )
    module = _try_load(name)
    if module is None:
        raise RuntimeError(
            f"kernel backend {name!r} is not available here: "
            f"{_load_errors[name]!r}"
        )
    previous = backend_name()
    _active = module
    return previous


@contextmanager
def use_backend(name: str):
    """Context manager pinning the active backend within a ``with`` block."""
    previous = set_backend(name)
    try:
        yield active()
    finally:
        set_backend(previous)
