/* Compiled hot-path kernels for the quantization package.
 *
 * Built at import time by `repro.quantization.kernels._cext` with
 *
 *   cc -O3 -march=native -ffp-contract=off -fno-math-errno
 *      -fno-trapping-math -shared -fPIC
 *
 * Bit-identity with the numpy reference backend is the contract every
 * function here must honour, so the float32 arithmetic mirrors the
 * numpy op sequence exactly:
 *
 *  - `-ffp-contract=off` is mandatory: fusing `acc += v * scale` into
 *    an FMA would skip the intermediate rounding numpy performs.
 *  - Stochastic rounding compares the pre-drawn float64 uniform draw
 *    against the float32 probability promoted to double, exactly as
 *    numpy's `rand < prob` does.  The draws are passed in, never
 *    generated here, so compiled and reference backends consume the
 *    same RNG stream.
 *  - `(int32_t)x` truncation replaces floorf only where the operand is
 *    provably non-negative (sign-variant ratios); the grid variant can
 *    see slightly negative positions under l2 scaling, so it corrects
 *    the truncation to a true floor.  Both forms vectorize where the
 *    libm calls do not.
 *  - l2-norm scale *reduction* is not implemented here on purpose:
 *    numpy's pairwise summation order is part of the reference bit
 *    pattern, so the python wrapper computes l2 scales with numpy and
 *    passes them in.  The infinity norm is order-independent.
 */

#include <stdint.h>

/* ------------------------------------------------------------------ */
/* Bucket permutation: F-order flatten of a C-contiguous matrix        */
/* ------------------------------------------------------------------ */

#if defined(__AVX__)
#include <immintrin.h>

/* 8x8 float transpose of one register block */
static inline void
transpose_block8(const float *s, int64_t scols, float *d, int64_t dcols)
{
    __m256 x0 = _mm256_loadu_ps(s + 0 * scols);
    __m256 x1 = _mm256_loadu_ps(s + 1 * scols);
    __m256 x2 = _mm256_loadu_ps(s + 2 * scols);
    __m256 x3 = _mm256_loadu_ps(s + 3 * scols);
    __m256 x4 = _mm256_loadu_ps(s + 4 * scols);
    __m256 x5 = _mm256_loadu_ps(s + 5 * scols);
    __m256 x6 = _mm256_loadu_ps(s + 6 * scols);
    __m256 x7 = _mm256_loadu_ps(s + 7 * scols);
    __m256 t0 = _mm256_unpacklo_ps(x0, x1);
    __m256 t1 = _mm256_unpackhi_ps(x0, x1);
    __m256 t2 = _mm256_unpacklo_ps(x2, x3);
    __m256 t3 = _mm256_unpackhi_ps(x2, x3);
    __m256 t4 = _mm256_unpacklo_ps(x4, x5);
    __m256 t5 = _mm256_unpackhi_ps(x4, x5);
    __m256 t6 = _mm256_unpacklo_ps(x6, x7);
    __m256 t7 = _mm256_unpackhi_ps(x6, x7);
    __m256 u0 = _mm256_shuffle_ps(t0, t2, 0x44);
    __m256 u1 = _mm256_shuffle_ps(t0, t2, 0xEE);
    __m256 u2 = _mm256_shuffle_ps(t1, t3, 0x44);
    __m256 u3 = _mm256_shuffle_ps(t1, t3, 0xEE);
    __m256 u4 = _mm256_shuffle_ps(t4, t6, 0x44);
    __m256 u5 = _mm256_shuffle_ps(t4, t6, 0xEE);
    __m256 u6 = _mm256_shuffle_ps(t5, t7, 0x44);
    __m256 u7 = _mm256_shuffle_ps(t5, t7, 0xEE);
    _mm256_storeu_ps(d + 0 * dcols, _mm256_permute2f128_ps(u0, u4, 0x20));
    _mm256_storeu_ps(d + 1 * dcols, _mm256_permute2f128_ps(u1, u5, 0x20));
    _mm256_storeu_ps(d + 2 * dcols, _mm256_permute2f128_ps(u2, u6, 0x20));
    _mm256_storeu_ps(d + 3 * dcols, _mm256_permute2f128_ps(u3, u7, 0x20));
    _mm256_storeu_ps(d + 4 * dcols, _mm256_permute2f128_ps(u0, u4, 0x31));
    _mm256_storeu_ps(d + 5 * dcols, _mm256_permute2f128_ps(u1, u5, 0x31));
    _mm256_storeu_ps(d + 6 * dcols, _mm256_permute2f128_ps(u2, u6, 0x31));
    _mm256_storeu_ps(d + 7 * dcols, _mm256_permute2f128_ps(u3, u7, 0x31));
}
#endif

/* dst[c * rows + r] = src[r * cols + c]: dst is the (cols, rows)
 * transpose of the C-contiguous (rows, cols) src.  A pure permutation
 * copy, so there is no arithmetic to keep bit-identical.  Tiled so
 * both streams stay cache-resident; the AVX path transposes 8x8
 * register blocks inside each tile. */
void repro_transpose_f32(const float *restrict src, int64_t rows,
                         int64_t cols, float *restrict dst)
{
    const int64_t TILE = 64;
    for (int64_t r0 = 0; r0 < rows; r0 += TILE) {
        int64_t r1 = r0 + TILE < rows ? r0 + TILE : rows;
        for (int64_t c0 = 0; c0 < cols; c0 += TILE) {
            int64_t c1 = c0 + TILE < cols ? c0 + TILE : cols;
            int64_t r = r0, c;
#if defined(__AVX__)
            for (; r + 8 <= r1; r += 8) {
                for (c = c0; c + 8 <= c1; c += 8)
                    transpose_block8(src + r * cols + c, cols,
                                     dst + c * rows + r, rows);
                for (; c < c1; c++)
                    for (int64_t rr = r; rr < r + 8; rr++)
                        dst[c * rows + rr] = src[rr * cols + c];
            }
#endif
            for (; r < r1; r++)
                for (c = c0; c < c1; c++)
                    dst[c * rows + r] = src[r * cols + c];
        }
    }
}

/* ------------------------------------------------------------------ */
/* Per-bucket infinity norm                                            */
/* ------------------------------------------------------------------ */

/* scales[b] = max_j |buckets[b, j]| over contiguous rows.  Max and
 * abs are order-independent, so any vectorization is bit-safe — but
 * gcc will not auto-vectorize a conditional float max reduction, so
 * the AVX path does it by hand: abs is a sign-bit mask (exact) and
 * the lane-wise max commutes with the final horizontal fold. */
void repro_absmax_rows(const float *restrict buckets, int64_t n_buckets,
                       int64_t bucket_size, float *restrict scales)
{
    for (int64_t b = 0; b < n_buckets; b++) {
        const float *row = buckets + b * bucket_size;
        float m = 0.0f;
        int64_t j = 0;
#if defined(__AVX__)
        if (bucket_size >= 8) {
            const __m256 absmask =
                _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
            __m256 vm = _mm256_setzero_ps();
            for (; j + 8 <= bucket_size; j += 8)
                vm = _mm256_max_ps(
                    vm, _mm256_and_ps(_mm256_loadu_ps(row + j), absmask));
            float lanes[8];
            _mm256_storeu_ps(lanes, vm);
            for (int k = 0; k < 8; k++)
                m = lanes[k] > m ? lanes[k] : m;
        }
#endif
        for (; j < bucket_size; j++) {
            float av = row[j] < 0.0f ? -row[j] : row[j];
            m = av > m ? av : m;
        }
        scales[b] = m;
    }
}

/* ------------------------------------------------------------------ */
/* QSGD stochastic quantization (codes from buckets + scales + draws)  */
/* ------------------------------------------------------------------ */

/* Sign variant: code = (level << 1) | signbit with level the
 * stochastic rounding of clip(|v|/scale, 0, 1) * s.  Mirrors
 * Qsgd._encode_sign op for op; `ratio` stays non-negative so
 * truncation is floor. */
void repro_quant_sign(const float *restrict buckets,
                      const float *restrict scales, int64_t n_buckets,
                      int64_t bucket_size, int64_t bits,
                      const double *restrict rand,
                      uint32_t *restrict codes)
{
    const int32_t s = (1 << (bits - 1)) - 1;
    const float sf = (float)s;
    for (int64_t b = 0; b < n_buckets; b++) {
        const float scale = scales[b];
        const float safe = scale > 0.0f ? scale : 1.0f;
        const float *pb = buckets + b * bucket_size;
        const double *pr = rand + b * bucket_size;
        uint32_t *pc = codes + b * bucket_size;
        if (scale == 0.0f) {
            for (int64_t j = 0; j < bucket_size; j++)
                pc[j] = 0u;
            continue;
        }
        for (int64_t j = 0; j < bucket_size; j++) {
            float v = pb[j];
            float av = v < 0.0f ? -v : v;
            float ratio = av / safe;
            ratio = ratio > 1.0f ? 1.0f : ratio;
            ratio = ratio * sf;
            int32_t low = (int32_t)ratio;
            float prob = ratio - (float)low;
            int32_t level = low + (pr[j] < (double)prob);
            level = level > s ? s : level;
            pc[j] = ((uint32_t)level << 1) | (uint32_t)(v < 0.0f);
        }
    }
}

/* Grid variant: code indexes the 2^bits endpoints of [-scale, scale].
 * `position` can round slightly below zero under l2 scaling, so the
 * truncation is corrected to a true floor before the clip. */
void repro_quant_grid(const float *restrict buckets,
                      const float *restrict scales, int64_t n_buckets,
                      int64_t bucket_size, int64_t bits,
                      const double *restrict rand,
                      uint32_t *restrict codes)
{
    const int32_t top = (1 << bits) - 1;
    const float topf = (float)top;
    for (int64_t b = 0; b < n_buckets; b++) {
        const float scale = scales[b];
        float step = 2.0f * scale;
        step = step / topf;
        const float safe = step > 0.0f ? step : 1.0f;
        const float *pb = buckets + b * bucket_size;
        const double *pr = rand + b * bucket_size;
        uint32_t *pc = codes + b * bucket_size;
        if (scale == 0.0f) {
            for (int64_t j = 0; j < bucket_size; j++)
                pc[j] = 0u;
            continue;
        }
        for (int64_t j = 0; j < bucket_size; j++) {
            float pos = pb[j] + scale;
            pos = pos / safe;
            int32_t low = (int32_t)pos;
            low -= pos < (float)low;
            float prob = pos - (float)low;
            int32_t idx = low + (pr[j] < (double)prob);
            idx = idx < 0 ? 0 : idx;
            idx = idx > top ? top : idx;
            pc[j] = (uint32_t)idx;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Bit packing (little-endian lanes inside uint32 words)               */
/* ------------------------------------------------------------------ */

/* words[w] = OR_l codes[w * per_word + l] << (l * slot).  OR order is
 * irrelevant to the result, matching the numpy lane reduce. */
void repro_pack(const uint32_t *restrict codes, int64_t count,
                int64_t slot, uint32_t *restrict words, int64_t n_words)
{
    const int64_t per_word = 32 / slot;
    const int64_t full = count / per_word;
    for (int64_t w = 0; w < full; w++) {
        const uint32_t *pc = codes + w * per_word;
        uint32_t acc = 0u;
        for (int64_t l = 0; l < per_word; l++)
            acc |= pc[l] << (uint32_t)(l * slot);
        words[w] = acc;
    }
    if (full < n_words) {
        const uint32_t *pc = codes + full * per_word;
        const int64_t tail = count - full * per_word;
        uint32_t acc = 0u;
        for (int64_t l = 0; l < tail; l++)
            acc |= pc[l] << (uint32_t)(l * slot);
        words[full] = acc;
    }
}

/* codes[w * per_word + l] = (words[w] >> (l * slot)) & mask; writes
 * every lane of every word (n_words * per_word codes), exactly like
 * the numpy lane scratch the caller takes a view of. */
void repro_unpack(const uint32_t *restrict words, int64_t n_words,
                  int64_t slot, uint32_t *restrict codes)
{
    const int64_t per_word = 32 / slot;
    const uint32_t mask =
        slot < 32 ? (uint32_t)((1u << slot) - 1u) : 0xFFFFFFFFu;
    for (int64_t l = 0; l < per_word; l++) {
        const uint32_t sh = (uint32_t)(l * slot);
        uint32_t *pc = codes + l;
        for (int64_t w = 0; w < n_words; w++)
            pc[w * per_word] = (words[w] >> sh) & mask;
    }
}

/* ------------------------------------------------------------------ */
/* QSGD decode (+ fused accumulate) in the contiguous bucket layout    */
/* ------------------------------------------------------------------ */

/* Sign variant: v = ((1 - 2 * signbit) * level) / s * scale, the
 * exact numpy op order.  With accumulate the add happens against the
 * caller's running sum, giving BucketSumDecoder its fused
 * decode-accumulate without materializing per-rank tensors. */
#define DEQUANT_SIGN_BODY(STORE)                                       \
    const int32_t s = (1 << (bits - 1)) - 1;                           \
    const float sf = (float)s;                                         \
    for (int64_t b = 0; b < n_buckets; b++) {                          \
        const float scale = scales[b];                                 \
        const uint32_t *pc = codes + b * bucket_size;                  \
        float *po = out + b * bucket_size;                             \
        for (int64_t j = 0; j < bucket_size; j++) {                    \
            uint32_t code = pc[j];                                     \
            float level = (float)(code >> 1);                          \
            float v = 1.0f - 2.0f * (float)(code & 1u);                \
            v = v * level;                                             \
            v = v / sf;                                                \
            v = v * scale;                                             \
            STORE;                                                     \
        }                                                              \
    }

void repro_dequant_sign(const uint32_t *restrict codes,
                        const float *restrict scales, int64_t n_buckets,
                        int64_t bucket_size, int64_t bits,
                        float *restrict out)
{
    DEQUANT_SIGN_BODY(po[j] = v)
}

void repro_dequant_sign_acc(const uint32_t *restrict codes,
                            const float *restrict scales,
                            int64_t n_buckets, int64_t bucket_size,
                            int64_t bits, float *restrict out)
{
    DEQUANT_SIGN_BODY(po[j] += v)
}

/* Grid variant: v = code * step - scale with step = 2 * scale / top;
 * zero-scale buckets decode to exact +0.0 like the numpy zero mask. */
#define DEQUANT_GRID_BODY(STORE_V, STORE_Z)                            \
    const float topf = (float)((1 << bits) - 1);                       \
    for (int64_t b = 0; b < n_buckets; b++) {                          \
        const float scale = scales[b];                                 \
        float step = 2.0f * scale;                                     \
        step = step / topf;                                            \
        const uint32_t *pc = codes + b * bucket_size;                  \
        float *po = out + b * bucket_size;                             \
        if (scale == 0.0f) {                                           \
            for (int64_t j = 0; j < bucket_size; j++) {                \
                STORE_Z;                                               \
            }                                                          \
            continue;                                                  \
        }                                                              \
        for (int64_t j = 0; j < bucket_size; j++) {                    \
            float v = (float)pc[j] * step;                             \
            v = v - scale;                                             \
            STORE_V;                                                   \
        }                                                              \
    }

void repro_dequant_grid(const uint32_t *restrict codes,
                        const float *restrict scales, int64_t n_buckets,
                        int64_t bucket_size, int64_t bits,
                        float *restrict out)
{
    DEQUANT_GRID_BODY(po[j] = v, po[j] = 0.0f)
}

void repro_dequant_grid_acc(const uint32_t *restrict codes,
                            const float *restrict scales,
                            int64_t n_buckets, int64_t bucket_size,
                            int64_t bits, float *restrict out)
{
    DEQUANT_GRID_BODY(po[j] += v, po[j] += 0.0f)
}

/* ------------------------------------------------------------------ */
/* Fused quantize+pack / unpack+dequantize                             */
/* ------------------------------------------------------------------ */

/* The QSGD code plane is wire-intermediate only: the encoder packs it
 * immediately, the decoder unpacks it immediately.  The fused kernels
 * stage codes through a small stack tile that stays in L1 instead of
 * round-tripping the full uint32 plane (4 bytes/element each way)
 * through memory.  The arithmetic is the *same instructions in the
 * same order* as the unfused kernels above — only the staging buffer
 * changes — so the packed words and decoded floats are bit-identical.
 *
 * Callers guarantee `bucket_size % per_word == 0` (true for every
 * tuned bucket size; the python wrappers fall back to the composed
 * kernels otherwise), so each bucket starts on a word boundary.  The
 * tile length is a multiple of every per_word in {1,2,4,8,16,32}. */
#define REPRO_FUSE_TILE 512

#define QUANT_PACK_FRAME(QUANT_STMT)                                   \
    const int64_t per_word = 32 / slot;                                \
    uint32_t tile[REPRO_FUSE_TILE];                                    \
    for (int64_t b = 0; b < n_buckets; b++) {                          \
        const float scale = scales[b];                                 \
        const float *pb = buckets + b * bucket_size;                   \
        const double *pr = rand + b * bucket_size;                     \
        uint32_t *pw = words + (b * bucket_size) / per_word;           \
        if (scale == 0.0f) {                                           \
            /* zero codes pack to zero words */                        \
            for (int64_t w = 0; w < bucket_size / per_word; w++)       \
                pw[w] = 0u;                                            \
            continue;                                                  \
        }                                                              \
        BUCKET_PREP;                                                   \
        for (int64_t j0 = 0; j0 < bucket_size; j0 += REPRO_FUSE_TILE) {\
            const int64_t chunk = bucket_size - j0 < REPRO_FUSE_TILE   \
                                      ? bucket_size - j0               \
                                      : REPRO_FUSE_TILE;               \
            for (int64_t j = 0; j < chunk; j++) {                      \
                QUANT_STMT;                                            \
            }                                                          \
            uint32_t *cw = pw + j0 / per_word;                         \
            for (int64_t w = 0; w < chunk / per_word; w++) {           \
                const uint32_t *pc = tile + w * per_word;              \
                uint32_t acc = 0u;                                     \
                for (int64_t l = 0; l < per_word; l++)                 \
                    acc |= pc[l] << (uint32_t)(l * slot);              \
                cw[w] = acc;                                           \
            }                                                          \
        }                                                              \
    }

void repro_quant_sign_pack(const float *restrict buckets,
                           const float *restrict scales,
                           int64_t n_buckets, int64_t bucket_size,
                           int64_t bits, int64_t slot,
                           const double *restrict rand,
                           uint32_t *restrict words)
{
    const int32_t s = (1 << (bits - 1)) - 1;
    const float sf = (float)s;
#define BUCKET_PREP const float safe = scale > 0.0f ? scale : 1.0f
    QUANT_PACK_FRAME({
        float v = pb[j0 + j];
        float av = v < 0.0f ? -v : v;
        float ratio = av / safe;
        ratio = ratio > 1.0f ? 1.0f : ratio;
        ratio = ratio * sf;
        int32_t low = (int32_t)ratio;
        float prob = ratio - (float)low;
        int32_t level = low + (pr[j0 + j] < (double)prob);
        level = level > s ? s : level;
        tile[j] = ((uint32_t)level << 1) | (uint32_t)(v < 0.0f);
    })
#undef BUCKET_PREP
}

void repro_quant_grid_pack(const float *restrict buckets,
                           const float *restrict scales,
                           int64_t n_buckets, int64_t bucket_size,
                           int64_t bits, int64_t slot,
                           const double *restrict rand,
                           uint32_t *restrict words)
{
    const int32_t top = (1 << bits) - 1;
    const float topf = (float)top;
#define BUCKET_PREP                                                    \
    float step = 2.0f * scale;                                         \
    step = step / topf;                                                \
    const float safe = step > 0.0f ? step : 1.0f
    QUANT_PACK_FRAME({
        float pos = pb[j0 + j] + scale;
        pos = pos / safe;
        int32_t low = (int32_t)pos;
        low -= pos < (float)low;
        float prob = pos - (float)low;
        int32_t idx = low + (pr[j0 + j] < (double)prob);
        idx = idx < 0 ? 0 : idx;
        idx = idx > top ? top : idx;
        tile[j] = (uint32_t)idx;
    })
#undef BUCKET_PREP
}

/* Unpack one word-aligned chunk of a bucket into the tile, exactly
 * like repro_unpack's per-lane passes (the tile is the lane scratch). */
#define UNPACK_CHUNK                                                   \
    do {                                                               \
        const uint32_t *cw = pw + j0 / per_word;                       \
        const int64_t cwords = chunk / per_word;                       \
        for (int64_t l = 0; l < per_word; l++) {                       \
            const uint32_t sh = (uint32_t)(l * slot);                  \
            uint32_t *pc = tile + l;                                   \
            for (int64_t w = 0; w < cwords; w++)                       \
                pc[w * per_word] = (cw[w] >> sh) & mask;               \
        }                                                              \
    } while (0)

#define WORDS_DEQUANT_SIGN_BODY(STORE)                                 \
    const int32_t s = (1 << (bits - 1)) - 1;                           \
    const float sf = (float)s;                                         \
    const int64_t per_word = 32 / slot;                                \
    const uint32_t mask =                                              \
        slot < 32 ? (uint32_t)((1u << slot) - 1u) : 0xFFFFFFFFu;       \
    uint32_t tile[REPRO_FUSE_TILE];                                    \
    for (int64_t b = 0; b < n_buckets; b++) {                          \
        const float scale = scales[b];                                 \
        const uint32_t *pw = words + (b * bucket_size) / per_word;     \
        float *po = out + b * bucket_size;                             \
        for (int64_t j0 = 0; j0 < bucket_size; j0 += REPRO_FUSE_TILE) {\
            const int64_t chunk = bucket_size - j0 < REPRO_FUSE_TILE   \
                                      ? bucket_size - j0               \
                                      : REPRO_FUSE_TILE;               \
            UNPACK_CHUNK;                                              \
            for (int64_t j = 0; j < chunk; j++) {                      \
                uint32_t code = tile[j];                               \
                float level = (float)(code >> 1);                      \
                float v = 1.0f - 2.0f * (float)(code & 1u);            \
                v = v * level;                                         \
                v = v / sf;                                            \
                v = v * scale;                                         \
                STORE;                                                 \
            }                                                          \
        }                                                              \
    }

void repro_words_dequant_sign(const uint32_t *restrict words,
                              const float *restrict scales,
                              int64_t n_buckets, int64_t bucket_size,
                              int64_t bits, int64_t slot,
                              float *restrict out)
{
    WORDS_DEQUANT_SIGN_BODY(po[j0 + j] = v)
}

void repro_words_dequant_sign_acc(const uint32_t *restrict words,
                                  const float *restrict scales,
                                  int64_t n_buckets, int64_t bucket_size,
                                  int64_t bits, int64_t slot,
                                  float *restrict out)
{
    WORDS_DEQUANT_SIGN_BODY(po[j0 + j] += v)
}

/* Grid variant: zero-scale buckets skip the unpack entirely — the
 * reference zero mask overwrites whatever the codes decode to. */
#define WORDS_DEQUANT_GRID_BODY(STORE_V, STORE_Z)                      \
    const float topf = (float)((1 << bits) - 1);                       \
    const int64_t per_word = 32 / slot;                                \
    const uint32_t mask =                                              \
        slot < 32 ? (uint32_t)((1u << slot) - 1u) : 0xFFFFFFFFu;       \
    uint32_t tile[REPRO_FUSE_TILE];                                    \
    for (int64_t b = 0; b < n_buckets; b++) {                          \
        const float scale = scales[b];                                 \
        float step = 2.0f * scale;                                     \
        step = step / topf;                                            \
        const uint32_t *pw = words + (b * bucket_size) / per_word;     \
        float *po = out + b * bucket_size;                             \
        if (scale == 0.0f) {                                           \
            for (int64_t j = 0; j < bucket_size; j++) {                \
                STORE_Z;                                               \
            }                                                          \
            continue;                                                  \
        }                                                              \
        for (int64_t j0 = 0; j0 < bucket_size; j0 += REPRO_FUSE_TILE) {\
            const int64_t chunk = bucket_size - j0 < REPRO_FUSE_TILE   \
                                      ? bucket_size - j0               \
                                      : REPRO_FUSE_TILE;               \
            UNPACK_CHUNK;                                              \
            for (int64_t j = 0; j < chunk; j++) {                      \
                float v = (float)tile[j] * step;                       \
                v = v - scale;                                         \
                STORE_V;                                               \
            }                                                          \
        }                                                              \
    }

void repro_words_dequant_grid(const uint32_t *restrict words,
                              const float *restrict scales,
                              int64_t n_buckets, int64_t bucket_size,
                              int64_t bits, int64_t slot,
                              float *restrict out)
{
    WORDS_DEQUANT_GRID_BODY(po[j0 + j] = v, po[j] = 0.0f)
}

void repro_words_dequant_grid_acc(const uint32_t *restrict words,
                                  const float *restrict scales,
                                  int64_t n_buckets, int64_t bucket_size,
                                  int64_t bits, int64_t slot,
                                  float *restrict out)
{
    WORDS_DEQUANT_GRID_BODY(po[j0 + j] += v, po[j] += 0.0f)
}
