"""Pure-numpy reference kernel backend.

This module *is* the specification: every other backend must reproduce
its output byte-for-byte, including float32 rounding and signed zeros.
The implementations are the vectorized op sequences that previously
lived inline in :mod:`repro.quantization.bitpack` and
:mod:`repro.quantization.qsgd`; moving them here (unchanged) lets the
compiled backends be validated against a single reference.

Two arithmetic-order rules every port must follow:

* Each numpy ufunc call is one float32 rounding step.  A port must
  perform the same steps in the same order — e.g. the sign-variant
  decode is ``((1 - 2*signbit) * level) / s * scale``, three separate
  roundings, never a fused multiply-add.
* Stochastic rounding compares the float64 uniform draw against the
  float32 probability promoted to float64 (numpy's ``rand < prob``).
  The draws are always passed in by the caller, never generated here,
  so all backends consume the RNG stream identically.

l2-norm bucket scales are deliberately *not* part of the backend
interface: numpy's pairwise summation order is part of the reference
bit pattern, so :mod:`repro.quantization.qsgd` computes l2 scales with
numpy for every backend.  The infinity norm is order-independent and
is implemented by each backend.
"""

from __future__ import annotations

import numpy as np

name = "numpy"

_WORD_BITS = 32
_DIVISORS_OF_32 = (1, 2, 4, 8, 16, 32)
#: slot width -> codes per 32-bit word
_LANES_FOR_SLOT = {slot: _WORD_BITS // slot for slot in _DIVISORS_OF_32}
#: slot width -> uint32 shift table for the lanes of one word
_SHIFTS_FOR_SLOT = {
    slot: (np.arange(_WORD_BITS // slot, dtype=np.uint32) * slot).astype(
        np.uint32
    )
    for slot in _DIVISORS_OF_32
}
#: slot width -> lane mask
_MASK_FOR_SLOT = {
    slot: np.uint32((1 << slot) - 1) if slot < 32 else np.uint32(0xFFFFFFFF)
    for slot in _DIVISORS_OF_32
}
#: code width (1..32) -> storage slot width; index 0 is a sentinel
_SLOT_FOR_WIDTH = (0,) + tuple(
    next(d for d in _DIVISORS_OF_32 if d >= w) for w in range(1, 33)
)


def _scratch(ws, tag, shape, dtype=np.float32):
    if ws is None:
        return np.empty(shape, dtype=dtype)
    return ws.array(tag, shape, dtype)


# -- bucket permutation -------------------------------------------------


def bucketize(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
    """F-order flatten of ``grad`` into the padded flat buffer ``out``.

    ``out`` is the C-contiguous float32 backing of the
    ``(n_buckets, bucket_size)`` bucket matrix; the tail past
    ``grad.size`` is zeroed (zeros quantize to zero under every scheme,
    so padding never perturbs the reconstruction).
    """
    n = grad.size
    flat = out.reshape(-1)
    if n:
        flat[:n].reshape(grad.shape[::-1])[...] = grad.T
    flat[n:] = 0.0
    return out


def unbucketize(
    buckets: np.ndarray,
    shape: tuple[int, ...],
    out: np.ndarray,
    accumulate: bool = False,
) -> np.ndarray:
    """Inverse permutation: bucket layout back to ``shape``, into ``out``."""
    n = int(np.prod(shape)) if shape else 1
    # same elements as writing `buckets` into `out.T`, but oriented so
    # the contiguous operand is the destination (strided reads are
    # roughly 2x cheaper than strided read-modify-writes)
    src = buckets.reshape(-1)[:n].reshape(shape[::-1]).T
    if accumulate:
        np.add(out, src, out=out)
    else:
        out[...] = src
    return out


# -- per-bucket infinity norm ------------------------------------------


def absmax_scales(buckets: np.ndarray, scales: np.ndarray, ws) -> np.ndarray | None:
    """``scales[b] = max |buckets[b, :]|``.

    Returns the ``|buckets|`` scratch when the backend materializes one
    (the sign-variant quantizer reuses it), else ``None``.
    """
    work = _scratch(ws, "qsgd.work", buckets.shape)
    np.abs(buckets, out=work)
    work.max(axis=1, out=scales)
    return work


# -- QSGD stochastic quantization --------------------------------------


def _safe_scales(scales: np.ndarray, ws) -> np.ndarray:
    """``where(scales > 0, scales, 1.0)`` without temporaries."""
    positive = _scratch(ws, "qsgd.posmask", scales.shape, bool)
    np.greater(scales, 0.0, out=positive)
    safe = _scratch(ws, "qsgd.safe", scales.shape)
    safe.fill(1.0)
    np.copyto(safe, scales, where=positive)
    return safe


def quantize_sign(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    codes: np.ndarray,
    ws,
    abs_buckets: np.ndarray | None = None,
) -> np.ndarray:
    """Sign-variant QSGD codes: ``(level << 1) | signbit`` per element."""
    s = (1 << (bits - 1)) - 1
    lanes = buckets.shape
    safe = _safe_scales(scales, ws)
    # ratio = clip(|buckets| / safe, 0, 1) * s, computed in place
    if abs_buckets is not None:
        ratio = abs_buckets  # caller already materialized |buckets|
    else:
        ratio = _scratch(ws, "qsgd.ratio", lanes)
        np.abs(buckets, out=ratio)
    np.divide(ratio, safe[:, None], out=ratio)
    np.clip(ratio, 0.0, 1.0, out=ratio)
    np.multiply(ratio, s, out=ratio)
    low = _scratch(ws, "qsgd.low", lanes)
    np.floor(ratio, out=low)
    prob = ratio  # ratio is dead after this: reuse as prob buffer
    np.subtract(ratio, low, out=prob)
    rounded = _scratch(ws, "qsgd.round", lanes, bool)
    np.less(rand, prob, out=rounded)
    level = low
    np.add(low, rounded, out=level)
    np.minimum(level, s, out=level)
    codes[...] = level
    negative = rounded  # bool scratch, reused
    np.less(buckets, 0.0, out=negative)
    np.left_shift(codes, 1, out=codes)
    np.bitwise_or(codes, negative, out=codes)
    zero = _scratch(ws, "qsgd.zeromask", scales.shape, bool)
    np.equal(scales, 0.0, out=zero)
    codes[zero, :] = 0
    return codes


def quantize_grid(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    codes: np.ndarray,
    ws,
) -> np.ndarray:
    """Grid-variant QSGD codes indexing the endpoints of [-scale, scale]."""
    n_levels = 1 << bits
    lanes = buckets.shape
    step = _scratch(ws, "qsgd.step", scales.shape)
    np.multiply(2.0, scales, out=step)
    np.divide(step, n_levels - 1, out=step)
    positive = _scratch(ws, "qsgd.posmask", scales.shape, bool)
    np.greater(step, 0.0, out=positive)
    safe_step = _scratch(ws, "qsgd.safe", scales.shape)
    safe_step.fill(1.0)
    np.copyto(safe_step, step, where=positive)
    position = _scratch(ws, "qsgd.ratio", lanes)
    np.add(buckets, scales[:, None], out=position)
    np.divide(position, safe_step[:, None], out=position)
    low = _scratch(ws, "qsgd.low", lanes)
    np.floor(position, out=low)
    prob = position
    np.subtract(position, low, out=prob)
    rounded = _scratch(ws, "qsgd.round", lanes, bool)
    np.less(rand, prob, out=rounded)
    index = low
    np.add(low, rounded, out=index)
    np.clip(index, 0, n_levels - 1, out=index)
    codes[...] = index
    zero = _scratch(ws, "qsgd.zeromask", scales.shape, bool)
    np.equal(scales, 0.0, out=zero)
    codes[zero, :] = 0
    return codes


# -- bit packing --------------------------------------------------------


def pack(codes: np.ndarray, slot: int, out: np.ndarray, ws) -> np.ndarray:
    """Pack in-range codes into uint32 words (little-endian lanes)."""
    per_word = _LANES_FOR_SLOT[slot]
    n_words = out.shape[0]
    if codes.size == n_words * per_word and codes.dtype == np.uint32:
        # transposed lane layout: each lane's shift writes a contiguous
        # row, and the OR-reduce runs down axis 0 over long contiguous
        # rows, which NumPy vectorizes (~3x faster than the axis-1
        # reduce over per-word groups).  OR is commutative, so the
        # packed words are bit-identical either way.
        lanes = _scratch(ws, "bitpack.packT", (per_word, n_words), np.uint32)
        np.left_shift(
            codes.reshape(n_words, per_word).T,
            _SHIFTS_FOR_SLOT[slot][:, None],
            out=lanes,
        )
        np.bitwise_or.reduce(lanes, axis=0, out=out)
        return out
    lanes = _scratch(ws, "bitpack.pack", (n_words, per_word), np.uint32)
    flat = lanes.reshape(-1)
    flat[: codes.size] = codes
    flat[codes.size:] = 0
    np.left_shift(lanes, _SHIFTS_FOR_SLOT[slot], out=lanes)
    np.bitwise_or.reduce(lanes, axis=1, out=out)
    return out


def unpack(
    words: np.ndarray,
    count: int,
    slot: int,
    ws,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Unpack ``count`` codes; returns ``out`` or a lane-scratch view."""
    per_word = _LANES_FOR_SLOT[slot]
    lanes = _scratch(ws, "bitpack.unpack", (words.size, per_word), np.uint32)
    np.right_shift(words[:, None], _SHIFTS_FOR_SLOT[slot], out=lanes)
    np.bitwise_and(lanes, _MASK_FOR_SLOT[slot], out=lanes)
    view = lanes.reshape(-1)[:count]
    if out is None:
        return view
    out[...] = view
    return out


# -- fused quantize+pack / unpack+dequantize ---------------------------
#
# The QSGD code plane never reaches the wire: the encoder packs it
# immediately and the decoder unpacks it immediately.  The fused entry
# points let compiled backends skip materializing it; the reference
# *defines* them as the composition of the unfused kernels above, so
# "fused == composed" is the bit-identity contract, not an
# approximation.


def quantize_sign_packed(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    words: np.ndarray,
    ws,
    abs_buckets: np.ndarray | None = None,
) -> np.ndarray:
    """Sign-variant codes packed straight into ``words``."""
    codes = _scratch(ws, "qsgd.codes", buckets.shape, np.uint32)
    quantize_sign(buckets, scales, bits, rand, codes, ws, abs_buckets)
    return pack(codes.reshape(-1), _SLOT_FOR_WIDTH[bits], words, ws)


def quantize_grid_packed(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    words: np.ndarray,
    ws,
) -> np.ndarray:
    """Grid-variant codes packed straight into ``words``."""
    codes = _scratch(ws, "qsgd.codes", buckets.shape, np.uint32)
    quantize_grid(buckets, scales, bits, rand, codes, ws)
    return pack(codes.reshape(-1), _SLOT_FOR_WIDTH[bits], words, ws)


def dequantize_sign_packed(
    words: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    """Sign-variant decode of packed ``words`` into the bucket matrix."""
    codes = unpack(words, out.size, _SLOT_FOR_WIDTH[bits], ws)
    return dequantize_sign(
        codes.reshape(out.shape), scales, bits, out, accumulate, ws
    )


def dequantize_grid_packed(
    words: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    """Grid-variant decode of packed ``words`` into the bucket matrix."""
    codes = unpack(words, out.size, _SLOT_FOR_WIDTH[bits], ws)
    return dequantize_grid(
        codes.reshape(out.shape), scales, bits, out, accumulate, ws
    )


# -- QSGD decode (optionally fused with accumulation) -------------------


def dequantize_sign(
    codes: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    """``((1 - 2*signbit) * level) / s * scale`` per element, into ``out``."""
    s = (1 << (bits - 1)) - 1
    lanes = codes.shape
    values = _scratch(ws, "qsgd.dec.values", lanes) if accumulate else out
    ints = _scratch(ws, "qsgd.dec.ints", lanes, np.uint32)
    level = _scratch(ws, "qsgd.dec.level", lanes)
    np.right_shift(codes, 1, out=ints)
    level[...] = ints
    np.bitwise_and(codes, 1, out=ints)
    values[...] = ints
    # sign = 1 - 2 * signbit; buckets = sign * level / s * scale
    np.multiply(2.0, values, out=values)
    np.subtract(1.0, values, out=values)
    np.multiply(values, level, out=values)
    np.divide(values, s, out=values)
    np.multiply(values, scales[:, None], out=values)
    if accumulate:
        np.add(out, values, out=out)
    return out


def dequantize_grid(
    codes: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    """``code * step - scale`` per element (zero buckets decode to +0)."""
    n_levels = 1 << bits
    lanes = codes.shape
    values = _scratch(ws, "qsgd.dec.values", lanes) if accumulate else out
    step = _scratch(ws, "qsgd.dec.step", scales.shape)
    np.multiply(2.0, scales, out=step)
    np.divide(step, n_levels - 1, out=step)
    values[...] = codes
    np.multiply(values, step[:, None], out=values)
    np.subtract(values, scales[:, None], out=values)
    zero = _scratch(ws, "qsgd.dec.zeromask", scales.shape, bool)
    np.equal(scales, 0.0, out=zero)
    values[zero, :] = 0.0
    if accumulate:
        np.add(out, values, out=out)
    return out
