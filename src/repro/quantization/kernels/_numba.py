"""Numba backend: the ``_impls`` loop kernels under ``@njit(cache=True)``.

Importing this module requires numba; the registry treats an
ImportError here as "backend unavailable" and falls through.  The jit
is applied lazily per function signature on first call and cached on
disk (``cache=True``), so repeat runs skip compilation.

``fastmath`` stays off (the default): LLVM would otherwise be free to
contract multiplies and adds into FMAs and reassociate reductions,
both of which break bit-identity with the numpy reference.  See
``_impls`` for the float32 arithmetic contract the loops encode.

Like the C backend, inputs the loop kernels cannot handle fall back to
the numpy reference, which is bit-identical by definition.
"""

from __future__ import annotations

import numba
import numpy as np

from . import _impls, _numpy

name = "numba"

_jit = numba.njit(cache=True)

_transpose = _jit(_impls.transpose_f32)
_untranspose = _jit(_impls.untranspose_f32)
_absmax = _jit(_impls.absmax_rows)
_quant_sign = _jit(_impls.quant_sign)
_quant_grid = _jit(_impls.quant_grid)
_pack = _jit(_impls.pack_words)
_unpack = _jit(_impls.unpack_words)
_dequant_sign = _jit(_impls.dequant_sign)
_dequant_grid = _jit(_impls.dequant_grid)


def _f32c(a: np.ndarray) -> bool:
    return a.dtype == np.float32 and a.flags.c_contiguous


def bucketize(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
    n = grad.size
    if grad.ndim == 2 and n and _f32c(grad):
        flat = out.reshape(-1)
        _transpose(grad, flat[:n])
        flat[n:] = 0.0
        return out
    return _numpy.bucketize(grad, out)


def unbucketize(
    buckets: np.ndarray,
    shape: tuple[int, ...],
    out: np.ndarray,
    accumulate: bool = False,
) -> np.ndarray:
    n = int(np.prod(shape)) if shape else 1
    if (
        not accumulate
        and len(shape) == 2
        and n
        and _f32c(out)
        and out.shape == tuple(shape)
        and _f32c(buckets)
    ):
        _untranspose(buckets.reshape(-1)[:n], out)
        return out
    return _numpy.unbucketize(buckets, shape, out, accumulate)


def absmax_scales(buckets: np.ndarray, scales: np.ndarray, ws) -> np.ndarray | None:
    if _f32c(buckets) and _f32c(scales):
        _absmax(buckets, scales)
        return None
    return _numpy.absmax_scales(buckets, scales, ws)


def quantize_sign(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    codes: np.ndarray,
    ws,
    abs_buckets: np.ndarray | None = None,
) -> np.ndarray:
    if _f32c(buckets) and rand.flags.c_contiguous and codes.flags.c_contiguous:
        _quant_sign(buckets, scales, bits, rand, codes)
        return codes
    return _numpy.quantize_sign(
        buckets, scales, bits, rand, codes, ws, abs_buckets
    )


def quantize_grid(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    codes: np.ndarray,
    ws,
) -> np.ndarray:
    if _f32c(buckets) and rand.flags.c_contiguous and codes.flags.c_contiguous:
        _quant_grid(buckets, scales, bits, rand, codes)
        return codes
    return _numpy.quantize_grid(buckets, scales, bits, rand, codes, ws)


def pack(codes: np.ndarray, slot: int, out: np.ndarray, ws) -> np.ndarray:
    if codes.dtype == np.uint32 and codes.flags.c_contiguous:
        _pack(codes, codes.size, slot, out, out.shape[0])
        return out
    return _numpy.pack(codes, slot, out, ws)


def unpack(
    words: np.ndarray,
    count: int,
    slot: int,
    ws,
    out: np.ndarray | None = None,
) -> np.ndarray:
    per_word = 32 // slot
    if ws is None:
        lanes = np.empty((words.size, per_word), dtype=np.uint32)
    else:
        lanes = ws.array("bitpack.unpack", (words.size, per_word), np.uint32)
    _unpack(words, words.size, slot, lanes.reshape(-1))
    view = lanes.reshape(-1)[:count]
    if out is None:
        return view
    out[...] = view
    return out


# -- fused quantize+pack / unpack+dequantize ---------------------------
#
# Composed from this backend's own loop kernels through the workspace
# code-plane scratch: the jitted loops already avoid numpy temporaries,
# so a dedicated fused loop would only save the (cached) scratch pass.
# Composition keeps the numba surface identical to the other backends
# without adding untestable jit code paths.


def _codes_scratch(ws, shape):
    if ws is None:
        return np.empty(shape, dtype=np.uint32)
    return ws.array("qsgd.codes", shape, np.uint32)


def quantize_sign_packed(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    words: np.ndarray,
    ws,
    abs_buckets: np.ndarray | None = None,
) -> np.ndarray:
    codes = _codes_scratch(ws, buckets.shape)
    quantize_sign(buckets, scales, bits, rand, codes, ws, abs_buckets)
    return pack(codes.reshape(-1), _numpy._SLOT_FOR_WIDTH[bits], words, ws)


def quantize_grid_packed(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    words: np.ndarray,
    ws,
) -> np.ndarray:
    codes = _codes_scratch(ws, buckets.shape)
    quantize_grid(buckets, scales, bits, rand, codes, ws)
    return pack(codes.reshape(-1), _numpy._SLOT_FOR_WIDTH[bits], words, ws)


def dequantize_sign_packed(
    words: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    codes = unpack(words, out.size, _numpy._SLOT_FOR_WIDTH[bits], ws)
    return dequantize_sign(
        codes.reshape(out.shape), scales, bits, out, accumulate, ws
    )


def dequantize_grid_packed(
    words: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    codes = unpack(words, out.size, _numpy._SLOT_FOR_WIDTH[bits], ws)
    return dequantize_grid(
        codes.reshape(out.shape), scales, bits, out, accumulate, ws
    )


def dequantize_sign(
    codes: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    if codes.flags.c_contiguous and _f32c(out):
        _dequant_sign(codes, scales, bits, out, accumulate)
        return out
    return _numpy.dequantize_sign(codes, scales, bits, out, accumulate, ws)


def dequantize_grid(
    codes: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    if codes.flags.c_contiguous and _f32c(out):
        _dequant_grid(codes, scales, bits, out, accumulate)
        return out
    return _numpy.dequantize_grid(codes, scales, bits, out, accumulate, ws)
