"""C extension backend: ``_kernels.c`` compiled at import, via ctypes.

The shared object is built once per source+flags+machine fingerprint
and cached under ``$REPRO_KERNELS_CACHE`` (default
``~/.cache/repro-kernels``), so the compiler runs only on the first
import after a kernel change.  The build is atomic (compile to a
temporary file, ``os.replace`` into place) so concurrent worker
processes never load a half-written library.

``-ffp-contract=off`` is load-bearing: it forbids fusing the decode's
``acc += v * scale`` into an FMA, which would skip a float32 rounding
step and break bit-identity with the numpy reference.  See the header
comment in ``_kernels.c`` for the full arithmetic contract.

Arrays are passed as raw data pointers (``c_void_p``) rather than
through :func:`numpy.ctypeslib.ndpointer`: the ndpointer ``from_param``
validation costs a few microseconds per argument, which at ~140
array arguments per training step is real money.  The dtype and
contiguity checks it performed live in each wrapper's eligibility
guard instead, and pointers are cached per array object (the hot-path
arrays are long-lived workspace arena buffers, so the cache hits every
step).  The cache requires that arrays are never resized in place
(``ndarray.resize``) — nothing in this codebase does, and ordinary
numpy code never does either.

Inputs the C kernels cannot handle (non-contiguous, wrong dtype,
higher-rank tensors) fall back to the numpy reference implementation,
which is bit-identical by definition — so this module is safe to use
as a drop-in for any call pattern the reference accepts.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
import weakref
from pathlib import Path

import numpy as np

from . import _numpy

name = "cext"

_SOURCE = Path(__file__).with_name("_kernels.c")
_CFLAGS = (
    "-O3",
    "-march=native",
    "-ffp-contract=off",
    "-fno-math-errno",
    "-fno-trapping-math",
    "-shared",
    "-fPIC",
)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _build() -> Path:
    source = _SOURCE.read_text()
    fingerprint = hashlib.sha256(
        "\x00".join(
            (source, " ".join(_CFLAGS), platform.machine(), platform.system())
        ).encode()
    ).hexdigest()[:16]
    cached = _cache_dir() / f"repro_kernels_{fingerprint}.so"
    if cached.exists():
        return cached
    cached.parent.mkdir(parents=True, exist_ok=True)
    cc = os.environ.get("CC", "cc")
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix="build_", dir=str(cached.parent)
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", tmp, str(_SOURCE), "-lm"],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"kernel compile failed ({cc}): {proc.stderr[-2000:]}"
            )
        os.replace(tmp, cached)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return cached


_lib = ctypes.CDLL(str(_build()))

_i64 = ctypes.c_int64
_ptr_t = ctypes.c_void_p

_lib.repro_transpose_f32.argtypes = [_ptr_t, _i64, _i64, _ptr_t]
_lib.repro_transpose_f32.restype = None
_lib.repro_absmax_rows.argtypes = [_ptr_t, _i64, _i64, _ptr_t]
_lib.repro_absmax_rows.restype = None
for _fn in (_lib.repro_quant_sign, _lib.repro_quant_grid):
    _fn.argtypes = [_ptr_t, _ptr_t, _i64, _i64, _i64, _ptr_t, _ptr_t]
    _fn.restype = None
_lib.repro_pack.argtypes = [_ptr_t, _i64, _i64, _ptr_t, _i64]
_lib.repro_pack.restype = None
_lib.repro_unpack.argtypes = [_ptr_t, _i64, _i64, _ptr_t]
_lib.repro_unpack.restype = None
for _fn in (
    _lib.repro_dequant_sign,
    _lib.repro_dequant_sign_acc,
    _lib.repro_dequant_grid,
    _lib.repro_dequant_grid_acc,
):
    _fn.argtypes = [_ptr_t, _ptr_t, _i64, _i64, _i64, _ptr_t]
    _fn.restype = None
for _fn in (_lib.repro_quant_sign_pack, _lib.repro_quant_grid_pack):
    _fn.argtypes = [_ptr_t, _ptr_t, _i64, _i64, _i64, _i64, _ptr_t, _ptr_t]
    _fn.restype = None
for _fn in (
    _lib.repro_words_dequant_sign,
    _lib.repro_words_dequant_sign_acc,
    _lib.repro_words_dequant_grid,
    _lib.repro_words_dequant_grid_acc,
):
    _fn.argtypes = [_ptr_t, _ptr_t, _i64, _i64, _i64, _i64, _ptr_t]
    _fn.restype = None

#: code width (1..32) -> storage slot width (next divisor of 32)
_SLOT_FOR_WIDTH = _numpy._SLOT_FOR_WIDTH

#: id(array) -> (weakref guard, data pointer).  The weakref both
#: confirms the id still names the same live object (ids are recycled)
#: and evicts the entry when the array dies.
_ptr_cache: dict[int, tuple] = {}


def _ptr(a: np.ndarray) -> int:
    """Data pointer of ``a``, cached by object identity.

    The hot path passes the same long-lived arena buffers every step;
    caching skips the ~1.4us ``a.ctypes.data`` attribute walk per
    argument.  Safe because nothing may resize an ndarray in place
    while it is in use here (see module docstring).
    """
    key = id(a)
    hit = _ptr_cache.get(key)
    if hit is not None and hit[0]() is a:
        return hit[1]
    entry = (
        weakref.ref(a, lambda _r, _k=key: _ptr_cache.pop(_k, None)),
        a.ctypes.data,
    )
    _ptr_cache[key] = entry
    return entry[1]


def _f32c(a: np.ndarray) -> bool:
    return a.dtype == np.float32 and a.flags.c_contiguous


def _u32c(a: np.ndarray) -> bool:
    return a.dtype == np.uint32 and a.flags.c_contiguous


def _f64c(a: np.ndarray) -> bool:
    return a.dtype == np.float64 and a.flags.c_contiguous


# -- bucket permutation -------------------------------------------------


def bucketize(grad: np.ndarray, out: np.ndarray) -> np.ndarray:
    n = grad.size
    if grad.ndim == 2 and n and _f32c(grad) and _f32c(out):
        # the transpose writes the first n lanes of out's flat buffer
        _lib.repro_transpose_f32(
            _ptr(grad), grad.shape[0], grad.shape[1], _ptr(out)
        )
        out.reshape(-1)[n:] = 0.0
        return out
    # 1-D flattens are a plain memcpy (numpy already optimal); other
    # ranks/dtypes take the reference strided copy
    return _numpy.bucketize(grad, out)


def unbucketize(
    buckets: np.ndarray,
    shape: tuple[int, ...],
    out: np.ndarray,
    accumulate: bool = False,
) -> np.ndarray:
    n = int(np.prod(shape)) if shape else 1
    if (
        not accumulate
        and len(shape) == 2
        and n
        and _f32c(out)
        and out.shape == tuple(shape)
        and _f32c(buckets)
    ):
        rows, cols = shape
        # the F-order unflatten of the first n bucket lanes into
        # (rows, cols) is the transpose of those lanes viewed as a
        # (cols, rows) matrix
        _lib.repro_transpose_f32(_ptr(buckets), cols, rows, _ptr(out))
        return out
    return _numpy.unbucketize(buckets, shape, out, accumulate)


# -- per-bucket infinity norm ------------------------------------------


def absmax_scales(buckets: np.ndarray, scales: np.ndarray, ws) -> np.ndarray | None:
    if _f32c(buckets) and _f32c(scales):
        _lib.repro_absmax_rows(
            _ptr(buckets), buckets.shape[0], buckets.shape[1], _ptr(scales)
        )
        return None  # no |buckets| scratch is materialized
    return _numpy.absmax_scales(buckets, scales, ws)


# -- QSGD stochastic quantization --------------------------------------


def quantize_sign(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    codes: np.ndarray,
    ws,
    abs_buckets: np.ndarray | None = None,
) -> np.ndarray:
    if _f32c(buckets) and _f32c(scales) and _f64c(rand) and _u32c(codes):
        _lib.repro_quant_sign(
            _ptr(buckets), _ptr(scales), buckets.shape[0], buckets.shape[1],
            bits, _ptr(rand), _ptr(codes),
        )
        return codes
    return _numpy.quantize_sign(
        buckets, scales, bits, rand, codes, ws, abs_buckets
    )


def quantize_grid(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    codes: np.ndarray,
    ws,
) -> np.ndarray:
    if _f32c(buckets) and _f32c(scales) and _f64c(rand) and _u32c(codes):
        _lib.repro_quant_grid(
            _ptr(buckets), _ptr(scales), buckets.shape[0], buckets.shape[1],
            bits, _ptr(rand), _ptr(codes),
        )
        return codes
    return _numpy.quantize_grid(buckets, scales, bits, rand, codes, ws)


# -- bit packing --------------------------------------------------------


def pack(codes: np.ndarray, slot: int, out: np.ndarray, ws) -> np.ndarray:
    if _u32c(codes) and _u32c(out):
        _lib.repro_pack(_ptr(codes), codes.size, slot, _ptr(out), out.shape[0])
        return out
    return _numpy.pack(codes, slot, out, ws)


def unpack(
    words: np.ndarray,
    count: int,
    slot: int,
    ws,
    out: np.ndarray | None = None,
) -> np.ndarray:
    if not _u32c(words):
        return _numpy.unpack(words, count, slot, ws, out)
    per_word = 32 // slot
    if ws is None:
        lanes = np.empty((words.size, per_word), dtype=np.uint32)
    else:
        lanes = ws.array("bitpack.unpack", (words.size, per_word), np.uint32)
    _lib.repro_unpack(_ptr(words), words.size, slot, _ptr(lanes))
    view = lanes.reshape(-1)[:count]
    if out is None:
        return view
    out[...] = view
    return out


# -- fused quantize+pack / unpack+dequantize ---------------------------
#
# The fused C kernels stage codes through an L1-resident tile instead
# of round-tripping the full uint32 code plane through memory.  They
# require each bucket to start on a word boundary
# (bucket_size % per_word == 0 — true for every tuned bucket size);
# anything else composes the unfused kernels, which is bit-identical.


def _fused_ok(lanes: np.ndarray, slot: int) -> bool:
    return lanes.ndim == 2 and lanes.shape[1] % (32 // slot) == 0


def quantize_sign_packed(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    words: np.ndarray,
    ws,
    abs_buckets: np.ndarray | None = None,
) -> np.ndarray:
    slot = _SLOT_FOR_WIDTH[bits]
    if (
        _f32c(buckets)
        and _f32c(scales)
        and _f64c(rand)
        and _u32c(words)
        and _fused_ok(buckets, slot)
    ):
        _lib.repro_quant_sign_pack(
            _ptr(buckets), _ptr(scales), buckets.shape[0], buckets.shape[1],
            bits, slot, _ptr(rand), _ptr(words),
        )
        return words
    codes = _numpy._scratch(ws, "qsgd.codes", buckets.shape, np.uint32)
    quantize_sign(buckets, scales, bits, rand, codes, ws, abs_buckets)
    return pack(codes.reshape(-1), slot, words, ws)


def quantize_grid_packed(
    buckets: np.ndarray,
    scales: np.ndarray,
    bits: int,
    rand: np.ndarray,
    words: np.ndarray,
    ws,
) -> np.ndarray:
    slot = _SLOT_FOR_WIDTH[bits]
    if (
        _f32c(buckets)
        and _f32c(scales)
        and _f64c(rand)
        and _u32c(words)
        and _fused_ok(buckets, slot)
    ):
        _lib.repro_quant_grid_pack(
            _ptr(buckets), _ptr(scales), buckets.shape[0], buckets.shape[1],
            bits, slot, _ptr(rand), _ptr(words),
        )
        return words
    codes = _numpy._scratch(ws, "qsgd.codes", buckets.shape, np.uint32)
    quantize_grid(buckets, scales, bits, rand, codes, ws)
    return pack(codes.reshape(-1), slot, words, ws)


def dequantize_sign_packed(
    words: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    slot = _SLOT_FOR_WIDTH[bits]
    if (
        _u32c(words)
        and _f32c(scales)
        and _f32c(out)
        and _fused_ok(out, slot)
    ):
        fn = (
            _lib.repro_words_dequant_sign_acc
            if accumulate
            else _lib.repro_words_dequant_sign
        )
        fn(_ptr(words), _ptr(scales), out.shape[0], out.shape[1], bits,
           slot, _ptr(out))
        return out
    codes = unpack(words, out.size, slot, ws)
    return dequantize_sign(
        codes.reshape(out.shape), scales, bits, out, accumulate, ws
    )


def dequantize_grid_packed(
    words: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    slot = _SLOT_FOR_WIDTH[bits]
    if (
        _u32c(words)
        and _f32c(scales)
        and _f32c(out)
        and _fused_ok(out, slot)
    ):
        fn = (
            _lib.repro_words_dequant_grid_acc
            if accumulate
            else _lib.repro_words_dequant_grid
        )
        fn(_ptr(words), _ptr(scales), out.shape[0], out.shape[1], bits,
           slot, _ptr(out))
        return out
    codes = unpack(words, out.size, slot, ws)
    return dequantize_grid(
        codes.reshape(out.shape), scales, bits, out, accumulate, ws
    )


# -- QSGD decode (optionally fused with accumulation) -------------------


def dequantize_sign(
    codes: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    if _u32c(codes) and _f32c(scales) and _f32c(out):
        fn = _lib.repro_dequant_sign_acc if accumulate else _lib.repro_dequant_sign
        fn(_ptr(codes), _ptr(scales), codes.shape[0], codes.shape[1], bits,
           _ptr(out))
        return out
    return _numpy.dequantize_sign(codes, scales, bits, out, accumulate, ws)


def dequantize_grid(
    codes: np.ndarray,
    scales: np.ndarray,
    bits: int,
    out: np.ndarray,
    accumulate: bool,
    ws,
) -> np.ndarray:
    if _u32c(codes) and _f32c(scales) and _f32c(out):
        fn = _lib.repro_dequant_grid_acc if accumulate else _lib.repro_dequant_grid
        fn(_ptr(codes), _ptr(scales), codes.shape[0], codes.shape[1], bits,
           _ptr(out))
        return out
    return _numpy.dequantize_grid(codes, scales, bits, out, accumulate, ws)
