"""TernGrad ternary gradient quantization (Wen et al., NIPS 2017).

Each gradient entry is stochastically rounded to one of three values
``{-s, 0, +s}`` where ``s`` is the scaling factor of its bucket (the
maximum absolute value, as in the paper's ternarize step):

    ``t_i = s * sign(g_i) * b_i``  with  ``b_i ~ Bernoulli(|g_i| / s)``

which makes the quantizer *unbiased* — ``E[t_i] = g_i`` — so TernGrad
converges without error feedback, exactly like QSGD.  Codes occupy two
bits each (0 = zero, 1 = ``+s``, 2 = ``-s``), packed little-endian into
32-bit words by :mod:`repro.quantization.bitpack`.

The paper's optional *gradient clipping* bounds the scaler: entries are
clipped to ``c * sigma`` (``sigma`` the standard deviation of the whole
tensor, ``c`` typically 2.5) before ternarizing, which shrinks ``s``
and therefore the quantization variance at the cost of a small bias.
Clipping is off by default so the unbiasedness law holds exactly; the
registry accepts ``terngrad2.5``-style names to switch it on.

Scaling is per *bucket* of the column-major flattened gradient; the
default bucket is the whole tensor (the paper uses one scaler per
gradient), and a finite ``bucket_size`` trades extra scale floats for
lower variance exactly as QSGD's bucketing does.

The ``*_into`` forms draw every intermediate from an
:class:`~repro.quantization.workspace.EncodeWorkspace`, and the
Bernoulli draws are made caller-side with the run's generator and
compared against the normalized magnitudes, so every kernel backend
consumes the identical RNG stream (backend bit-identity comes from the
shared bitpack/bucketize kernels; the ternarize arithmetic itself is
plain numpy).
"""

from __future__ import annotations

import numpy as np

from . import bitpack
from .base import BucketSumDecoder, EncodedTensor, Quantizer, SumDecoder
from .bucketing import bucket_plan, from_buckets_into, to_buckets_into
from .workspace import EncodeWorkspace

__all__ = ["TernGrad"]

#: code -> reconstruction multiplier (index 0/1/2 = zero/plus/minus)
_TERN_LUT = np.array([0.0, 1.0, -1.0], dtype=np.float32)

_CODE_BITS = 2


class TernGrad(Quantizer):
    """Ternary {-1, 0, +1} quantization with max scaling."""

    requires_error_feedback = False

    def __init__(
        self,
        bucket_size: int | None = None,
        clip: float | None = None,
    ):
        if bucket_size is not None and bucket_size < 1:
            raise ValueError(
                f"bucket_size must be >= 1, got {bucket_size}"
            )
        if clip is not None and clip <= 0:
            raise ValueError(f"clip factor must be > 0, got {clip}")
        self.bucket_size = bucket_size
        self.clip = clip
        self.name = "terngrad"
        self.nominal_bits = float(_CODE_BITS)

    def effective_bucket(self, count: int) -> int:
        """Bucket size actually used for a ``count``-element tensor.

        ``bucket_size=None`` scales the whole tensor with one factor,
        as the paper does; a finite size is capped at the tensor size
        like QSGD's buckets.
        """
        if self.bucket_size is None:
            return max(1, count)
        return max(1, min(self.bucket_size, count))

    # -- encode ---------------------------------------------------------
    def encode(
        self, grad: np.ndarray, rng: np.random.Generator | None = None
    ) -> EncodedTensor:
        return self.encode_into(grad, rng)

    def encode_into(
        self,
        grad: np.ndarray,
        rng: np.random.Generator | None = None,
        workspace: EncodeWorkspace | None = None,
    ) -> EncodedTensor:
        rng = rng if rng is not None else np.random.default_rng()
        ws = workspace if workspace is not None else EncodeWorkspace()
        grad = np.asarray(grad)
        bucket_size = self.effective_bucket(grad.size)
        plan = bucket_plan(grad.size, bucket_size)
        lanes = (plan.n_buckets, bucket_size)

        buckets = ws.array("tern.buckets", lanes)
        to_buckets_into(grad, bucket_size, buckets)
        if self.clip is not None and grad.size:
            # clip to c * sigma of the *whole* tensor (the padding
            # zeros are excluded from the moment estimate)
            flat = buckets.reshape(-1)[: grad.size]
            sigma = float(np.std(flat.astype(np.float64)))
            if sigma > 0.0:
                np.clip(
                    buckets,
                    -self.clip * sigma,
                    self.clip * sigma,
                    out=buckets,
                )

        absval = ws.array("tern.abs", lanes)
        np.abs(buckets, out=absval)
        scales = ws.array("tern.scales", plan.n_buckets)
        absval.max(axis=1, initial=0.0, out=scales)

        # Bernoulli(|g| / s): normalize in place, zeroing empty buckets
        prob = ws.array("tern.prob", lanes)
        prob.fill(0.0)
        nonzero = ws.array("tern.nonzero", plan.n_buckets, bool)
        np.greater(scales, 0.0, out=nonzero)
        np.divide(
            absval, scales[:, None], out=prob, where=nonzero[:, None]
        )
        # caller-side draws: every backend sees the same RNG stream
        rand = ws.array("tern.rand", lanes, np.float64)
        rng.random(out=rand)
        fire = ws.array("tern.fire", lanes, bool)
        np.less(rand, prob, out=fire)

        # codes: 0 = zero, 1 = +s, 2 = -s (padding is zero -> code 0)
        codes = ws.array("tern.codes", plan.padded, np.uint32)
        plane = codes.reshape(lanes)
        negative = ws.array("tern.neg", lanes, bool)
        np.signbit(buckets, out=negative)
        minus = ws.array("tern.minus", lanes, bool)
        np.logical_and(fire, negative, out=minus)
        plane.fill(0)
        np.add(plane, 1, out=plane, where=fire)
        np.add(plane, 1, out=plane, where=minus)

        words = ws.array(
            "tern.words",
            bitpack.packed_words(plan.padded, _CODE_BITS),
            np.uint32,
        )
        bitpack.pack_into(codes, _CODE_BITS, words, workspace=ws, check=False)
        return EncodedTensor(
            scheme=self.name,
            shape=grad.shape,
            payload={"scales": scales, "words": words},
            meta={"bucket_size": bucket_size},
        )

    # -- decode ---------------------------------------------------------
    def decode(self, message: EncodedTensor) -> np.ndarray:
        out = np.empty(message.shape, dtype=np.float32)
        return self.decode_into(message, out)

    def decode_into(
        self,
        message: EncodedTensor,
        out: np.ndarray,
        accumulate: bool = False,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        values = self._decode_values(message, workspace)
        return from_buckets_into(values, message.shape, out, accumulate)

    def sum_decoder(
        self,
        shape: tuple[int, ...],
        workspace: EncodeWorkspace | None = None,
    ) -> SumDecoder:
        # accumulate in the contiguous bucket layout, un-bucket once
        return BucketSumDecoder(self, shape, workspace)

    def _decode_values(
        self,
        message: EncodedTensor,
        workspace: EncodeWorkspace | None = None,
    ) -> np.ndarray:
        """Decoded bucket matrix, before the bucket-order permutation."""
        ws = workspace if workspace is not None else EncodeWorkspace()
        bucket_size = int(message.meta["bucket_size"])
        scales = np.asarray(message.payload["scales"], dtype=np.float32)
        lanes = (scales.shape[0], bucket_size)
        count = lanes[0] * lanes[1]
        words = np.ascontiguousarray(
            message.payload["words"], dtype=np.uint32
        )
        expected = bitpack.packed_words(count, _CODE_BITS)
        if words.ndim != 1 or words.size != expected:
            raise ValueError(
                f"expected {expected} packed words for bucket geometry "
                f"{lanes}, got shape {words.shape}"
            )
        codes = bitpack.unpack_into(words, count, _CODE_BITS, workspace=ws)
        values = ws.array("tern.dec.values", lanes)
        np.take(_TERN_LUT, codes.reshape(lanes), out=values)
        values *= scales[:, None]
        return values

    def encoded_nbytes(self, shape: tuple[int, ...]) -> int:
        from .base import MESSAGE_HEADER_BYTES
        from .bucketing import bucket_count

        count = 1
        for dim in shape:
            count *= dim
        bucket_size = self.effective_bucket(count)
        buckets = bucket_count(count, bucket_size)
        code_words = bitpack.packed_words(
            buckets * bucket_size, _CODE_BITS
        )
        return MESSAGE_HEADER_BYTES + 4 * buckets + 4 * code_words
